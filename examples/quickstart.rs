//! Quickstart: build a graph, cluster it with ppSCAN, inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ppscan::prelude::*;

fn main() {
    // The golden two-community example: two 6-cliques joined by a bridge
    // vertex (6) with a pendant vertex (13).
    let graph = ppscan::graph::gen::scan_paper_example();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // SCAN parameters: similarity threshold ε and core threshold µ.
    let params = ScanParams::new(0.7, 2);

    // Run parallel ppSCAN (defaults: all cores, widest SIMD kernel).
    let output = ppscan::cluster(&graph, params);
    let clustering = &output.clustering;

    println!("result: {}", clustering.summary());
    for (cid, members) in clustering.clusters() {
        println!("  cluster {cid}: {members:?}");
    }

    // SCAN's signature feature: vertices outside every cluster are
    // classified as hubs (bridging clusters) or outliers.
    for (v, class) in clustering.classify_unclustered(&graph).iter().enumerate() {
        match class {
            UnclusteredClass::Hub => println!("  vertex {v}: HUB"),
            UnclusteredClass::Outlier => println!("  vertex {v}: outlier"),
            UnclusteredClass::Clustered => {}
        }
    }

    // Per-stage timings (the paper's Figure 6 breakdown).
    println!("stage timings: {:?}", output.timings.stages());
}
