//! Index-backed parameter exploration: build a GS*-Index-style
//! similarity index once, then answer any `(ε, µ)` clustering query in
//! output-proportional time — the alternative the ppSCAN paper's related
//! work (§3.3) weighs against fast recomputation.
//!
//! ```sh
//! cargo run --release --example index_exploration [n] [avg_degree]
//! ```

use ppscan::gsindex::GsIndex;
use ppscan::prelude::*;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let d: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    let graph = ppscan::graph::gen::roll(n, d, 7);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let t0 = Instant::now();
    let index = GsIndex::build(&graph, threads);
    let build_time = t0.elapsed();
    println!(
        "index built in {build_time:?} ({:.1} MiB)",
        index.heap_bytes() as f64 / (1 << 20) as f64
    );

    println!(
        "\n{:>5} {:>4} {:>9} {:>9} {:>12} {:>12}",
        "eps", "mu", "cores", "clusters", "query", "recompute"
    );
    let cfg = PpScanConfig::default();
    let mut total_query = std::time::Duration::ZERO;
    for mu in [2usize, 5, 10] {
        for eps10 in [2u32, 5, 8] {
            let p = ScanParams::new(eps10 as f64 / 10.0, mu);
            let t0 = Instant::now();
            let from_index = index.query(p);
            let tq = t0.elapsed();
            total_query += tq;
            let t0 = Instant::now();
            let recomputed = ppscan(&graph, p, &cfg).clustering;
            let tr = t0.elapsed();
            assert_eq!(from_index, recomputed, "index and ppSCAN must agree");
            println!(
                "{:>5.1} {:>4} {:>9} {:>9} {:>12?} {:>12?}",
                eps10 as f64 / 10.0,
                mu,
                from_index.num_cores(),
                from_index.num_clusters(),
                tq,
                tr
            );
        }
    }
    println!(
        "\nevery query verified identical to a fresh ppSCAN run; \
         index amortizes after enough queries (build {build_time:?}, \
         9 queries took {total_query:?})"
    );
}
