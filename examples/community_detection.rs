//! Community detection on a synthetic social network — the use case the
//! paper's introduction motivates (advertising, epidemiology).
//!
//! Generates a planted-partition graph with known ground-truth
//! communities, recovers them with ppSCAN, and scores the recovery.
//! Also demonstrates loading/saving edge lists.
//!
//! ```sh
//! cargo run --release --example community_detection [blocks] [block_size]
//! ```

use ppscan::prelude::*;
use std::collections::HashMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let blocks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let block_size: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    println!("generating {blocks} communities x {block_size} members …");
    let graph = ppscan::graph::gen::planted_partition(blocks, block_size, 0.4, 0.005, 7);
    let stats = ppscan::graph::GraphStats::of(&graph);
    println!("{}", ppscan::graph::GraphStats::table_header());
    println!("{}", stats.table_row("sbm"));

    // Round-trip through the on-disk edge-list format, as one would with
    // a real SNAP dataset.
    let path = std::env::temp_dir().join("ppscan_example_sbm.txt");
    {
        let f = std::fs::File::create(&path).expect("create temp file");
        ppscan::graph::io::write_edge_list(&graph, std::io::BufWriter::new(f))
            .expect("write edge list");
    }
    let graph = ppscan::graph::io::read_edge_list_file(&path).expect("re-read edge list");
    std::fs::remove_file(&path).ok();

    let params = ScanParams::new(0.4, 4);
    let t0 = std::time::Instant::now();
    let output = ppscan::cluster(&graph, params);
    println!(
        "ppSCAN({}) took {:?}: {}",
        params.label(),
        t0.elapsed(),
        output.clustering.summary()
    );

    // Score recovery: every found cluster should be (near-)pure in one
    // ground-truth block.
    let truth = |v: u32| v as usize / block_size;
    let mut pure = 0usize;
    let clusters = output.clustering.clusters();
    for (cid, members) in &clusters {
        let mut votes: HashMap<usize, usize> = HashMap::new();
        for &v in members {
            *votes.entry(truth(v)).or_default() += 1;
        }
        let (&best_block, &best) = votes.iter().max_by_key(|(_, &c)| c).unwrap();
        let purity = best as f64 / members.len() as f64;
        if purity > 0.95 {
            pure += 1;
        }
        println!(
            "  cluster {cid:>5}: {:>4} members, {:.0}% from block {best_block}",
            members.len(),
            purity * 100.0
        );
    }
    println!(
        "{}/{} clusters are >95% pure (ground truth: {blocks} blocks)",
        pure,
        clusters.len()
    );
}
