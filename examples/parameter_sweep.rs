//! Interactive parameter exploration — the paper's headline use case:
//! "support interactive result exploration (with a response time of under
//! a minute) on billion-edge graphs with a wide range of parameter
//! values" (§1).
//!
//! Sweeps ε ∈ {0.1 … 0.9} × µ ∈ {2, 5, 10, 15} on a scale-free graph and
//! prints how the clustering structure responds, with per-run times —
//! a miniature of the paper's Figure 7 robustness study.
//!
//! ```sh
//! cargo run --release --example parameter_sweep [n] [avg_degree]
//! ```

use ppscan::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let d: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("generating ROLL-style scale-free graph: n = {n}, avg degree ≈ {d} …");
    let graph = ppscan::graph::gen::roll(n, d, 42);
    println!(
        "done: {} vertices, {} edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    let config = PpScanConfig::default();
    println!("kernel = {}, threads = {}", config.kernel, config.threads);
    println!(
        "\n{:>5} {:>4} {:>9} {:>9} {:>9} {:>11}",
        "eps", "mu", "cores", "clusters", "hubs", "time"
    );
    for mu in [2usize, 5, 10, 15] {
        for eps10 in 1..=9u32 {
            let eps = eps10 as f64 / 10.0;
            let params = ScanParams::new(eps, mu);
            let t0 = std::time::Instant::now();
            let out = ppscan_core::ppscan::ppscan(&graph, params, &config);
            let dt = t0.elapsed();
            let hubs = out
                .clustering
                .classify_unclustered(&graph)
                .iter()
                .filter(|c| matches!(c, UnclusteredClass::Hub))
                .count();
            println!(
                "{:>5.1} {:>4} {:>9} {:>9} {:>9} {:>11?}",
                eps,
                mu,
                out.clustering.num_cores(),
                out.clustering.num_clusters(),
                hubs,
                dt
            );
        }
        println!();
    }
}
