//! Hub and outlier analysis — what distinguishes SCAN-family clustering
//! from plain community detection (paper §1, Definition 2.10): vertices
//! outside every cluster are split into *hubs* (bridging ≥ 2 clusters —
//! e.g. influencers spanning communities, epidemiological super-spreaders)
//! and *outliers* (noise).
//!
//! Builds a "caveman" world of dense cliques, wires random bridge
//! vertices between them, sprinkles pendant vertices, and shows that
//! ppSCAN recovers exactly the planted structure.
//!
//! ```sh
//! cargo run --release --example hubs_and_outliers [cliques] [clique_size]
//! ```

use ppscan::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let cliques: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    // Vertices [0, cliques*k): clique members.
    // Then one bridge vertex per adjacent clique pair, then one pendant
    // vertex per clique.
    let mut b = GraphBuilder::new();
    for c in 0..cliques {
        let base = (c * k) as u32;
        for i in 0..k as u32 {
            for j in (i + 1)..k as u32 {
                b.push_edge(base + i, base + j);
            }
        }
    }
    let mut next = (cliques * k) as u32;
    let mut planted_hubs = Vec::new();
    for c in 0..cliques - 1 {
        // Bridge vertex adjacent to one member of clique c and one of c+1.
        b.push_edge(next, (c * k) as u32);
        b.push_edge(next, ((c + 1) * k) as u32);
        planted_hubs.push(next);
        next += 1;
    }
    let mut planted_outliers = Vec::new();
    for c in 0..cliques {
        // Pendant vertex hanging off one clique member.
        b.push_edge(next, (c * k + 1) as u32);
        planted_outliers.push(next);
        next += 1;
    }
    let graph = b.build();
    println!(
        "built {} cliques of {k} + {} bridges + {} pendants: {} vertices, {} edges",
        cliques,
        planted_hubs.len(),
        planted_outliers.len(),
        graph.num_vertices(),
        graph.num_edges()
    );

    let params = ScanParams::new(0.6, 3);
    let out = ppscan::cluster(&graph, params);
    println!("{}", out.clustering.summary());

    let classes = out.clustering.classify_unclustered(&graph);
    let found_hubs: Vec<u32> = (0..graph.num_vertices() as u32)
        .filter(|&v| classes[v as usize] == UnclusteredClass::Hub)
        .collect();
    let found_outliers: Vec<u32> = (0..graph.num_vertices() as u32)
        .filter(|&v| classes[v as usize] == UnclusteredClass::Outlier)
        .collect();

    println!("clusters found : {}", out.clustering.num_clusters());
    println!("hubs found     : {found_hubs:?}");
    println!("outliers found : {found_outliers:?}");

    assert_eq!(
        out.clustering.num_clusters(),
        cliques,
        "one cluster per clique"
    );
    assert_eq!(found_hubs, planted_hubs, "bridges must classify as hubs");
    assert_eq!(
        found_outliers, planted_outliers,
        "pendants must classify as outliers"
    );
    println!("planted structure recovered exactly ✓");
}
