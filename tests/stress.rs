//! Concurrency stress tests: repeated ppSCAN runs with adversarial
//! scheduling (tiny degree thresholds → maximal task counts and barrier
//! churn, thread counts exceeding the physical cores) must be
//! deterministic and identical to the sequential reference. These runs
//! shake out ordering bugs in the lock-free phases that single
//! configurations can miss.

use ppscan::prelude::*;
use ppscan_core::verify;
use ppscan_graph::gen;

#[test]
fn repeated_runs_are_deterministic() {
    let g = gen::planted_partition(4, 30, 0.5, 0.03, 31);
    let p = ScanParams::new(0.4, 3);
    let reference = verify::reference_clustering(&g, p);
    // Oversubscribed threads + one-vertex tasks: maximal interleaving.
    let cfg = PpScanConfig::with_threads(8).degree_threshold(1);
    for round in 0..25 {
        let out = ppscan_core::ppscan::ppscan(&g, p, &cfg);
        assert_eq!(out.clustering, reference, "nondeterminism on round {round}");
    }
}

#[test]
fn hub_heavy_graph_under_stress() {
    // Star-of-cliques: one huge hub adjacent to everything plus dense
    // cliques — worst case for degree skew in the scheduler.
    let k = 8;
    let cliques = 12;
    let mut b = ppscan_graph::GraphBuilder::new();
    let hub = (cliques * k) as u32;
    for c in 0..cliques {
        let base = (c * k) as u32;
        for i in 0..k as u32 {
            for j in (i + 1)..k as u32 {
                b.push_edge(base + i, base + j);
            }
            b.push_edge(hub, base + i);
        }
    }
    let g = b.build();
    for eps in [0.2, 0.5, 0.8] {
        for mu in [2usize, 5] {
            let p = ScanParams::new(eps, mu);
            let reference = verify::reference_clustering(&g, p);
            for threads in [1usize, 4, 8] {
                let cfg = PpScanConfig::with_threads(threads).degree_threshold(4);
                let out = ppscan_core::ppscan::ppscan(&g, p, &cfg);
                assert_eq!(
                    out.clustering, reference,
                    "eps={eps} mu={mu} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn concurrent_union_find_under_clustering_load() {
    // A graph whose clustering produces one giant component: maximal
    // union-find contention in the core-clustering phase.
    let g = gen::complete(120);
    let p = ScanParams::new(0.5, 3);
    let reference = verify::reference_clustering(&g, p);
    assert_eq!(reference.num_clusters(), 1);
    for _ in 0..10 {
        let cfg = PpScanConfig::with_threads(8).degree_threshold(1);
        let out = ppscan_core::ppscan::ppscan(&g, p, &cfg);
        assert_eq!(out.clustering, reference);
    }
}

#[test]
fn all_baselines_stress_identical_on_dense_overlapping_clusters() {
    // Overlapping-communities graph: many non-cores belong to several
    // clusters, stressing the membership-pair paths of every algorithm.
    let mut b = ppscan_graph::GraphBuilder::new();
    // Ring of cliques sharing single vertices.
    let k = 6;
    let cliques = 10;
    for c in 0..cliques {
        let base = (c * (k - 1)) as u32;
        for i in 0..k as u32 {
            for j in (i + 1)..k as u32 {
                b.push_edge(base + i, base + j);
            }
        }
    }
    let g = b.build();
    let p = ScanParams::new(0.6, 3);
    let reference = verify::reference_clustering(&g, p);
    assert_eq!(ppscan_core::pscan::pscan(&g, p).clustering, reference);
    assert_eq!(ppscan_core::scanpp::scanpp(&g, p), reference);
    assert_eq!(ppscan_core::scanxp::scanxp(&g, p, 4), reference);
    assert_eq!(ppscan_core::anyscan::anyscan(&g, p, 4), reference);
    let cfg = PpScanConfig::with_threads(4).degree_threshold(2);
    assert_eq!(
        ppscan_core::ppscan::ppscan(&g, p, &cfg).clustering,
        reference
    );
}
