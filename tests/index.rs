//! Integration tests for the GS*-Index crate against the rest of the
//! workspace: index queries must agree with every algorithm on every
//! parameter setting, including after an I/O round trip.

use ppscan::gsindex::GsIndex;
use ppscan::prelude::*;
use ppscan_core::verify;
use ppscan_graph::{gen, io};

#[test]
fn index_agrees_with_all_algorithms() {
    let g = gen::planted_partition(4, 22, 0.55, 0.03, 17);
    let index = GsIndex::build(&g, 2);
    for eps10 in [2u32, 5, 8] {
        for mu in [2usize, 4, 7] {
            let p = ScanParams::new(eps10 as f64 / 10.0, mu);
            let from_index = index.query(p);
            assert_eq!(from_index, ppscan_core::scan::scan(&g, p).clustering);
            assert_eq!(from_index, ppscan_core::scanpp::scanpp(&g, p));
            assert_eq!(
                from_index,
                ppscan_core::ppscan::ppscan(&g, p, &PpScanConfig::with_threads(2)).clustering
            );
            verify::check_clustering(&g, p, &from_index).unwrap();
        }
    }
}

#[test]
fn index_survives_io_roundtrip_of_graph() {
    let g = gen::roll(300, 10, 23);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    let g2 = io::read_binary(&buf[..]).unwrap();
    // Index built on the reloaded graph answers identically.
    let a = GsIndex::build(&g, 2);
    let b = GsIndex::build(&g2, 2);
    let p = ScanParams::new(0.4, 3);
    assert_eq!(a.query(p), b.query(p));
}

#[test]
fn index_queries_are_monotone_in_epsilon() {
    let g = gen::roll(400, 12, 5);
    let index = GsIndex::build(&g, 2);
    let mut last = usize::MAX;
    for eps10 in 1..=9u32 {
        let c = index.query(ScanParams::new(eps10 as f64 / 10.0, 4));
        assert!(c.num_cores() <= last);
        last = c.num_cores();
    }
}

/// Regression (non-core attachment): a border vertex that is ε-similar
/// to cores of *two* different clusters must get the same multi-cluster
/// attachment — and the same hub/outlier classification once it falls
/// below ε — from the index query and from pscan.
///
/// The graph: two K4s `{0,1,2,3}` and `{5,6,7,8}` bridged by vertex 4
/// (edges 3–4 and 4–5). σ(4,3) = σ(4,5) = 2/√15 ≈ 0.516, so at ε = 0.5
/// vertex 4 attaches to both clusters, and at ε = 0.6 it detaches and
/// becomes a hub between them.
#[test]
fn border_vertex_attachment_matches_pscan_in_both_clusters() {
    let mut b = GraphBuilder::new();
    for base in [0u32, 5] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                b = b.add_edge(base + i, base + j);
            }
        }
    }
    let g = b.add_edge(3, 4).add_edge(4, 5).build();
    let index = GsIndex::build(&g, 2);

    // ε = 0.5, µ = 3: vertex 4 is non-core (only 2 ε-similar
    // neighbors) but ε-similar to cores in two different clusters.
    let p = ScanParams::new(0.5, 3);
    let from_index = index.query(p);
    let from_pscan = ppscan_core::pscan::pscan(&g, p).clustering;
    assert_eq!(from_index, from_pscan);
    assert_eq!(from_index.num_clusters(), 2);
    assert_eq!(
        from_index.memberships(4).len(),
        2,
        "the bridge vertex belongs to both clusters"
    );
    assert_eq!(
        from_index.classify_unclustered(&g),
        from_pscan.classify_unclustered(&g)
    );
    assert_eq!(
        from_index.classify_unclustered(&g)[4],
        UnclusteredClass::Clustered
    );

    // ε = 0.6: σ(4, ·) < ε, so vertex 4 is unclustered — and a hub,
    // since its neighbors span two clusters. Index and pscan agree.
    let p = ScanParams::new(0.6, 3);
    let from_index = index.query(p);
    let from_pscan = ppscan_core::pscan::pscan(&g, p).clustering;
    assert_eq!(from_index, from_pscan);
    assert!(from_index.memberships(4).is_empty());
    assert_eq!(
        from_index.classify_unclustered(&g),
        from_pscan.classify_unclustered(&g)
    );
    assert_eq!(
        from_index.classify_unclustered(&g)[4],
        UnclusteredClass::Hub
    );

    // Attachment is deterministic: rebuilding and re-querying yields
    // byte-identical clusterings (noncore pairs are sorted + deduped).
    let again = GsIndex::build(&g, 3).query(p);
    assert_eq!(again, from_index);
}

/// Differential property test: `GsIndex::query` must agree with `pscan`
/// on every generator-zoo graph over a seeded-random (ε, µ) grid that
/// always includes the ε = 1.0 and µ = 1 extremes.
#[test]
fn index_query_equals_pscan_over_generator_zoo() {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    let zoo: Vec<(&str, ppscan_graph::CsrGraph)> = vec![
        ("roll", gen::roll(220, 8, 3)),
        ("rmat", gen::rmat_social(7, 6, 5)),
        ("erdos_renyi", gen::erdos_renyi(180, 900, 7)),
        (
            "planted_partition",
            gen::planted_partition(3, 18, 0.5, 0.05, 11),
        ),
        ("complete", gen::complete(12)),
        ("star", gen::star(24)),
        ("path", gen::path(40)),
        ("cycle", gen::cycle(36)),
        ("grid", gen::grid(7, 7)),
        ("clique_chain", gen::clique_chain(5, 4)),
        ("scan_paper_example", gen::scan_paper_example()),
    ];

    let mut rng = 0xDECAF_u64;
    for (name, g) in &zoo {
        let index = GsIndex::build(g, 2);
        let max_mu = index.max_mu();
        // Two seeded-random draws plus the boundary pairs.
        let mut grid = vec![(1.0f64, 1usize), (1.0, max_mu.max(1)), (0.5, 1)];
        for _ in 0..2 {
            let eps = 0.05 + (splitmix64(&mut rng) % 95) as f64 / 100.0;
            let mu = 1 + (splitmix64(&mut rng) as usize) % (max_mu + 2);
            grid.push((eps, mu));
        }
        for (eps, mu) in grid {
            let p = ScanParams::new(eps, mu);
            let from_index = index.query(p);
            let from_pscan = ppscan_core::pscan::pscan(g, p).clustering;
            assert_eq!(
                from_index, from_pscan,
                "{name}: query(ε={eps}, µ={mu}) diverged from pscan"
            );
            assert_eq!(
                from_index.classify_unclustered(g),
                from_pscan.classify_unclustered(g),
                "{name}: classification diverged at (ε={eps}, µ={mu})"
            );
        }
    }
}

#[test]
fn index_handles_every_mu_up_to_max_degree() {
    let g = gen::clique_chain(6, 2);
    let index = GsIndex::build(&g, 1);
    for mu in 1..=index.max_mu() + 2 {
        let c = index.query(ScanParams::new(0.5, mu));
        let expect = ppscan_core::pscan::pscan(&g, ScanParams::new(0.5, mu)).clustering;
        assert_eq!(c, expect, "mu = {mu}");
    }
}
