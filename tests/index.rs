//! Integration tests for the GS*-Index crate against the rest of the
//! workspace: index queries must agree with every algorithm on every
//! parameter setting, including after an I/O round trip.

use ppscan::gsindex::GsIndex;
use ppscan::prelude::*;
use ppscan_core::verify;
use ppscan_graph::{gen, io};

#[test]
fn index_agrees_with_all_algorithms() {
    let g = gen::planted_partition(4, 22, 0.55, 0.03, 17);
    let index = GsIndex::build(&g, 2);
    for eps10 in [2u32, 5, 8] {
        for mu in [2usize, 4, 7] {
            let p = ScanParams::new(eps10 as f64 / 10.0, mu);
            let from_index = index.query(p);
            assert_eq!(from_index, ppscan_core::scan::scan(&g, p).clustering);
            assert_eq!(from_index, ppscan_core::scanpp::scanpp(&g, p));
            assert_eq!(
                from_index,
                ppscan_core::ppscan::ppscan(&g, p, &PpScanConfig::with_threads(2)).clustering
            );
            verify::check_clustering(&g, p, &from_index).unwrap();
        }
    }
}

#[test]
fn index_survives_io_roundtrip_of_graph() {
    let g = gen::roll(300, 10, 23);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    let g2 = io::read_binary(&buf[..]).unwrap();
    // Index built on the reloaded graph answers identically.
    let a = GsIndex::build(&g, 2);
    let b = GsIndex::build(&g2, 2);
    let p = ScanParams::new(0.4, 3);
    assert_eq!(a.query(p), b.query(p));
}

#[test]
fn index_queries_are_monotone_in_epsilon() {
    let g = gen::roll(400, 12, 5);
    let index = GsIndex::build(&g, 2);
    let mut last = usize::MAX;
    for eps10 in 1..=9u32 {
        let c = index.query(ScanParams::new(eps10 as f64 / 10.0, 4));
        assert!(c.num_cores() <= last);
        last = c.num_cores();
    }
}

#[test]
fn index_handles_every_mu_up_to_max_degree() {
    let g = gen::clique_chain(6, 2);
    let index = GsIndex::build(&g, 1);
    for mu in 1..=index.max_mu() + 2 {
        let c = index.query(ScanParams::new(0.5, mu));
        let expect = ppscan_core::pscan::pscan(&g, ScanParams::new(0.5, mu)).clustering;
        assert_eq!(c, expect, "mu = {mu}");
    }
}
