//! End-to-end tests of the `ppscan-cli` binary: generate → stats →
//! cluster → convert round trips through real process invocations.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ppscan-cli"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppscan_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_stats_cluster_roundtrip() {
    let dir = tmpdir();
    let graph_txt = dir.join("g.txt");
    let graph_bin = dir.join("g.bin");
    let clusters = dir.join("clusters.txt");

    // generate an SBM graph as text
    let out = cli()
        .args([
            "generate",
            "sbm",
            "--blocks",
            "3",
            "--block-size",
            "30",
            "--p-in",
            "0.5",
            "--p-out",
            "0.01",
            "--out",
            graph_txt.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stats
    let out = cli()
        .args(["stats", graph_txt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SCAN workload"), "{stdout}");

    // convert to binary
    let out = cli()
        .args([
            "convert",
            graph_txt.to_str().unwrap(),
            graph_bin.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // cluster the binary graph with explicit options
    let out = cli()
        .args([
            "cluster",
            graph_bin.to_str().unwrap(),
            "--eps",
            "0.4",
            "--mu",
            "3",
            "--threads",
            "2",
            "--kernel",
            "merge",
            "--classify",
            "--output",
            clusters.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("3 clusters"),
        "expected 3 clusters, got: {stdout}"
    );

    // membership file exists and is non-trivial
    let body = std::fs::read_to_string(&clusters).unwrap();
    assert!(body.lines().count() > 30, "membership file too small");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_unknown_command_and_kernel() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let dir = tmpdir();
    let g = dir.join("k.txt");
    std::fs::write(&g, "0 1\n1 2\n").unwrap();
    let out = cli()
        .args(["cluster", g.to_str().unwrap(), "--kernel", "warp-drive"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_unknown_and_typoed_flags() {
    // Regression: `--epsilonn 0.5` used to be silently ignored (the
    // parser only scanned for known flag names), so the run proceeded
    // with the default ε. Unknown flags must print usage and exit 2.
    let dir = tmpdir().join("unknown-flags");
    std::fs::create_dir_all(&dir).unwrap();
    let g = dir.join("u.txt");
    std::fs::write(&g, "0 1\n1 2\n2 0\n").unwrap();

    let out = cli()
        .args(["cluster", g.to_str().unwrap(), "--epsilonn", "0.5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "typo'd flag must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --epsilonn"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    // Every subcommand validates its full argument list.
    for args in [
        vec!["stats", g.to_str().unwrap(), "--verbose"],
        vec!["generate", "roll", "--out", "/tmp/x.txt", "--degrees", "4"],
        vec!["convert", g.to_str().unwrap(), "/tmp/y.txt", "--force"],
        vec!["cluster", g.to_str().unwrap(), "--classifyy"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("unknown flag"),
            "{args:?} must name the unknown flag"
        );
    }

    // Excess positionals and flags missing their value are errors too.
    let out = cli()
        .args(["stats", g.to_str().unwrap(), "extra.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args(["cluster", g.to_str().unwrap(), "--eps"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing value for --eps"));

    // Known flags still work after validation tightened.
    let out = cli()
        .args(["cluster", g.to_str().unwrap(), "--eps", "0.5", "--mu", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_fails_cleanly() {
    let out = cli()
        .args(["stats", "/nonexistent/graph.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to load"));
}
