//! End-to-end integration tests spanning every crate: generate → persist
//! → reload → cluster in parallel → verify against first principles →
//! classify hubs/outliers.

use ppscan::prelude::*;
use ppscan_core::verify;
use ppscan_graph::{gen, io, GraphStats};

#[test]
fn generate_persist_reload_cluster_verify() {
    let g = gen::planted_partition(5, 30, 0.5, 0.01, 123);

    // Persist and reload through both formats.
    let dir = std::env::temp_dir().join("ppscan_it");
    std::fs::create_dir_all(&dir).unwrap();
    let txt = dir.join("g.txt");
    let bin = dir.join("g.bin");
    {
        let f = std::fs::File::create(&txt).unwrap();
        io::write_edge_list(&g, std::io::BufWriter::new(f)).unwrap();
    }
    io::write_binary_file(&g, &bin).unwrap();
    let g_txt = io::read_edge_list_file(&txt).unwrap();
    let g_bin = io::read_binary_file(&bin).unwrap();
    assert_eq!(g, g_txt);
    assert_eq!(g, g_bin);
    std::fs::remove_file(&txt).ok();
    std::fs::remove_file(&bin).ok();

    // Cluster with the facade and verify from first principles.
    let params = ScanParams::new(0.5, 3);
    let out = ppscan::cluster(&g_bin, params);
    verify::check_clustering(&g, params, &out.clustering).unwrap();
    assert_eq!(out.clustering.num_clusters(), 5);
}

#[test]
fn all_algorithms_agree_across_crate_boundaries() {
    let g = gen::roll(400, 12, 99);
    let params = ScanParams::new(0.4, 4);
    let reference = verify::reference_clustering(&g, params);

    assert_eq!(ppscan_core::scan::scan(&g, params).clustering, reference);
    assert_eq!(ppscan_core::pscan::pscan(&g, params).clustering, reference);
    assert_eq!(ppscan_core::scanxp::scanxp(&g, params, 2), reference);
    assert_eq!(ppscan_core::anyscan::anyscan(&g, params, 2), reference);
    for threads in [1, 2, 4] {
        let cfg = PpScanConfig::with_threads(threads);
        assert_eq!(
            ppscan_core::ppscan::ppscan(&g, params, &cfg).clustering,
            reference
        );
    }
}

#[test]
fn kernels_are_interchangeable_end_to_end() {
    let g = gen::rmat_social(9, 10, 5);
    let params = ScanParams::new(0.3, 3);
    let reference = ppscan_core::pscan::pscan(&g, params).clustering;
    for kernel in Kernel::ALL.into_iter().filter(|k| k.available()) {
        let cfg = PpScanConfig::with_threads(2).kernel(kernel);
        assert_eq!(
            ppscan_core::ppscan::ppscan(&g, params, &cfg).clustering,
            reference,
            "kernel {kernel}"
        );
    }
}

#[test]
fn dataset_suite_is_clusterable() {
    use ppscan_graph::datasets::Dataset;
    // Tiny scale: every named stand-in must generate, validate and
    // cluster without error.
    for d in Dataset::ALL {
        let g = d.generate_scaled(0.02);
        g.validate().unwrap();
        let stats = GraphStats::of(&g);
        assert!(stats.num_edges > 0, "{} generated empty", d.name());
        let out = ppscan::cluster(&g, ScanParams::new(0.6, 5));
        assert_eq!(out.clustering.num_vertices(), g.num_vertices());
    }
}

#[test]
fn epsilon_monotonicity() {
    // Higher ε ⇒ fewer similar edges ⇒ (weakly) fewer cores.
    let g = gen::planted_partition(4, 25, 0.5, 0.02, 3);
    let mut last_cores = usize::MAX;
    for eps10 in 1..=9u32 {
        let params = ScanParams::new(eps10 as f64 / 10.0, 3);
        let out = ppscan::cluster(&g, params);
        assert!(
            out.clustering.num_cores() <= last_cores,
            "cores increased when eps rose to {}",
            eps10 as f64 / 10.0
        );
        last_cores = out.clustering.num_cores();
    }
}

#[test]
fn mu_monotonicity() {
    // Higher µ ⇒ fewer cores.
    let g = gen::roll(300, 14, 8);
    let mut last_cores = usize::MAX;
    for mu in [1usize, 2, 5, 10, 15] {
        let out = ppscan::cluster(&g, ScanParams::new(0.3, mu));
        assert!(out.clustering.num_cores() <= last_cores);
        last_cores = out.clustering.num_cores();
    }
}

#[test]
fn scheduler_threshold_is_behavior_invariant() {
    let g = gen::roll(300, 10, 4);
    let params = ScanParams::new(0.4, 3);
    let reference = ppscan_core::pscan::pscan(&g, params).clustering;
    for threshold in [1u64, 64, 32_768, u64::MAX] {
        let cfg = PpScanConfig::with_threads(3).degree_threshold(threshold);
        assert_eq!(
            ppscan_core::ppscan::ppscan(&g, params, &cfg).clustering,
            reference,
            "threshold {threshold}"
        );
    }
}

#[test]
fn streaming_updates_match_from_scratch_through_the_facade() {
    use ppscan::graph::delta::GraphDelta;
    use ppscan::update::IncrementalClustering;
    use std::sync::Arc;

    let graph = Arc::new(gen::planted_partition(4, 50, 0.5, 0.01, 42));
    let params = ScanParams::new(0.5, 4);
    let mut live = IncrementalClustering::new(Arc::clone(&graph), params, 2);

    let mut delta = GraphDelta::new();
    delta.insert(0, 150).unwrap();
    delta.delete(1, 2).unwrap();
    let outcome = live.apply(&delta).unwrap();
    assert!(outcome.stats.touched_vertices > 0);

    let edited = delta.apply_to(&graph).unwrap().graph;
    let reference = ppscan::cluster(&edited, params);
    assert_eq!(live.clustering(), reference.clustering);
}
