//! Integration tests for the serving path: many client threads, live
//! index swaps, adversarial pool schedules. The key invariant is
//! **snapshot coherence**: every response is computed entirely against
//! one index generation and says which, so a response's clustering must
//! exactly equal the precomputed answer for that generation — never a
//! blend of old and new index state.

use ppscan_core::params::ScanParams;
use ppscan_core::pscan::pscan;
use ppscan_core::result::Clustering;
use ppscan_graph::{gen, CsrGraph};
use ppscan_obs::events::{EventKind, FlightEvent, WatchdogConfig};
use ppscan_sched::ExecutionStrategy;
use ppscan_serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

fn graph_a() -> Arc<CsrGraph> {
    Arc::new(gen::planted_partition(3, 14, 0.6, 0.04, 21))
}

fn graph_b() -> Arc<CsrGraph> {
    Arc::new(gen::clique_chain(6, 5))
}

const GRID: [(f64, usize); 4] = [(0.4, 2), (0.5, 3), (0.7, 2), (1.0, 1)];

fn answers(g: &CsrGraph) -> HashMap<(u64, usize), Clustering> {
    GRID.iter()
        .map(|&(eps, mu)| {
            (
                (eps.to_bits(), mu),
                pscan(g, ScanParams::new(eps, mu)).clustering,
            )
        })
        .collect()
}

/// Clients hammer the server while the main thread swaps the index back
/// and forth between two distinguishable graphs. Every response must
/// match the ground truth of exactly the generation it claims — under an
/// adversarial pool schedule, so task interleavings inside each batch
/// are perturbed too.
#[test]
fn responses_are_coherent_across_live_swaps() {
    let a = graph_a();
    let b = graph_b();
    let expected_a = answers(&a);
    let expected_b = answers(&b);
    // Generation g serves graph A when odd (gen 1 is the initial A
    // index; each rebuild alternates).
    let expected = |generation: u64, eps: f64, mu: usize| -> &Clustering {
        let table = if generation % 2 == 1 {
            &expected_a
        } else {
            &expected_b
        };
        &table[&(eps.to_bits(), mu)]
    };

    let server = Server::start(
        Arc::clone(&a),
        ServeConfig {
            threads: 3,
            max_batch: 8,
            strategy: ExecutionStrategy::AdversarialSeeded { seed: 0xC0FFEE },
            ..ServeConfig::default()
        },
    );

    const CLIENTS: usize = 6;
    const QUERIES: usize = 60;
    const SWAPS: u64 = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                for q in 0..QUERIES {
                    let (eps, mu) = GRID[(c + q) % GRID.len()];
                    let response = server.query(eps, mu);
                    let clustering = response.result.expect("valid params");
                    assert_eq!(
                        &clustering,
                        expected(response.generation, eps, mu),
                        "incoherent response: generation {} for ({eps}, {mu})",
                        response.generation
                    );
                }
            });
        }
        // Swap while the clients are in flight.
        for s in 0..SWAPS {
            let next = if s % 2 == 0 {
                Arc::clone(&b)
            } else {
                Arc::clone(&a)
            };
            let generation = server.rebuild(next);
            assert_eq!(generation, s + 2, "generations publish in order");
        }
    });

    assert_eq!(server.queries_served(), (CLIENTS * QUERIES) as u64);
    assert_eq!(server.latency().count(), (CLIENTS * QUERIES) as u64);
    assert_eq!(server.generation(), SWAPS + 1);
    // Once the dispatcher re-pins after the last swap, at most one
    // stale snapshot can still be held by its pin; a final query forces
    // a fresh pin and lets everything older be reclaimed.
    let _ = server.query(0.5, 2);
    assert!(
        server.retired_snapshots() <= 1,
        "old snapshots must be reclaimed, {} retired",
        server.retired_snapshots()
    );
}

/// Queries submitted before, during, and after a swap all complete, and
/// the swap itself never waits for the queue to drain: the rebuild
/// thread publishes while dozens of queries are still queued behind a
/// deliberately tiny batch size.
#[test]
fn queries_complete_without_blocking_across_a_swap() {
    let a = graph_a();
    let b = graph_b();
    let server = Server::start(
        Arc::clone(&a),
        ServeConfig {
            threads: 2,
            max_batch: 2,
            ..ServeConfig::default()
        },
    );

    let before: Vec<_> = (0..40).map(|_| server.submit(0.5, 2)).collect();
    let generation = server.rebuild(b);
    assert_eq!(generation, 2);
    let after: Vec<_> = (0..40).map(|_| server.submit(0.5, 2)).collect();

    let mut generations_seen = Vec::new();
    for ticket in before.into_iter().chain(after) {
        let response = ticket.wait();
        assert!(response.result.is_ok());
        generations_seen.push(response.generation);
    }
    assert_eq!(generations_seen.len(), 80);
    // The tail of the stream must be on the new index (the swap
    // happened before those queries were submitted)...
    assert_eq!(*generations_seen.last().unwrap(), 2);
    // ...and generations never go backwards in delivery order within a
    // client's FIFO stream.
    let mut last = 0;
    for g in generations_seen {
        assert!(g >= last, "generation went backwards");
        last = g;
    }
}

/// A deliberately stalled dispatcher provably trips the watchdog and
/// dumps the flight recorder. The stall is staged deterministically
/// through the `batch_hook` seam: the hook blocks the dispatcher inside
/// its first batch (work pinned in flight, more work queued behind it)
/// until the watchdog has fired, then releases it — after which every
/// query still completes.
#[test]
fn stalled_dispatcher_trips_the_watchdog_and_dumps_the_recorder() {
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
    }
    let gate = Arc::new(Gate {
        open: Mutex::new(false),
        cv: Condvar::new(),
    });

    let server = Server::start(
        graph_a(),
        ServeConfig {
            threads: 2,
            max_batch: 4,
            watchdog: Some(WatchdogConfig {
                deadline: Duration::from_millis(100),
                poll: Duration::from_millis(10),
            }),
            batch_hook: Some(Arc::new({
                let gate = Arc::clone(&gate);
                move |ordinal| {
                    if ordinal > 0 {
                        return; // only the first batch stalls
                    }
                    let mut open = gate.open.lock().unwrap();
                    // Safety valve so a broken watchdog can't wedge the
                    // test forever: the gate self-opens after 5s.
                    let deadline = Instant::now() + Duration::from_secs(5);
                    while !*open {
                        let timeout = deadline.saturating_duration_since(Instant::now());
                        if timeout.is_zero() {
                            break;
                        }
                        let (guard, _) = gate.cv.wait_timeout(open, timeout).unwrap();
                        open = guard;
                    }
                }
            })),
            ..ServeConfig::default()
        },
    );

    // Enough work for the stalled batch plus a queue behind it: the
    // probe's pending view stays positive for the whole episode.
    let tickets: Vec<_> = (0..12).map(|_| server.submit(0.5, 2)).collect();

    let poll_deadline = Instant::now() + Duration::from_secs(10);
    while server.watchdog_trips() == 0 && Instant::now() < poll_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.watchdog_trips() >= 1,
        "watchdog never tripped on a stalled dispatcher"
    );

    // Release the dispatcher; the backlog must fully drain.
    *gate.open.lock().unwrap() = true;
    gate.cv.notify_all();
    for ticket in tickets {
        assert!(ticket.wait().result.is_ok());
    }

    // The trip captured a dump: valid JSON holding the stalled batch's
    // start event and the trip itself.
    let dump = server.watchdog_dump().expect("trip must capture a dump");
    let json = ppscan_obs::json::parse(&dump).expect("dump must be valid JSON");
    let events: Vec<FlightEvent> = json
        .get("events")
        .and_then(|e| e.as_arr())
        .expect("dump has an events array")
        .iter()
        .map(|e| FlightEvent::from_json(e).expect("events parse"))
        .collect();
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::BatchStart), "kinds: {kinds:?}");
    assert!(kinds.contains(&EventKind::WatchdogTrip), "kinds: {kinds:?}");
    assert!(
        server
            .metrics_snapshot()
            .counter("serve.watchdog_trips")
            .unwrap()
            >= 1
    );
}

/// The server keeps its observability contract: spans from the serving
/// loop land in a collector activated around `start`, with the batch
/// and query stages both present.
#[test]
fn serving_spans_land_in_the_callers_collector() {
    let collector = ppscan_obs::Collector::new();
    let guard = collector.activate();
    let server = Server::start(graph_a(), ServeConfig::default());
    for _ in 0..10 {
        assert!(server.query(0.5, 2).result.is_ok());
    }
    drop(server);
    drop(guard);
    let stages: Vec<&str> = collector.snapshot().into_iter().map(|s| s.stage).collect();
    assert!(
        stages.contains(&"serve-batch"),
        "missing serve-batch in {stages:?}"
    );
    assert!(
        stages.contains(&"serve-query"),
        "missing serve-query in {stages:?}"
    );
}
