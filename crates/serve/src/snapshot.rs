//! Epoch-counted atomic snapshot cell: readers never block, writers
//! swap a pointer and reclaim the old value once no reader can still
//! hold it.
//!
//! This is a std-only miniature of epoch-based reclamation, sized for
//! the serving path's needs: one long-lived value (the index snapshot),
//! a handful of registered readers (one per dispatcher), and rare
//! writes (index rebuilds). The protocol:
//!
//! * The cell holds the current value behind an [`AtomicPtr`] plus a
//!   global epoch counter (starting at 1).
//! * A reader *pins* by storing the current epoch into its registered
//!   slot, then loading the pointer. Unpinning stores 0. Both are
//!   single atomic stores — no locks, no CAS loops — so a pin can sit
//!   on the per-batch hot path.
//! * A writer *publishes* by swapping the pointer, bumping the epoch
//!   (the pre-bump value `E` tags the retirement), and parking the old
//!   pointer on a retired list. A retired value is dropped once every
//!   reader slot is either idle (0) or pinned at an epoch `> E`.
//!
//! Safety under the all-`SeqCst` total order: if a reader's pointer
//! load saw the *old* value, that load preceded the writer's swap, and
//! therefore the writer's epoch bump and retirement scan; the reader's
//! slot store (sequenced before its pointer load) is then visible to
//! the scan with a value `≤ E`, so the value is kept. Conversely a slot
//! holding `> E` was stored after the bump, hence after the swap, so
//! that reader can only have loaded the new pointer. A slow reader
//! pinned at a stale epoch only delays reclamation, never unsoundness.
//! `ppscan-check` models the same argument exhaustively in its
//! interleaving catalog.

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A value retired at epoch `epoch`; droppable once no slot pins `≤ epoch`.
struct Retired<T> {
    epoch: u64,
    ptr: *mut T,
}

// SAFETY: the raw pointer is the unique owner of a heap `T` (from
// `Box::into_raw`); moving the record across threads moves ownership.
unsafe impl<T: Send> Send for Retired<T> {}

/// The shared cell. Clone the `Arc` holding it to share between the
/// writer and [`Reader`]s.
pub struct SnapshotCell<T> {
    ptr: AtomicPtr<T>,
    epoch: AtomicU64,
    readers: Mutex<Vec<Arc<AtomicU64>>>,
    retired: Mutex<Vec<Retired<T>>>,
}

// SAFETY: `ptr` owns a heap `T` handed out as `&T` to pinned readers on
// any thread (`T: Sync`) and dropped on whichever thread reclaims it
// (`T: Send`); the remaining fields are atomics and mutexes.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T: Send + Sync> SnapshotCell<T> {
    /// A cell holding `value` at epoch 1.
    pub fn new(value: T) -> SnapshotCell<T> {
        SnapshotCell {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            epoch: AtomicU64::new(1),
            readers: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current epoch: 1 + the number of publishes so far.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Registers a new reader. Registration takes a short lock;
    /// pinning afterwards is lock-free.
    pub fn reader(self: &Arc<Self>) -> Reader<T> {
        let slot = Arc::new(AtomicU64::new(0));
        lock(&self.readers).push(Arc::clone(&slot));
        Reader {
            cell: Arc::clone(self),
            slot,
        }
    }

    /// Atomically replaces the current value and retires the old one.
    /// Never waits for readers: active pins keep the old value alive on
    /// the retired list until they release. Returns the new epoch.
    pub fn publish(&self, value: T) -> u64 {
        let new = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(new, SeqCst);
        let retired_epoch = self.epoch.fetch_add(1, SeqCst);
        lock(&self.retired).push(Retired {
            epoch: retired_epoch,
            ptr: old,
        });
        self.try_reclaim();
        retired_epoch + 1
    }

    /// Drops every retired value no reader can still reference (see the
    /// module docs for the argument). Returns how many were dropped.
    /// Called automatically on publish and reader drop.
    pub fn try_reclaim(&self) -> usize {
        let pins: Vec<u64> = lock(&self.readers).iter().map(|s| s.load(SeqCst)).collect();
        let mut retired = lock(&self.retired);
        let before = retired.len();
        retired.retain(|r| {
            let still_pinned = pins.iter().any(|&p| p != 0 && p <= r.epoch);
            if !still_pinned {
                // SAFETY: ownership of the heap value moved onto the
                // retired list at publish; no slot can still map to it.
                drop(unsafe { Box::from_raw(r.ptr) });
            }
            still_pinned
        });
        before - retired.len()
    }

    /// Number of retired-but-not-yet-reclaimed values (for tests and
    /// metrics).
    pub fn retired_len(&self) -> usize {
        lock(&self.retired).len()
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; current and retired pointers are
        // owned by the cell and unreachable from anywhere else now.
        unsafe {
            drop(Box::from_raw(self.ptr.load(SeqCst)));
            for r in lock(&self.retired).drain(..) {
                drop(Box::from_raw(r.ptr));
            }
        }
    }
}

/// A registered reader. Pinning requires `&mut self`, so each reader
/// holds at most one [`Guard`] at a time (a second pin would overwrite
/// the slot and unpin the first); create one reader per thread that
/// needs concurrent pins.
pub struct Reader<T: Send + Sync> {
    cell: Arc<SnapshotCell<T>>,
    slot: Arc<AtomicU64>,
}

impl<T: Send + Sync> Reader<T> {
    /// Pins the current value: two atomic stores plus a load, no locks.
    /// The returned guard dereferences to the pinned value and releases
    /// the pin on drop.
    pub fn pin(&mut self) -> Guard<'_, T> {
        let epoch = self.cell.epoch.load(SeqCst);
        self.slot.store(epoch, SeqCst);
        let ptr = self.cell.ptr.load(SeqCst);
        Guard {
            slot: &self.slot,
            // SAFETY: the slot now holds a nonzero epoch `≤` any epoch
            // under which the loaded value could be retired, so the
            // reclaimer keeps the value at least until the guard's drop
            // clears the slot (module-level argument).
            value: unsafe { &*ptr },
        }
    }

    /// The cell this reader is registered with.
    pub fn cell(&self) -> &Arc<SnapshotCell<T>> {
        &self.cell
    }
}

impl<T: Send + Sync> Drop for Reader<T> {
    fn drop(&mut self) {
        self.slot.store(0, SeqCst);
        let mut readers = lock(&self.cell.readers);
        readers.retain(|s| !Arc::ptr_eq(s, &self.slot));
        drop(readers);
        // This reader may have been the last thing keeping a retired
        // value alive.
        self.cell.try_reclaim();
    }
}

/// An active pin. Dereferences to the pinned value.
pub struct Guard<'a, T> {
    slot: &'a AtomicU64,
    value: &'a T,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        self.slot.store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering::Relaxed;

    #[test]
    fn readers_see_published_values_in_order() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let mut reader = cell.reader();
        assert_eq!(*reader.pin(), 0);
        assert_eq!(cell.publish(1), 2);
        assert_eq!(*reader.pin(), 1);
        assert_eq!(cell.current_epoch(), 2);
        // Pins are monotone: repeated pins never observe older values.
        let mut last = *reader.pin();
        for v in 2..10 {
            cell.publish(v);
            let seen = *reader.pin();
            assert!(seen >= last);
            last = seen;
        }
    }

    struct DropCounter<'a>(&'a AtomicUsize, u64);
    impl Drop for DropCounter<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Relaxed);
        }
    }

    #[test]
    fn publish_never_blocks_and_reclaims_after_release() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        let cell = Arc::new(SnapshotCell::new(DropCounter(&DROPS, 0)));
        let mut reader = cell.reader();
        let guard = reader.pin();
        assert_eq!(guard.1, 0);
        // Publishing while the old value is pinned returns immediately
        // and must not drop the pinned value.
        cell.publish(DropCounter(&DROPS, 1));
        assert_eq!(DROPS.load(Relaxed), 0, "pinned value freed under a guard");
        assert_eq!(cell.retired_len(), 1);
        assert_eq!(guard.1, 0, "guard still reads the pinned snapshot");
        drop(guard);
        assert_eq!(cell.try_reclaim(), 1);
        assert_eq!(DROPS.load(Relaxed), 1);
        assert_eq!(cell.retired_len(), 0);
        // A fresh pin sees the new value.
        assert_eq!(reader.pin().1, 1);
    }

    #[test]
    fn reader_drop_unblocks_reclamation() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        let cell = Arc::new(SnapshotCell::new(DropCounter(&DROPS, 0)));
        let mut reader = cell.reader();
        let guard = reader.pin();
        cell.publish(DropCounter(&DROPS, 1));
        // Leak the guard's pin by dropping guard then reader: retired
        // value must be reclaimed by the reader's drop hook.
        drop(guard);
        drop(reader);
        assert_eq!(DROPS.load(Relaxed), 1);
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn no_torn_reads_under_concurrent_publishes() {
        // The payload is a self-consistent pair; any torn read (pointer
        // to a half-updated or freed value) shows up as a mismatch or
        // crashes under the sanitizer-like debug allocator.
        let cell = Arc::new(SnapshotCell::new((0u64, !0u64)));
        let writers_done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let done = Arc::clone(&writers_done);
                scope.spawn(move || {
                    let mut reader = cell.reader();
                    while done.load(SeqCst) == 0 {
                        let g = reader.pin();
                        assert_eq!(g.0, !g.1, "torn read: {:?}", *g);
                    }
                });
            }
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&writers_done);
            scope.spawn(move || {
                for v in 1..=2000u64 {
                    cell.publish((v, !v));
                }
                done.store(1, SeqCst);
            });
        });
        // All readers unregistered: everything retired is reclaimable.
        cell.try_reclaim();
        assert_eq!(cell.retired_len(), 0);
        let mut reader = cell.reader();
        assert_eq!(*reader.pin(), (2000, !2000));
    }
}
