//! `ppscan-serve`: a long-lived `(ε, µ)` structural-clustering service
//! over a shared GS*-Index.
//!
//! The paper's offline pipeline answers one parameterization per run;
//! the index crate (`ppscan-gsindex`) already amortizes the similarity
//! work across parameterizations. This crate adds the last layer: a
//! **server** that builds the index once and answers concurrent
//! `(ε, µ)` cluster/hub/outlier queries from many client threads, with
//! index refreshes that never block the query path.
//!
//! * [`snapshot`] — [`snapshot::SnapshotCell`], a std-only
//!   epoch-reclaimed atomic snapshot: readers pin with two atomic
//!   stores, writers swap a pointer and reclaim old snapshots once no
//!   pin can reach them.
//! * [`server`] — [`server::Server`]: an in-process request queue, a
//!   dispatcher that executes batches on a `ppscan-sched`
//!   [`WorkerPool`](ppscan_sched::WorkerPool) under one snapshot pin
//!   per batch, per-query `ppscan-obs` spans, and a lock-free latency
//!   histogram (p50/p99/p999) for run reports.
//!
//! See DESIGN.md §11 for the protocol write-up and the report fields
//! the serve benchmark emits.
//!
//! # Example
//!
//! ```
//! use ppscan_serve::{Server, ServeConfig};
//! use std::sync::Arc;
//!
//! let graph = Arc::new(ppscan_graph::gen::planted_partition(2, 12, 0.7, 0.05, 3));
//! let server = Server::start(Arc::clone(&graph), ServeConfig::default());
//! let response = server.query(0.5, 2);
//! assert_eq!(response.generation, 1);
//! assert!(response.result.unwrap().num_cores() > 0);
//! ```

#![warn(missing_docs)]

pub mod server;
pub mod snapshot;

pub use server::{QueryResponse, ServeConfig, Server, Ticket};
pub use snapshot::{Guard, Reader, SnapshotCell};
