//! `ppscan-serve`: stand up a clustering server over a graph file and
//! answer `(ε, µ)` queries.
//!
//! ```text
//! ppscan-serve <graph> [--threads N] [--batch B]            # stdin REPL
//! ppscan-serve <graph> --demo [--clients C] [--queries Q]   # load demo
//! ```
//!
//! REPL mode reads one `EPS MU` pair per stdin line and prints the
//! cluster summary (or the validation error) per query; `/metrics`
//! prints a live [`MetricsSnapshot`](ppscan_obs::registry::MetricsSnapshot)
//! and `/flight` the recent-event ring. The graph itself is editable
//! live: `insert U V` / `delete U V` stage edge edits into a pending
//! batch and `flush` publishes it as one new index generation via the
//! incremental update path — malformed ids are an error line, never a
//! panic, and an invalid batch is reported and discarded. Demo mode runs `C` closed-loop
//! client threads issuing `Q` queries each and prints the latency
//! summary JSON the serve benchmark embeds in its reports (plus a final
//! metrics snapshot on stderr).
//!
//! Both modes run a stall watchdog (`--watchdog-secs`, 0 to disable)
//! and install a panic hook that dumps the flight recorder to stderr,
//! so a wedged or crashing server leaves its last moments behind.

use ppscan_graph::{io, CsrGraph, GraphDelta};
use ppscan_obs::events::{install_panic_dump, WatchdogConfig};
use ppscan_serve::{ServeConfig, Server};
use std::io::BufRead;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> &'static str {
    "usage: ppscan-serve <graph> [--threads N] [--batch B] \
     [--watchdog-secs S] [--demo [--clients C] [--queries Q]]"
}

fn parse_or_exit<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what}: {s}");
        exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{}", usage());
        exit(0);
    }

    // Full-list validation, same contract as ppscan-cli: unknown flags
    // are an error, not a silent default.
    let value_flags = [
        "--threads",
        "--batch",
        "--clients",
        "--queries",
        "--watchdog-secs",
    ];
    let bool_flags = ["--demo"];
    let mut positionals: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if value_flags.contains(&a) {
                if i + 1 >= args.len() {
                    eprintln!("missing value for {a}\n{}", usage());
                    exit(2);
                }
                i += 1;
            } else if !bool_flags.contains(&a) {
                eprintln!("unknown flag {a}\n{}", usage());
                exit(2);
            }
        } else {
            positionals.push(a);
        }
        i += 1;
    }
    if positionals.len() != 1 {
        eprintln!("{}", usage());
        exit(2);
    }

    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let path = positionals[0];
    let threads: usize = parse_or_exit(flag("--threads").unwrap_or("2"), "--threads");
    let batch: usize = parse_or_exit(flag("--batch").unwrap_or("64"), "--batch");
    let demo = args.iter().any(|a| a == "--demo");
    let clients: usize = parse_or_exit(flag("--clients").unwrap_or("4"), "--clients");
    let queries: usize = parse_or_exit(flag("--queries").unwrap_or("100"), "--queries");
    let watchdog_secs: u64 =
        parse_or_exit(flag("--watchdog-secs").unwrap_or("5"), "--watchdog-secs");

    let graph: CsrGraph = {
        let result = if path.ends_with(".bin") {
            io::read_binary_file(path)
        } else {
            io::read_edge_list_file(path)
        };
        result.unwrap_or_else(|e| {
            eprintln!("failed to load {path}: {e}");
            exit(1);
        })
    };
    eprintln!(
        "loaded {path}: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    // Updates edit edges over a fixed vertex set; remember its size for
    // stage-time validation once the graph has moved into the server.
    let num_vertices = graph.num_vertices();

    let t0 = std::time::Instant::now();
    let server = Server::start(
        Arc::new(graph),
        ServeConfig {
            threads,
            max_batch: batch,
            watchdog: (watchdog_secs > 0).then(|| WatchdogConfig {
                deadline: Duration::from_secs(watchdog_secs),
                ..WatchdogConfig::default()
            }),
            ..ServeConfig::default()
        },
    );
    // A crashing server should leave its recent event history behind.
    install_panic_dump(Arc::clone(server.flight_recorder()));
    eprintln!(
        "index built in {:?}; serving with {threads} threads, batch {batch}",
        t0.elapsed()
    );

    if demo {
        let t0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let server = &server;
                scope.spawn(move || {
                    for q in 0..queries {
                        // A deterministic small sweep per client.
                        let eps = 0.2 + 0.15 * ((c + q) % 5) as f64;
                        let mu = 1 + (c + q) % 6;
                        let response = server.query(eps, mu);
                        assert!(response.result.is_ok(), "valid params must succeed");
                    }
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        let total = server.queries_served();
        eprintln!(
            "{total} queries from {clients} clients in {wall:.3}s \
             ({:.0} q/s)",
            total as f64 / wall
        );
        println!("{}", server.latency().to_json().to_pretty_string());
        eprintln!("{}", server.metrics_snapshot().to_json().to_pretty_string());
        return;
    }

    eprintln!(
        "enter `EPS MU` per line, `insert U V` / `delete U V` / `flush` \
         to edit the graph, `/metrics` or `/flight` (EOF to quit):"
    );
    let stdin = std::io::stdin();
    let mut pending = GraphDelta::new();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        match line.trim() {
            "/metrics" => {
                println!("{}", server.metrics_snapshot().to_json().to_pretty_string());
                continue;
            }
            "/flight" => {
                println!("{}", server.flight_recorder().to_json().to_pretty_string());
                continue;
            }
            "flush" => {
                if pending.is_empty() {
                    println!("nothing staged");
                    continue;
                }
                let staged = pending.len();
                match server.update(&std::mem::take(&mut pending)) {
                    Ok(generation) => {
                        println!("[gen {generation}] applied batch of {staged} staged edits")
                    }
                    // The batch is discarded either way: a rejected batch
                    // (duplicate edit, out-of-range id) shouldn't poison
                    // the next one.
                    Err(e) => println!("error: batch rejected ({e}); staged edits discarded"),
                }
                continue;
            }
            _ => {}
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if let ["insert" | "delete", u, v] = tokens.as_slice() {
            let op = tokens[0];
            let (Ok(u), Ok(v)) = (u.parse::<u32>(), v.parse::<u32>()) else {
                println!("error: expected `{op} U V` with numeric vertex ids");
                continue;
            };
            if (u as usize) >= num_vertices || (v as usize) >= num_vertices {
                println!("error: vertex id out of range (graph has {num_vertices} vertices)");
                continue;
            }
            let staged = if op == "insert" {
                pending.insert(u, v)
            } else {
                pending.delete(u, v)
            };
            match staged {
                Ok(()) => println!("staged {op} ({u}, {v}); {} pending", pending.len()),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(eps), Some(mu)) = (parts.next(), parts.next()) else {
            if !line.trim().is_empty() {
                eprintln!("expected: EPS MU");
            }
            continue;
        };
        let (Ok(eps), Ok(mu)) = (eps.parse::<f64>(), mu.parse::<usize>()) else {
            eprintln!("expected: EPS MU (numbers)");
            continue;
        };
        let response = server.query(eps, mu);
        match response.result {
            Ok(clustering) => println!("[gen {}] {}", response.generation, clustering.summary()),
            Err(e) => println!("[gen {}] error: {e}", response.generation),
        }
    }
}
