//! The serving loop: a dispatcher thread drains an in-process request
//! queue into batches, pins one index snapshot per batch, and fans the
//! batch out across a [`WorkerPool`].
//!
//! Threading model:
//!
//! * **Clients** (any number of threads) call [`Server::submit`] /
//!   [`Server::query`]: push a job onto a mutex-protected queue and
//!   optionally block on a per-job response slot.
//! * **One dispatcher** owns the pool and the snapshot [`Reader`]. It
//!   pins the current [`IndexSnapshot`] *once per batch* — the
//!   per-query path inside the pool shares the `&` reference and never
//!   touches the snapshot cell.
//! * **Rebuilds** ([`Server::rebuild`]) happen on the calling thread:
//!   build the new index, then [`SnapshotCell::publish`] it. Publishing
//!   never waits for in-flight batches; the old index is reclaimed once
//!   the dispatcher's pin moves past it.
//!
//! Every query runs under a `serve-query` span nested in the batch's
//! `serve-batch` span, and its queue-to-completion latency lands in a
//! shared [`LatencyHistogram`], so a `ppscan-obs` collector activated
//! around [`Server::start`] sees the full serving pipeline.
//!
//! On top of the post-hoc span layer the server carries *live*
//! telemetry, because a long-lived process can't wait for a report at
//! exit:
//!
//! * A per-server [`MetricsRegistry`] ([`Server::metrics`]) with the
//!   serving gauges (`serve.queue_depth`, `serve.in_flight`,
//!   `serve.batch_size`, `serve.generation`), counters (`serve.queries`,
//!   `serve.batches`, `serve.slow_queries`, `serve.rebuilds`,
//!   `serve.watchdog_trips`), the `serve.latency` histogram, and the
//!   query pool's `pool.*` family ([`ppscan_sched::PoolMetrics`]).
//!   Sample it any time with [`Server::metrics_snapshot`].
//! * A [`FlightRecorder`] ring of recent structured events (enqueue,
//!   batch-start/end, swap, slow-query) sized by
//!   [`ServeConfig::recorder_capacity`].
//! * An optional [`StallWatchdog`] ([`ServeConfig::watchdog`]) whose
//!   probe reads completed batches as progress and queue depth plus the
//!   in-flight batch as pending work: if the dispatcher stops making
//!   progress with work outstanding for longer than the deadline, the
//!   recorder is dumped ([`Server::watchdog_dump`]) and
//!   `serve.watchdog_trips` moves. Size the deadline well above the
//!   worst single-batch latency.

use crate::snapshot::SnapshotCell;
use ppscan_core::params::ScanParams;
use ppscan_core::result::Clustering;
use ppscan_graph::{CsrGraph, GraphDelta};
use ppscan_gsindex::OwnedGsIndex;
use ppscan_obs::events::{
    EventKind, FlightRecorder, StallWatchdog, WatchdogConfig, DEFAULT_RECORDER_CAPACITY,
};
use ppscan_obs::registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
use ppscan_obs::{propagate, LatencyHistogram, Span};
use ppscan_sched::{ExecutionStrategy, PoolMetrics, WorkerPool};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration for [`Server::start`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads in the query pool (also used for index builds).
    pub threads: usize,
    /// Largest number of queued queries executed under one snapshot pin.
    pub max_batch: usize,
    /// Execution strategy for the query pool. `AdversarialSeeded` turns
    /// the serving path into a schedule-perturbed stress harness.
    pub strategy: ExecutionStrategy,
    /// Queue-to-response latency (nanoseconds) above which a query
    /// counts as slow: bumps `serve.slow_queries` and records a
    /// flight-recorder event. 0 disables slow-query tracking.
    pub slow_query_nanos: u64,
    /// Capacity of the flight-recorder event ring.
    pub recorder_capacity: usize,
    /// Stall-watchdog deadline/poll; `None` runs without a watchdog.
    pub watchdog: Option<WatchdogConfig>,
    /// Test seam: called by the dispatcher with the 0-based batch
    /// ordinal after the batch's snapshot is pinned and its batch-start
    /// event recorded, *before* any query runs. A hook that blocks
    /// stalls the dispatcher mid-batch — exactly what a watchdog test
    /// needs to stage deterministically.
    pub batch_hook: Option<Arc<dyn Fn(u64) + Send + Sync>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 2,
            max_batch: 64,
            strategy: ExecutionStrategy::Parallel,
            slow_query_nanos: 0,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            watchdog: None,
            batch_hook: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("threads", &self.threads)
            .field("max_batch", &self.max_batch)
            .field("strategy", &self.strategy)
            .field("slow_query_nanos", &self.slow_query_nanos)
            .field("recorder_capacity", &self.recorder_capacity)
            .field("watchdog", &self.watchdog)
            .field("batch_hook", &self.batch_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

/// The unit the snapshot cell publishes: an owned index tagged with the
/// generation that produced it. Keeping the generation inside the
/// payload (rather than deriving it from the cell's epoch at read time)
/// means a response's generation always names exactly the index that
/// answered it.
struct IndexSnapshot {
    generation: u64,
    index: OwnedGsIndex,
}

/// What a client gets back for one submitted query.
#[derive(Debug)]
pub struct QueryResponse {
    /// Generation of the index snapshot that answered the query (1 for
    /// the index built at [`Server::start`], +1 per [`Server::rebuild`]).
    pub generation: u64,
    /// The clustering, or the parameter-validation error. A malformed
    /// `(ε, µ)` is an `Err`, never a panic: one bad client must not
    /// take down the dispatcher.
    pub result: Result<Clustering, String>,
}

struct ResponseSlot {
    filled: Mutex<Option<QueryResponse>>,
    cv: Condvar,
}

/// A handle to one in-flight query; redeem it with [`Ticket::wait`].
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the dispatcher delivers the response.
    pub fn wait(self) -> QueryResponse {
        let mut filled = lock(&self.slot.filled);
        loop {
            if let Some(response) = filled.take() {
                return response;
            }
            filled = self
                .slot
                .cv
                .wait(filled)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Job {
    eps: f64,
    mu: usize,
    enqueued: Instant,
    slot: Arc<ResponseSlot>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// A long-lived `(ε, µ)` clustering server over a [`SnapshotCell`] of
/// [`OwnedGsIndex`]. `Server` is `Sync`: share `&Server` across client
/// threads (e.g. via `std::thread::scope`). Dropping the server drains
/// the queue, answers every outstanding ticket, and joins the
/// dispatcher.
pub struct Server {
    shared: Arc<Shared>,
    cell: Arc<SnapshotCell<IndexSnapshot>>,
    hist: Arc<LatencyHistogram>,
    metrics: Arc<MetricsRegistry>,
    recorder: Arc<FlightRecorder>,
    watchdog: Option<StallWatchdog>,
    queries: Counter,
    rebuilds: Counter,
    updates: Counter,
    update_applied: Counter,
    update_touched: Counter,
    watchdog_trips: Counter,
    queue_depth: Gauge,
    generation_gauge: Gauge,
    next_generation: AtomicU64,
    rebuild_lock: Mutex<()>,
    threads: usize,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Builds a [`GsIndex`](ppscan_gsindex::GsIndex) over `graph` (this
    /// is the expensive part) and starts the dispatcher. Ambient
    /// observability context (span collectors, counter scopes) active
    /// on the calling thread is captured and re-attached on the
    /// dispatcher, so spans from the serving loop land in the caller's
    /// collector.
    pub fn start(graph: Arc<CsrGraph>, config: ServeConfig) -> Server {
        let threads = config.threads.max(1);
        let index = OwnedGsIndex::build(graph, threads);
        let cell = Arc::new(SnapshotCell::new(IndexSnapshot {
            generation: 1,
            index,
        }));
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let metrics = Arc::new(MetricsRegistry::new());
        let hist = metrics.histogram("serve.latency");
        let queries = metrics.counter("serve.queries");
        let batches = metrics.counter("serve.batches");
        let slow_queries = metrics.counter("serve.slow_queries");
        let rebuilds = metrics.counter("serve.rebuilds");
        let updates = metrics.counter("serve.updates");
        let update_applied = metrics.counter("update.applied_edges");
        let update_touched = metrics.counter("update.touched_vertices");
        let watchdog_trips = metrics.counter("serve.watchdog_trips");
        let queue_depth = metrics.gauge("serve.queue_depth");
        let in_flight = metrics.gauge("serve.in_flight");
        let batch_size = metrics.gauge("serve.batch_size");
        let generation_gauge = metrics.gauge("serve.generation");
        generation_gauge.set(1);
        let pool_metrics = PoolMetrics::register(&metrics, "pool", threads);
        let recorder = Arc::new(FlightRecorder::new(config.recorder_capacity));

        let ctx = propagate::capture();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let cell = Arc::clone(&cell);
            let hist = Arc::clone(&hist);
            let recorder = Arc::clone(&recorder);
            let queries = queries.clone();
            let batches = batches.clone();
            let slow_queries = slow_queries.clone();
            let queue_depth = queue_depth.clone();
            let in_flight = in_flight.clone();
            let max_batch = config.max_batch.max(1);
            let strategy = config.strategy;
            let slow_query_nanos = config.slow_query_nanos;
            let batch_hook = config.batch_hook.clone();
            std::thread::Builder::new()
                .name("ppscan-serve-dispatch".into())
                .spawn(move || {
                    let _ctx = ctx.attach();
                    let pool = WorkerPool::with_strategy(threads, strategy);
                    pool.attach_metrics(pool_metrics);
                    let mut reader = cell.reader();
                    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
                    let mut batch_ordinal = 0u64;
                    loop {
                        {
                            let mut queue = lock(&shared.queue);
                            while queue.is_empty() && !shared.shutdown.load(SeqCst) {
                                queue = shared
                                    .cv
                                    .wait(queue)
                                    .unwrap_or_else(PoisonError::into_inner);
                            }
                            if queue.is_empty() {
                                // Shutdown requested and fully drained.
                                break;
                            }
                            while batch.len() < max_batch {
                                match queue.pop_front() {
                                    Some(job) => batch.push(job),
                                    None => break,
                                }
                            }
                        }
                        // In-flight before queue_depth is decremented,
                        // so the watchdog's pending view (depth +
                        // in-flight) never dips to 0 mid-handoff.
                        in_flight.set(batch.len() as i64);
                        batch_size.set(batch.len() as i64);
                        queue_depth.add(-(batch.len() as i64));
                        let _batch_span = Span::enter("serve-batch");
                        // One pin per batch: every query in the batch
                        // sees the same generation, and the per-query
                        // path does zero snapshot synchronization.
                        let snap = reader.pin();
                        let snap: &IndexSnapshot = &snap;
                        recorder.record(EventKind::BatchStart, batch.len() as u64, snap.generation);
                        if let Some(hook) = &batch_hook {
                            hook(batch_ordinal);
                        }
                        let hist = &hist;
                        let recorder = &recorder;
                        let queries = &queries;
                        let slow_queries = &slow_queries;
                        pool.run_mut(&mut batch, move |job| {
                            let _span = Span::enter("serve-query");
                            let result = ScanParams::checked(job.eps, job.mu)
                                .map(|params| snap.index.query(params));
                            let latency =
                                job.enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            hist.record(latency);
                            queries.incr();
                            if slow_query_nanos > 0 && latency >= slow_query_nanos {
                                slow_queries.incr();
                                recorder.record(EventKind::SlowQuery, latency, snap.generation);
                            }
                            let response = QueryResponse {
                                generation: snap.generation,
                                result,
                            };
                            *lock(&job.slot.filled) = Some(response);
                            job.slot.cv.notify_all();
                        });
                        recorder.record(EventKind::BatchEnd, batch.len() as u64, snap.generation);
                        in_flight.set(0);
                        batches.incr();
                        batch_ordinal += 1;
                        batch.clear();
                    }
                })
                .expect("spawn dispatcher")
        };

        let watchdog = config.watchdog.map(|wd_config| {
            let recorder = Arc::clone(&recorder);
            let trips = watchdog_trips.clone();
            let batches = batches.clone();
            let queue_depth = queue_depth.clone();
            let in_flight = in_flight.clone();
            StallWatchdog::spawn(
                wd_config,
                recorder,
                move || {
                    let pending = queue_depth.value().max(0) + in_flight.value().max(0);
                    (batches.value(), pending as u64)
                },
                move |_dump| trips.incr(),
            )
        });

        Server {
            shared,
            cell,
            hist,
            metrics,
            recorder,
            watchdog,
            queries,
            rebuilds,
            updates,
            update_applied,
            update_touched,
            watchdog_trips,
            queue_depth,
            generation_gauge,
            next_generation: AtomicU64::new(2),
            rebuild_lock: Mutex::new(()),
            threads,
            dispatcher: Some(dispatcher),
        }
    }

    /// Enqueues one query; returns immediately with a [`Ticket`].
    pub fn submit(&self, eps: f64, mu: usize) -> Ticket {
        let slot = Arc::new(ResponseSlot {
            filled: Mutex::new(None),
            cv: Condvar::new(),
        });
        let depth = {
            let mut queue = lock(&self.shared.queue);
            queue.push_back(Job {
                eps,
                mu,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            });
            queue.len()
        };
        self.queue_depth.add(1);
        self.recorder.record(EventKind::Enqueue, depth as u64, 0);
        self.shared.cv.notify_one();
        Ticket { slot }
    }

    /// Submits and waits: the blocking convenience wrapper.
    pub fn query(&self, eps: f64, mu: usize) -> QueryResponse {
        self.submit(eps, mu).wait()
    }

    /// Builds an index over `graph` on the *calling* thread and swaps
    /// it in. In-flight and queued queries keep completing against
    /// whichever snapshot their batch pinned — the swap never blocks
    /// them, and they never block the swap. Returns the new snapshot's
    /// generation. Concurrent rebuilds are serialized so generations
    /// publish in order.
    pub fn rebuild(&self, graph: Arc<CsrGraph>) -> u64 {
        let _serialize = lock(&self.rebuild_lock);
        let generation = self.next_generation.fetch_add(1, SeqCst);
        let index = OwnedGsIndex::build(graph, self.threads);
        self.cell.publish(IndexSnapshot { generation, index });
        self.rebuilds.incr();
        self.generation_gauge
            .set(generation.min(i64::MAX as u64) as i64);
        self.recorder.record(EventKind::Swap, 0, generation);
        generation
    }

    /// Applies a batch of edge edits to the currently-published
    /// snapshot's graph and publishes the incrementally-maintained index
    /// as a new generation — one snapshot swap per batch, never one per
    /// edit. The maintenance runs on the calling thread and recomputes
    /// only the touched neighborhoods
    /// ([`OwnedGsIndex::apply_delta`]); in-flight batches keep
    /// answering from whichever snapshot they pinned. An invalid delta
    /// (out-of-range vertex, duplicate edit) is an `Err` and publishes
    /// nothing. Returns the new snapshot's generation.
    pub fn update(&self, delta: &GraphDelta) -> Result<u64, String> {
        let _serialize = lock(&self.rebuild_lock);
        let mut reader = self.cell.reader();
        let applied = {
            let snap = reader.pin();
            snap.index.apply_delta(delta, self.threads)
        };
        drop(reader);
        let (index, stats) = applied.map_err(|e| e.to_string())?;
        let generation = self.next_generation.fetch_add(1, SeqCst);
        self.cell.publish(IndexSnapshot { generation, index });
        self.updates.incr();
        self.update_applied.add(stats.applied_edges as u64);
        self.update_touched.add(stats.touched_vertices as u64);
        self.generation_gauge
            .set(generation.min(i64::MAX as u64) as i64);
        self.recorder
            .record(EventKind::Swap, stats.applied_edges as u64, generation);
        Ok(generation)
    }

    /// Generation of the currently-published snapshot.
    pub fn generation(&self) -> u64 {
        // Publishes are serialized by `rebuild_lock` and each bumps the
        // cell epoch by one from its initial 1, so epoch == generation.
        self.cell.current_epoch()
    }

    /// Per-query latency histogram (queue entry → response delivered).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Total queries answered so far (including parameter errors).
    pub fn queries_served(&self) -> u64 {
        self.queries.value()
    }

    /// The server's live metrics registry (`serve.*` and `pool.*`
    /// instruments). Share it with a
    /// [`TimelineSampler`](ppscan_obs::registry::TimelineSampler) to
    /// record a serving timeline.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time sample of every live instrument.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The flight recorder holding recent serving events.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// How many times the stall watchdog has tripped (0 when running
    /// without one).
    pub fn watchdog_trips(&self) -> u64 {
        self.watchdog_trips.value()
    }

    /// The flight-recorder dump captured at the most recent watchdog
    /// trip, if any.
    pub fn watchdog_dump(&self) -> Option<String> {
        self.watchdog.as_ref().and_then(StallWatchdog::last_dump)
    }

    /// Retired index snapshots not yet reclaimed (0 once every pin has
    /// moved past them). Reclamation otherwise runs on publish and
    /// reader teardown, so this sweeps first: a pin that moved on since
    /// the last publish frees its old snapshot here rather than at the
    /// next rebuild.
    pub fn retired_snapshots(&self) -> usize {
        self.cell.try_reclaim();
        self.cell.retired_len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Stop the watchdog before the dispatcher: the shutdown drain
        // below is ordinary slow progress, not a stall.
        self.watchdog.take();
        self.shared.shutdown.store(true, SeqCst);
        self.shared.cv.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            // A dispatcher panic already poisoned every outstanding
            // ticket; nothing useful to add on top.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_core::pscan::pscan;
    use ppscan_graph::gen;

    fn test_graph() -> Arc<CsrGraph> {
        Arc::new(gen::planted_partition(3, 16, 0.6, 0.03, 11))
    }

    #[test]
    fn serves_the_same_answers_as_direct_queries() {
        let graph = test_graph();
        let server = Server::start(Arc::clone(&graph), ServeConfig::default());
        for (eps, mu) in [(0.4, 2), (0.5, 3), (0.7, 5), (1.0, 1)] {
            let response = server.query(eps, mu);
            assert_eq!(response.generation, 1);
            let expected = pscan(&graph, ScanParams::new(eps, mu)).clustering;
            assert_eq!(response.result.expect("valid params"), expected);
        }
        assert_eq!(server.queries_served(), 4);
        assert_eq!(server.latency().count(), 4);
    }

    #[test]
    fn malformed_params_error_without_killing_the_server() {
        let server = Server::start(test_graph(), ServeConfig::default());
        for (eps, mu) in [(0.0, 2), (-1.0, 2), (1.5, 2), (f64::NAN, 2), (0.5, 0)] {
            let response = server.query(eps, mu);
            assert!(response.result.is_err(), "({eps}, {mu}) must be rejected");
        }
        // The dispatcher is still alive and serving.
        assert!(server.query(0.5, 2).result.is_ok());
        assert_eq!(server.queries_served(), 6);
    }

    #[test]
    fn a_burst_larger_than_max_batch_is_fully_answered() {
        let server = Server::start(
            test_graph(),
            ServeConfig {
                max_batch: 8,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..100).map(|i| server.submit(0.5, 1 + i % 4)).collect();
        for ticket in tickets {
            assert!(ticket.wait().result.is_ok());
        }
        assert_eq!(server.queries_served(), 100);
        assert_eq!(server.latency().count(), 100);
    }

    #[test]
    fn rebuild_swaps_generations_and_answers_track_the_new_graph() {
        let graph_a = test_graph();
        let graph_b = Arc::new(gen::clique_chain(5, 4));
        let server = Server::start(Arc::clone(&graph_a), ServeConfig::default());
        assert_eq!(server.generation(), 1);
        assert_eq!(server.query(0.5, 2).generation, 1);

        assert_eq!(server.rebuild(Arc::clone(&graph_b)), 2);
        assert_eq!(server.generation(), 2);
        let response = server.query(0.5, 2);
        assert_eq!(response.generation, 2);
        assert_eq!(
            response.result.unwrap(),
            pscan(&graph_b, ScanParams::new(0.5, 2)).clustering
        );

        // Nothing pinned across the swap by now: the old snapshot is
        // reclaimable after the post-rebuild batch re-pins.
        assert_eq!(server.rebuild(graph_a), 3);
        let _ = server.query(0.5, 2);
        assert!(server.retired_snapshots() <= 1);
    }

    #[test]
    fn metrics_track_queries_batches_and_rebuilds() {
        let server = Server::start(test_graph(), ServeConfig::default());
        for _ in 0..12 {
            assert!(server.query(0.5, 2).result.is_ok());
        }
        server.rebuild(test_graph());
        assert!(server.query(0.5, 2).result.is_ok());
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.queries"), Some(13));
        let batches = snap.counter("serve.batches").unwrap();
        assert!((1..=13).contains(&batches), "batches = {batches}");
        assert_eq!(snap.counter("serve.rebuilds"), Some(1));
        assert_eq!(snap.counter("serve.watchdog_trips"), Some(0));
        assert_eq!(snap.gauge("serve.generation"), Some(2));
        // Everything answered: no queued or in-flight work left behind.
        assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
        assert_eq!(snap.gauge("serve.in_flight"), Some(0));
        let latency = snap.histogram("serve.latency").unwrap();
        assert_eq!(latency.count, 13);
        // The query pool's instruments ride along in the same registry.
        assert!(snap.counter("pool.dispatches").unwrap() >= 1);
        assert!(snap.counter("pool.tasks").unwrap() >= 13);
    }

    #[test]
    fn flight_recorder_sees_the_batch_lifecycle() {
        let server = Server::start(
            test_graph(),
            ServeConfig {
                // Threshold of 1ns: every query is "slow", so the
                // slow-query path is exercised deterministically.
                slow_query_nanos: 1,
                ..ServeConfig::default()
            },
        );
        assert!(server.query(0.5, 2).result.is_ok());
        server.rebuild(test_graph());
        let events = server.flight_recorder().events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        for kind in [
            EventKind::Enqueue,
            EventKind::BatchStart,
            EventKind::SlowQuery,
            EventKind::BatchEnd,
            EventKind::Swap,
        ] {
            assert!(kinds.contains(&kind), "missing {kind:?} in {kinds:?}");
        }
        assert_eq!(
            server.metrics_snapshot().counter("serve.slow_queries"),
            Some(1)
        );
        // The dump round-trips through JSON text.
        let dump = server.flight_recorder().to_json().to_pretty_string();
        let back = ppscan_obs::json::parse(&dump).unwrap();
        assert_eq!(back.get("dropped").and_then(|d| d.as_u64()), Some(0));
    }

    #[test]
    fn serving_under_race_detection_is_clean() {
        // The full serving path — concurrent clients, the dispatcher's
        // batch fan-out through the query pool, and a mid-stream
        // rebuild/publish — under an active detection session. The pool
        // contributes fork/join/steal edges and every traced access in
        // the query pipeline is checked; any unordered pair would land
        // in the session's race list.
        let session = ppscan_obs::race::DetectionSession::begin();
        let server = Server::start(test_graph(), ServeConfig::default());
        let tickets: Vec<Ticket> = (0..16).map(|i| server.submit(0.5, 1 + i % 3)).collect();
        server.rebuild(test_graph());
        let late: Vec<Ticket> = (0..8).map(|_| server.submit(0.6, 2)).collect();
        for ticket in tickets.into_iter().chain(late) {
            assert!(ticket.wait().result.is_ok());
        }
        drop(server);
        let races = session.finish();
        assert!(races.is_empty(), "serving path raced: {races:?}");
    }

    fn test_delta(
        g: &CsrGraph,
        size: usize,
        rng: &mut ppscan_graph::rng::SplitMix64,
    ) -> GraphDelta {
        let edges: Vec<(u32, u32)> = g.undirected_edges().collect();
        let mut delta = GraphDelta::new();
        let mut used = std::collections::HashSet::new();
        while delta.len() < size {
            if rng.gen_bool(0.5) && !edges.is_empty() {
                let (u, v) = edges[rng.gen_index(edges.len())];
                if used.insert((u, v)) {
                    delta.delete(u, v).unwrap();
                }
            } else {
                let u = rng.gen_index(g.num_vertices()) as u32;
                let v = rng.gen_index(g.num_vertices()) as u32;
                if u != v && used.insert((u.min(v), u.max(v))) {
                    delta.insert(u.min(v), u.max(v)).unwrap();
                }
            }
        }
        delta
    }

    #[test]
    fn update_publishes_one_generation_per_batch() {
        let graph = test_graph();
        let server = Server::start(Arc::clone(&graph), ServeConfig::default());
        let mut rng = ppscan_graph::rng::SplitMix64::seed_from_u64(7);
        let delta = test_delta(&graph, 12, &mut rng);
        let edited = delta.apply_to(&graph).unwrap().graph;

        assert_eq!(server.update(&delta).unwrap(), 2);
        assert_eq!(server.generation(), 2);
        let response = server.query(0.5, 2);
        assert_eq!(response.generation, 2);
        assert_eq!(
            response.result.unwrap(),
            pscan(&edited, ScanParams::new(0.5, 2)).clustering
        );

        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.updates"), Some(1));
        assert!(snap.counter("update.applied_edges").unwrap() >= 1);
        assert!(snap.counter("update.touched_vertices").unwrap() >= 2);
        // The swap landed in the flight recorder.
        let kinds: Vec<EventKind> = server
            .flight_recorder()
            .events()
            .iter()
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&EventKind::Swap));
    }

    #[test]
    fn invalid_update_is_an_error_and_publishes_nothing() {
        let server = Server::start(test_graph(), ServeConfig::default());
        let mut delta = GraphDelta::new();
        delta.insert(0, 1_000_000).unwrap();
        assert!(server.update(&delta).is_err());
        assert_eq!(server.generation(), 1);
        assert_eq!(server.metrics_snapshot().counter("serve.updates"), Some(0));
        // A later valid update continues the generation sequence with
        // no gap.
        let mut ok = GraphDelta::new();
        ok.delete(0, 1).unwrap();
        assert_eq!(server.update(&ok).unwrap(), 2);
    }

    #[test]
    fn queries_racing_updates_answer_from_their_claimed_generation() {
        // Snapshot coherence: while update batches publish new
        // generations, every response must match a from-scratch answer
        // on exactly the graph version its claimed generation names —
        // never a half-applied batch, never a stale graph with a fresh
        // generation tag.
        let g0 = test_graph();
        let params = ScanParams::new(0.5, 2);
        let mut rng = ppscan_graph::rng::SplitMix64::seed_from_u64(0x00c0_de7e);
        let mut deltas = Vec::new();
        let mut expected = vec![pscan(&g0, params).clustering];
        let mut current = (*g0).clone();
        for _ in 0..6 {
            let delta = test_delta(&current, 8, &mut rng);
            current = delta.apply_to(&current).unwrap().graph;
            expected.push(pscan(&current, params).clustering);
            deltas.push(delta);
        }

        let server = Server::start(g0, ServeConfig::default());
        std::thread::scope(|s| {
            let server = &server;
            let expected = &expected;
            for _ in 0..3 {
                s.spawn(move || {
                    for _ in 0..30 {
                        let response = server.query(0.5, 2);
                        let generation = response.generation as usize;
                        assert!(
                            (1..=expected.len()).contains(&generation),
                            "generation {generation} out of range"
                        );
                        assert_eq!(
                            response.result.unwrap(),
                            expected[generation - 1],
                            "answer does not match generation {generation}'s graph"
                        );
                    }
                });
            }
            for (i, delta) in deltas.iter().enumerate() {
                assert_eq!(server.update(delta).unwrap(), i as u64 + 2);
            }
        });
        assert_eq!(server.generation(), 7);
    }

    #[test]
    fn drop_answers_every_outstanding_ticket() {
        let server = Server::start(test_graph(), ServeConfig::default());
        let tickets: Vec<Ticket> = (0..32).map(|_| server.submit(0.6, 2)).collect();
        drop(server);
        for ticket in tickets {
            assert!(ticket.wait().result.is_ok());
        }
    }
}
