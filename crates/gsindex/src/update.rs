//! Incremental GS*-Index maintenance under a [`GraphDelta`].
//!
//! A from-scratch build costs one exhaustive similarity pass —
//! `O(Σ over edges of d[u] + d[v])` SIMD intersections plus two full
//! sorts. An edge edit invalidates almost none of that work:
//!
//! * σ(a, b) depends only on `cn(a, b)` and the endpoint degrees, and
//!   editing edge `(u, v)` changes `Γ(x)` (and `d[x]`) only for
//!   `x ∈ {u, v}`. So σ changes **only for edges incident to the
//!   touched set `T`** (the endpoints of the effective edits).
//! * A vertex's neighbor order / core-order entries change only if one
//!   of its incident σ values did — i.e. only for the **affected set
//!   `A = T ∪ N(T)`**.
//!
//! The incremental pass therefore recomputes intersections only for
//! edges incident to `T` (`update-sim` span), rebuilds and re-sorts
//! neighbor-order slices only for `A` while block-copying every other
//! vertex's slice verbatim, and repairs each µ-slice of the core order
//! by a single merge pass — old entries minus `A` merged with `A`'s
//! freshly derived entries (`update-roles` span). No global sort, no
//! global intersection pass.

use crate::{GsIndex, OwnedGsIndex, SimValue};
use ppscan_graph::delta::{AppliedDelta, DeltaError, GraphDelta};
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::count::count_with;
use ppscan_intersect::KernelPrecomp;
use ppscan_obs::Span;
use ppscan_sched::WorkerPool;
use std::collections::HashMap;
use std::sync::Arc;

/// What an incremental apply actually did — the counters the serving
/// layer exports as `update.applied_edges` / `update.touched_vertices`,
/// plus the affected set itself for layers (cluster repair) that need
/// to know *which* vertices may have changed role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateStats {
    /// Undirected edges actually inserted or deleted (no-ops excluded).
    pub applied_edges: usize,
    /// Vertices whose neighbor order was rebuilt (`|A| = |T ∪ N(T)|`).
    pub touched_vertices: usize,
    /// Undirected edges whose intersection was recomputed (all edges
    /// incident to `T` in the new graph).
    pub recomputed_edges: usize,
    /// The affected set `A = T ∪ N(T)` itself, sorted. Only vertices in
    /// here can have a different role or σ-prefix than before the
    /// apply; everything else is bit-identical.
    pub affected: Vec<VertexId>,
}

impl OwnedGsIndex {
    /// Applies an update batch, producing a fresh index over the edited
    /// graph by localized recomputation. The original index is
    /// untouched (readers keep serving from it; the serving layer swaps
    /// the result in via its snapshot cell).
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
        threads: usize,
    ) -> Result<(OwnedGsIndex, UpdateStats), DeltaError> {
        self.apply_delta_with(delta, &WorkerPool::new(threads))
    }

    /// [`apply_delta`](Self::apply_delta) on a caller-provided pool, so
    /// the differential harness can drive every execution strategy
    /// through the same code path.
    pub fn apply_delta_with(
        &self,
        delta: &GraphDelta,
        pool: &WorkerPool,
    ) -> Result<(OwnedGsIndex, UpdateStats), DeltaError> {
        let AppliedDelta {
            graph,
            inserted,
            deleted,
        } = delta.apply_to(self.graph())?;
        let graph = Arc::new(graph);
        // SAFETY: same argument as `OwnedGsIndex::build` — the `'static`
        // borrow is backed by the `Arc` stored alongside it in the
        // returned struct, never escapes at `'static`, and the pointee
        // is a stable heap allocation.
        let g: &'static CsrGraph = unsafe { &*Arc::as_ptr(&graph) };
        // When the index carries a kernel precomp, repair its entries
        // for the edit endpoints against the *new* adjacency before any
        // recount: an endpoint whose neighbor list changed but kept its
        // length would otherwise pass the staleness guard and count
        // against a stale layout. Untouched entries stay valid — their
        // adjacency is bit-identical across the delta.
        let precomp: Option<Arc<KernelPrecomp>> = self.precomp().map(|pre| {
            let mut touched: Vec<VertexId> = inserted
                .iter()
                .chain(deleted.iter())
                .flat_map(|&(u, v)| [u, v])
                .collect();
            touched.sort_unstable();
            touched.dedup();
            let mut repaired = (**pre).clone();
            if let Some(f) = repaired.fesia_mut() {
                f.repair(&touched, |u| g.neighbors(u));
            }
            Arc::new(repaired)
        });
        let (index, stats) = incremental(
            self.index(),
            g,
            &inserted,
            &deleted,
            pool,
            precomp.as_deref(),
        );
        Ok((OwnedGsIndex::from_parts(index, graph, precomp), stats))
    }
}

/// Rebuilds the index over `g_new` reusing everything `old` computed
/// that the edits cannot have invalidated. `inserted`/`deleted` are the
/// *effective* edits (normalized `u < v`, no no-ops) from
/// [`GraphDelta::apply_to`]; `g_new` must be the graph they produced
/// from `old.graph` (same vertex set).
pub(crate) fn incremental<'n>(
    old: &GsIndex<'_>,
    g_new: &'n CsrGraph,
    inserted: &[(VertexId, VertexId)],
    deleted: &[(VertexId, VertexId)],
    pool: &WorkerPool,
    precomp: Option<&KernelPrecomp>,
) -> (GsIndex<'n>, UpdateStats) {
    let g_old = old.graph;
    let n = g_new.num_vertices();
    debug_assert_eq!(
        n,
        g_old.num_vertices(),
        "vertex set is fixed across updates"
    );

    // T: endpoints of effective edits. A = T ∪ N_new(T). (N_old(T) adds
    // nothing: an old neighbor of t ∉ N_new(t) lost its edge to t, so it
    // is itself an edit endpoint and already in T.)
    let mut touched: Vec<VertexId> = inserted
        .iter()
        .chain(deleted.iter())
        .flat_map(|&(u, v)| [u, v])
        .collect();
    touched.sort_unstable();
    touched.dedup();
    let mut in_t = vec![false; n];
    for &t in &touched {
        in_t[t as usize] = true;
    }
    let mut affected: Vec<VertexId> = touched.clone();
    for &t in &touched {
        affected.extend_from_slice(g_new.neighbors(t));
    }
    affected.sort_unstable();
    affected.dedup();
    let mut in_a = vec![false; n];
    for &a in &affected {
        in_a[a as usize] = true;
    }

    // ---- update-sim: recompute cn only for edges incident to T. ----
    let cn_map: HashMap<(VertexId, VertexId), u32> = {
        let _span = Span::enter("update-sim");
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for &t in &touched {
            for &w in g_new.neighbors(t) {
                pairs.push((t.min(w), t.max(w)));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut jobs: Vec<((VertexId, VertexId), u32)> =
            pairs.into_iter().map(|p| (p, 0)).collect();
        pool.run_mut(&mut jobs, |job| {
            let (u, v) = job.0;
            job.1 = count_with(
                precomp.map(|p| (p, u, v)),
                g_new.neighbors(u),
                g_new.neighbors(v),
            ) as u32
                + 2;
        });
        jobs.into_iter().collect()
    };
    let recomputed_edges = cn_map.len();

    // ---- update-roles: splice neighbor order, repair core order. ----
    let _span = Span::enter("update-roles");

    let m2 = g_new.num_directed_edges();
    let mut neighbor_order: Vec<(VertexId, u32)> = vec![(0, 0); m2];
    {
        // Untouched vertices keep a bit-identical slice (same neighbors,
        // same cn values, no endpoint degree changed), and consecutive
        // untouched vertices occupy contiguous ranges in both arrays —
        // so the gaps *between* affected vertices move as one bulk
        // memcpy per gap instead of one task per vertex. Only the |A|
        // affected slices do per-vertex work.
        let old_start = |u: usize| {
            if u == n {
                g_old.num_directed_edges()
            } else {
                g_old.neighbor_range(u as VertexId).start
            }
        };
        let new_start = |u: usize| {
            if u == n {
                m2
            } else {
                g_new.neighbor_range(u as VertexId).start
            }
        };
        let mut prev = 0usize;
        for gap_end in affected
            .iter()
            .map(|&a| a as usize)
            .chain(std::iter::once(n))
        {
            if prev < gap_end {
                let (os, oe) = (old_start(prev), old_start(gap_end));
                let ns = new_start(prev);
                debug_assert_eq!(oe - os, new_start(gap_end) - ns, "untouched run length");
                neighbor_order[ns..ns + (oe - os)].copy_from_slice(&old.neighbor_order[os..oe]);
            }
            prev = gap_end + 1;
        }

        let mut slices: Vec<(VertexId, &mut [(VertexId, u32)])> =
            Vec::with_capacity(affected.len());
        let mut rest: &mut [(VertexId, u32)] = &mut neighbor_order;
        let mut base = 0usize;
        for &a in &affected {
            let r = g_new.neighbor_range(a);
            let (_gap, tail) = rest.split_at_mut(r.start - base);
            let (head, tail) = tail.split_at_mut(r.len());
            slices.push((a, head));
            rest = tail;
            base = r.end;
        }
        pool.run_mut(&mut slices, |(u, out)| {
            let u = *u;
            let d_u = out.len();
            // Slice order of u's neighbor entries: descending σ(u, ·),
            // ascending-id tie break (total: ids are unique per slice).
            let by_sigma = |a: &(VertexId, u32), b: &(VertexId, u32)| {
                let sa = SimValue::new(a.1, d_u, g_new.degree(a.0));
                let sb = SimValue::new(b.1, d_u, g_new.degree(b.0));
                sb.cmp(&sa).then(a.0.cmp(&b.0))
            };
            if in_t[u as usize] {
                // Edited adjacency: every incident edge was recomputed.
                for (slot, &w) in g_new.neighbors(u).iter().enumerate() {
                    out[slot] = (w, cn_map[&(u.min(w), u.max(w))]);
                }
                out.sort_unstable_by(by_sigma);
                return;
            }
            // Same neighbor list, but entries pointing into T carry a
            // recomputed cn (and T degrees shift σ under them); the
            // others keep their key *and relative order*.
            let old_slice = &old.neighbor_order[g_old.neighbor_range(u)];
            let k = old_slice.iter().filter(|e| in_t[e.0 as usize]).count();
            if k * 16 >= d_u.max(1) {
                // Dense repair: most entries re-key anyway, one sort.
                out.copy_from_slice(old_slice);
                for entry in out.iter_mut() {
                    if in_t[entry.0 as usize] {
                        entry.1 = cn_map[&(u.min(entry.0), u.max(entry.0))];
                    }
                }
                out.sort_unstable_by(by_sigma);
                return;
            }
            // Sparse repair: compact the keyed-as-before entries (one
            // pass, order preserved — no sort), then reinsert each
            // re-keyed entry at its binary-searched position.
            let mut w = 0usize;
            let mut patched: Vec<(VertexId, u32)> = Vec::with_capacity(k);
            for &(v, c) in old_slice {
                if in_t[v as usize] {
                    patched.push((v, cn_map[&(u.min(v), u.max(v))]));
                } else {
                    out[w] = (v, c);
                    w += 1;
                }
            }
            for &e in &patched {
                // Never `Equal`: e's id is absent from the compacted run.
                let pos = out[..w]
                    .binary_search_by(|probe| by_sigma(probe, &e))
                    .unwrap_or_else(|i| i);
                out.copy_within(pos..w, pos + 1);
                out[pos] = e;
                w += 1;
            }
            debug_assert_eq!(w, d_u, "every entry of {u} placed");
        });
    }

    // Core-order events, bucketed by µ: each affected vertex removes the
    // entries whose stored key changed and adds their replacements — and
    // *only* those. For `w ∈ A \ T` the degree is unchanged, so the old
    // and new σ-sorted slices are diffed positionally: a position whose
    // `(neighbor, cn)` pair is unchanged and whose neighbor kept its
    // degree (∉ T) stores a bit-identical key and needs no event. This
    // is what keeps hub-heavy affected sets cheap — a hub adjacent to
    // one edit re-derives the handful of positions its reordered entry
    // swept over, not all `d(hub)` of them. Vertices in `T` re-derive
    // everything (their own degree changed under every key).
    let max_d_new = g_new.max_degree();
    let old_max_d = g_old.max_degree();
    let buckets = max_d_new.max(old_max_d);
    type Key = (VertexId, u32, u64);
    type Event = (u32, Key);
    /// One parallel diff chunk: its vertices, the (µ, key) events they
    /// emitted (µ-grouped after the pass), and per-µ group offsets.
    struct Chunk<'c> {
        verts: &'c [VertexId],
        rem: Vec<Event>,
        add: Vec<Event>,
        rem_off: Vec<u32>,
        add_off: Vec<u32>,
    }
    // Cut the affected set into chunks of roughly equal *volume* (sum of
    // degrees): the diff walks every position of every vertex, and on a
    // hub-heavy graph equal-count chunks would leave one worker holding
    // all the hubs.
    let chunks: Vec<&[VertexId]> = {
        let target = affected
            .iter()
            .map(|&a| g_new.degree(a))
            .sum::<usize>()
            .div_ceil((pool.threads() * 8).max(1))
            .max(64);
        let mut out = Vec::new();
        let (mut start, mut vol) = (0usize, 0usize);
        for (i, &a) in affected.iter().enumerate() {
            vol += g_new.degree(a);
            if vol >= target {
                out.push(&affected[start..=i]);
                start = i + 1;
                vol = 0;
            }
        }
        if start < affected.len() {
            out.push(&affected[start..]);
        }
        out
    };
    let mut chunks: Vec<Chunk> = chunks
        .into_iter()
        .map(|verts| Chunk {
            verts,
            rem: Vec::new(),
            add: Vec::new(),
            rem_off: vec![0; buckets + 2],
            add_off: vec![0; buckets + 2],
        })
        .collect();
    {
        let no = &neighbor_order;
        pool.run_mut(&mut chunks, |c| {
            for &a in c.verts.iter() {
                let d_old_a = g_old.degree(a);
                let d_new_a = g_new.degree(a);
                let ob = g_old.neighbor_range(a).start;
                let nb = g_new.neighbor_range(a).start;
                if in_t[a as usize] {
                    for mu in 1..=d_old_a {
                        let (v, cn) = old.neighbor_order[ob + mu - 1];
                        let sv = SimValue::new(cn, d_old_a, g_old.degree(v));
                        c.rem.push((mu as u32, (a, sv.cn, sv.denom)));
                    }
                    for mu in 1..=d_new_a {
                        let (v, cn) = no[nb + mu - 1];
                        let sv = SimValue::new(cn, d_new_a, g_new.degree(v));
                        c.add.push((mu as u32, (a, sv.cn, sv.denom)));
                    }
                } else {
                    for mu in 1..=d_new_a {
                        let (vo, co) = old.neighbor_order[ob + mu - 1];
                        let (vn, cn) = no[nb + mu - 1];
                        if (vo, co) != (vn, cn) || in_t[vo as usize] {
                            let svo = SimValue::new(co, d_old_a, g_old.degree(vo));
                            c.rem.push((mu as u32, (a, svo.cn, svo.denom)));
                            let svn = SimValue::new(cn, d_new_a, g_new.degree(vn));
                            c.add.push((mu as u32, (a, svn.cn, svn.denom)));
                        }
                    }
                }
            }
            // Group by µ and record group offsets, so the per-bucket
            // gather below can slice this chunk's contribution directly.
            c.rem.sort_unstable_by_key(|e| e.0);
            c.add.sort_unstable_by_key(|e| e.0);
            for &(mu, _) in &c.rem {
                c.rem_off[mu as usize + 1] += 1;
            }
            for &(mu, _) in &c.add {
                c.add_off[mu as usize + 1] += 1;
            }
            for i in 1..c.rem_off.len() {
                c.rem_off[i] += c.rem_off[i - 1];
                c.add_off[i] += c.add_off[i - 1];
            }
        });
    }
    // Gather each µ-bucket from the chunks and sort it into slice order
    // (descending σ_µ, ascending-id tie break — the exact build-time
    // order). One task per µ keeps both the gather and the sort parallel.
    let mut bucket_tasks: Vec<(usize, Vec<Key>, Vec<Key>)> = (0..=buckets)
        .map(|mu| (mu, Vec::new(), Vec::new()))
        .collect();
    {
        let chunks = &chunks;
        pool.run_mut(&mut bucket_tasks, |(mu, rem, add)| {
            let mu = *mu;
            for c in chunks.iter() {
                let (rs, re) = (c.rem_off[mu] as usize, c.rem_off[mu + 1] as usize);
                rem.extend(c.rem[rs..re].iter().map(|&(_, k)| k));
                let (as_, ae) = (c.add_off[mu] as usize, c.add_off[mu + 1] as usize);
                add.extend(c.add[as_..ae].iter().map(|&(_, k)| k));
            }
            let slice_order = |&(ua, ca, da): &Key, &(ub, cb, db): &Key| {
                let sa = SimValue { cn: ca, denom: da };
                let sb = SimValue { cn: cb, denom: db };
                sb.cmp(&sa).then(ua.cmp(&ub))
            };
            rem.sort_unstable_by(slice_order);
            add.sort_unstable_by(slice_order);
        });
    }
    drop(chunks);
    let (removed, added): (Vec<Vec<Key>>, Vec<Vec<Key>>) = bucket_tasks
        .into_iter()
        .map(|(_, rem, add)| (rem, add))
        .unzip();

    let old_len_of = |mu: usize| {
        if mu >= 1 && mu + 1 < old.co_offsets.len() {
            old.co_offsets[mu + 1] - old.co_offsets[mu]
        } else {
            0
        }
    };
    let mut co_offsets = vec![0usize; max_d_new + 2];
    for mu in 1..=max_d_new {
        co_offsets[mu + 1] = old_len_of(mu) - removed[mu].len() + added[mu].len();
    }
    // µ-slices past the new max degree must drain completely (every
    // member lost degree, so every entry has a removal event).
    for (mu, rem) in removed.iter().enumerate().skip(max_d_new + 1) {
        debug_assert_eq!(old_len_of(mu), rem.len(), "vanishing slice drains");
    }
    for mu in 1..co_offsets.len() {
        co_offsets[mu] += co_offsets[mu - 1];
    }

    let mut core_order: Vec<Key> = vec![(0, 0, 1); *co_offsets.last().unwrap_or(&0)];
    {
        let mut slices: Vec<(usize, &mut [Key])> = Vec::with_capacity(max_d_new + 1);
        let mut rest: &mut [Key] = &mut core_order;
        for mu in 0..=max_d_new {
            let len = co_offsets[mu + 1] - co_offsets[mu];
            let (head, tail) = rest.split_at_mut(len);
            slices.push((mu, head));
            rest = tail;
        }
        pool.run_mut(&mut slices, |(mu, out)| {
            let mu = *mu;
            let old_slice: &[(VertexId, u32, u64)] = if mu >= 1 && mu + 1 < old.co_offsets.len() {
                &old.core_order[old.co_offsets[mu]..old.co_offsets[mu + 1]]
            } else {
                &[]
            };
            let add: &[(VertexId, u32, u64)] = if mu < added.len() { &added[mu] } else { &[] };
            let rem: &[(VertexId, u32, u64)] = if mu < removed.len() {
                &removed[mu]
            } else {
                &[]
            };
            // Slice order: descending σ_µ, ascending-id tie break — the
            // exact build-time order, total (ids are unique).
            let pos = |e: &(VertexId, u32, u64)| {
                old_slice
                    .binary_search_by(|probe| {
                        let sp = SimValue {
                            cn: probe.1,
                            denom: probe.2,
                        };
                        let se = SimValue {
                            cn: e.1,
                            denom: e.2,
                        };
                        se.cmp(&sp).then(probe.0.cmp(&e.0))
                    })
                    .unwrap_or_else(|i| i)
            };
            if (rem.len() + add.len()) * 16 >= old_slice.len().max(1) {
                // Dense repair: the events cover a significant fraction
                // of the slice, so per-event binary searches would cost
                // more than one linear merge — drop removals by tuple
                // equality (both streams are in slice order) and merge
                // the additions in.
                let (mut oi, mut ri, mut aj) = (0usize, 0usize, 0usize);
                for slot in out.iter_mut() {
                    while oi < old_slice.len() && ri < rem.len() && old_slice[oi] == rem[ri] {
                        oi += 1;
                        ri += 1;
                    }
                    let take_add = aj < add.len()
                        && (oi >= old_slice.len() || {
                            let sa = SimValue {
                                cn: add[aj].1,
                                denom: add[aj].2,
                            };
                            let so = SimValue {
                                cn: old_slice[oi].1,
                                denom: old_slice[oi].2,
                            };
                            // σ-descending, ascending-id tie break —
                            // the add entry goes first iff it sorts
                            // strictly before the old one.
                            sa.cmp(&so).then(old_slice[oi].0.cmp(&add[aj].0)).is_gt()
                        });
                    *slot = if take_add {
                        aj += 1;
                        add[aj - 1]
                    } else {
                        oi += 1;
                        old_slice[oi - 1]
                    };
                }
                while oi < old_slice.len() && ri < rem.len() && old_slice[oi] == rem[ri] {
                    oi += 1;
                    ri += 1;
                }
                debug_assert_eq!(oi, old_slice.len(), "old slice consumed (mu={mu})");
                debug_assert_eq!(ri, rem.len(), "every removal matched (mu={mu})");
                debug_assert_eq!(aj, add.len(), "every fresh entry placed (mu={mu})");
                return;
            }
            // Sparse splice: copy the old slice in runs, dropping each
            // removed entry at its binary-searched position and
            // inserting each fresh entry at its lower bound.
            // Equal-position events are safe in either order: an
            // insertion key can only collide with a *removed* old entry
            // (same id ⇒ affected), and multiple insertions at one
            // position arrive pre-sorted. Cost is
            // O((|rem| + |add|) log |old|) searches plus pure memcpy,
            // not a pass over the whole slice.
            let (mut oi, mut ri, mut ai, mut out_i) = (0usize, 0usize, 0usize, 0usize);
            loop {
                let rpos = rem.get(ri).map(&pos).unwrap_or(usize::MAX);
                let apos = add.get(ai).map(&pos).unwrap_or(usize::MAX);
                if rpos == usize::MAX && apos == usize::MAX {
                    break;
                }
                let next = rpos.min(apos);
                let run = next - oi;
                out[out_i..out_i + run].copy_from_slice(&old_slice[oi..next]);
                out_i += run;
                oi = next;
                if apos <= rpos {
                    out[out_i] = add[ai];
                    out_i += 1;
                    ai += 1;
                } else {
                    debug_assert!(
                        in_a[old_slice[oi].0 as usize],
                        "only affected entries are dropped (mu={mu})"
                    );
                    oi += 1;
                    ri += 1;
                }
            }
            let tail = old_slice.len() - oi;
            out[out_i..out_i + tail].copy_from_slice(&old_slice[oi..]);
            debug_assert_eq!(out_i + tail, out.len(), "slice length adds up (mu={mu})");
            debug_assert_eq!(ai, add.len(), "every fresh entry placed (mu={mu})");
        });
    }

    (
        GsIndex {
            graph: g_new,
            neighbor_order,
            core_order,
            co_offsets,
        },
        UpdateStats {
            applied_edges: inserted.len() + deleted.len(),
            touched_vertices: affected.len(),
            recomputed_edges,
            affected,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_core::params::ScanParams;
    use ppscan_graph::gen;
    use ppscan_graph::rng::SplitMix64;
    use std::collections::HashSet;

    /// Builds a random mixed batch over `g`: `dels` existing edges plus
    /// `ins` currently-absent pairs.
    fn random_delta(g: &CsrGraph, ins: usize, dels: usize, seed: u64) -> GraphDelta {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = g.num_vertices();
        let mut delta = GraphDelta::new();
        let mut used: HashSet<(VertexId, VertexId)> = HashSet::new();
        let edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
        let mut staged_dels = 0;
        while staged_dels < dels && !edges.is_empty() {
            let (u, v) = edges[rng.gen_index(edges.len())];
            if used.insert((u, v)) {
                delta.delete(u, v).unwrap();
                staged_dels += 1;
            } else if used.len() >= edges.len() {
                break;
            }
        }
        let mut staged_ins = 0;
        let mut tries = 0;
        while staged_ins < ins && tries < ins * 50 + 100 {
            tries += 1;
            if n < 2 {
                break;
            }
            let u = rng.gen_index(n) as VertexId;
            let v = rng.gen_index(n) as VertexId;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if g.has_edge(u, v) || !used.insert(key) {
                continue;
            }
            delta.insert(u, v).unwrap();
            staged_ins += 1;
        }
        delta
    }

    /// Structural equality with a from-scratch build: same offsets, same
    /// per-vertex neighbor-order multisets (σ ties may order freely, so
    /// compare sorted copies), same per-µ core-order multisets.
    fn assert_index_equivalent(inc: &GsIndex<'_>, fresh: &GsIndex<'_>) {
        assert_eq!(inc.co_offsets, fresh.co_offsets, "co_offsets diverged");
        let g = fresh.graph;
        for u in g.vertices() {
            let r = g.neighbor_range(u);
            let mut a = inc.neighbor_order[r.clone()].to_vec();
            let mut b = fresh.neighbor_order[r].to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighbor order diverged at vertex {u}");
        }
        for mu in 1..fresh.co_offsets.len().saturating_sub(1) {
            let r = fresh.co_offsets[mu]..fresh.co_offsets[mu + 1];
            let mut a = inc.core_order[r.clone()].to_vec();
            let mut b = fresh.core_order[r].to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "core order diverged at mu={mu}");
        }
    }

    #[test]
    fn incremental_matches_from_scratch_structurally() {
        let graphs = [
            gen::roll(150, 8, 3),
            gen::erdos_renyi(100, 420, 5),
            gen::planted_partition(3, 16, 0.6, 0.05, 7),
            gen::clique_chain(5, 3),
        ];
        for (gi, g) in graphs.into_iter().enumerate() {
            let owned = OwnedGsIndex::build(Arc::new(g), 2);
            for (ins, dels, seed) in [(1, 0, 1), (0, 1, 2), (4, 4, 3), (16, 8, 4)] {
                let delta = random_delta(owned.graph(), ins, dels, seed ^ (gi as u64) << 8);
                let (updated, stats) = owned.apply_delta(&delta, 2).unwrap();
                let fresh = GsIndex::build(updated.graph(), 2);
                assert_index_equivalent(updated.index(), &fresh);
                assert_eq!(stats.applied_edges, delta.len(), "all staged ops effective");
                assert!(stats.touched_vertices >= stats.applied_edges.min(1));
            }
        }
    }

    #[test]
    fn incremental_queries_match_from_scratch() {
        let g = gen::planted_partition(4, 14, 0.55, 0.06, 11);
        let owned = OwnedGsIndex::build(Arc::new(g), 2);
        let delta = random_delta(owned.graph(), 10, 10, 99);
        let (updated, _) = owned.apply_delta(&delta, 2).unwrap();
        let fresh = GsIndex::build(updated.graph(), 2);
        for eps10 in [2u32, 4, 6, 8] {
            for mu in [1usize, 2, 3, 5] {
                let p = ScanParams::new(eps10 as f64 / 10.0, mu);
                assert_eq!(
                    updated.query(p),
                    fresh.query(p),
                    "query diverged at eps={eps10}/10 mu={mu}"
                );
            }
        }
    }

    #[test]
    fn chained_updates_stay_consistent() {
        // Apply 8 batches in sequence; the index after each must match a
        // from-scratch build (drift would compound otherwise).
        let g = gen::roll(120, 6, 17);
        let mut owned = OwnedGsIndex::build(Arc::new(g), 2);
        for step in 0..8u64 {
            let delta = random_delta(owned.graph(), 3, 2, 1000 + step);
            let (next, _) = owned.apply_delta(&delta, 2).unwrap();
            let fresh = GsIndex::build(next.graph(), 2);
            assert_index_equivalent(next.index(), &fresh);
            owned = next;
        }
    }

    #[test]
    fn chained_updates_with_precomp_stay_consistent() {
        // Same discipline as `chained_updates_stay_consistent`, but with
        // the FESIA precomp carried across every apply: each batch must
        // repair the edit endpoints' entries (a stale same-length entry
        // would silently corrupt counts) and still match a from-scratch
        // build exactly.
        let g = gen::roll(120, 6, 17);
        let mut owned = OwnedGsIndex::build_with_precomp(Arc::new(g), 2);
        let buckets = owned.precomp().unwrap().fesia().unwrap().buckets();
        for step in 0..8u64 {
            let delta = random_delta(owned.graph(), 3, 2, 1000 + step);
            let (next, _) = owned.apply_delta(&delta, 2).unwrap();
            let fresh = GsIndex::build(next.graph(), 2);
            assert_index_equivalent(next.index(), &fresh);
            let pre = next.precomp().expect("precomp survives apply_delta");
            assert_eq!(
                pre.fesia().unwrap().buckets(),
                buckets,
                "repair keeps the bucket layout"
            );
            owned = next;
        }
    }

    #[test]
    fn degree_growth_and_shrink_resize_core_order() {
        // Push max degree up past the old bucket count and back down:
        // co_offsets must grow and shrink with it.
        let g = gen::path(8); // max degree 2
        let owned = OwnedGsIndex::build(Arc::new(g), 1);
        assert_eq!(owned.max_mu(), 2);
        let mut grow = GraphDelta::new();
        for v in [2u32, 3, 4, 5, 6, 7] {
            grow.insert(0, v).unwrap();
        }
        let (grown, _) = owned.apply_delta(&grow, 1).unwrap();
        assert_eq!(grown.max_mu(), grown.graph().max_degree());
        assert_index_equivalent(grown.index(), &GsIndex::build(grown.graph(), 1));

        let mut shrink = GraphDelta::new();
        for v in [2u32, 3, 4, 5, 6, 7] {
            shrink.delete(0, v).unwrap();
        }
        let (back, _) = grown.apply_delta(&shrink, 1).unwrap();
        assert_eq!(back.max_mu(), 2);
        assert_index_equivalent(back.index(), &GsIndex::build(back.graph(), 1));
    }

    #[test]
    fn noop_delta_leaves_index_equivalent_and_counts_zero() {
        let g = gen::cycle(12);
        let owned = OwnedGsIndex::build(Arc::new(g), 1);
        let mut delta = GraphDelta::new();
        delta.insert(0, 1).unwrap(); // present → no-op
        delta.delete(0, 6).unwrap(); // absent → no-op
        let (updated, stats) = owned.apply_delta(&delta, 1).unwrap();
        assert_eq!(stats.applied_edges, 0);
        assert_eq!(stats.touched_vertices, 0);
        assert_eq!(stats.recomputed_edges, 0);
        assert_index_equivalent(updated.index(), owned.index());
    }

    #[test]
    fn invalid_delta_is_an_error_not_a_panic() {
        let g = gen::star(5);
        let owned = OwnedGsIndex::build(Arc::new(g), 1);
        let mut delta = GraphDelta::new();
        delta.insert(0, 999).unwrap();
        assert!(matches!(
            owned.apply_delta(&delta, 1),
            Err(DeltaError::OutOfRange { u: 999, .. })
        ));
    }

    #[test]
    fn stats_stay_local_for_a_single_edge() {
        // One edit on a big sparse graph must touch ~(d_u + d_v)
        // vertices, not the whole graph.
        let g = gen::roll(2000, 8, 23);
        let n = g.num_vertices();
        let owned = OwnedGsIndex::build(Arc::new(g), 2);
        let delta = random_delta(owned.graph(), 1, 0, 7);
        let (_, stats) = owned.apply_delta(&delta, 2).unwrap();
        assert_eq!(stats.applied_edges, 1);
        assert!(
            stats.touched_vertices < n / 10,
            "single-edge update touched {} of {} vertices",
            stats.touched_vertices,
            n
        );
    }
}
