//! Output-proportional queries against a built GS*-Index.

use crate::{GsIndex, SimValue};
use ppscan_core::params::ScanParams;
use ppscan_core::result::{Clustering, Role, NO_CLUSTER};
use ppscan_graph::VertexId;
use ppscan_unionfind::UnionFind;

impl<'g> GsIndex<'g> {
    /// Answers a `(ε, µ)` clustering query from the index alone — no set
    /// intersections. Work is proportional to the number of cores plus
    /// their ε-similar edges.
    pub fn query(&self, params: ScanParams) -> Clustering {
        let g = self.graph;
        let n = g.num_vertices();
        let eps = &params.epsilon;
        let mu = params.mu;

        let mut roles = vec![Role::NonCore; n];
        let mut cores: Vec<VertexId> = Vec::new();
        // `mu <= self.max_mu()` rather than `mu + 1 < self.co_offsets.len()`:
        // the two are equivalent for in-range µ, but the addition overflows
        // for µ near `usize::MAX` (debug panic; wrap-to-0 and out-of-bounds
        // indexing in release) — a query must stay total for any µ a client
        // hands the serving path.
        if mu >= 1 && mu <= self.max_mu() {
            // Cores are a prefix of the µ-th core order.
            let slice = &self.core_order[self.co_offsets[mu]..self.co_offsets[mu + 1]];
            for &(u, cn, denom) in slice {
                if !(SimValue { cn, denom }).at_least(eps) {
                    break;
                }
                roles[u as usize] = Role::Core;
                cores.push(u);
            }
        }

        // Cluster cores along ε-similar core-core edges: the similar
        // neighbors are exactly the neighbor-order prefix.
        let mut uf = UnionFind::new(n);
        let mut pairs: Vec<(VertexId, u32)> = Vec::new();
        for &u in &cores {
            let base = g.neighbor_range(u).start;
            let d_u = g.degree(u);
            for &(v, cn) in &self.neighbor_order[base..base + d_u] {
                if !SimValue::new(cn, d_u, g.degree(v)).at_least(eps) {
                    break; // prefix exhausted
                }
                if roles[v as usize] == Role::Core && u < v {
                    uf.union(u, v);
                }
            }
        }
        // Attach non-core prefix members (after the core partition is
        // final, so the recorded label is the set root).
        let mut core_label = vec![NO_CLUSTER; n];
        for &u in &cores {
            core_label[u as usize] = uf.find_root(u);
        }
        for &u in &cores {
            let base = g.neighbor_range(u).start;
            let d_u = g.degree(u);
            for &(v, cn) in &self.neighbor_order[base..base + d_u] {
                if !SimValue::new(cn, d_u, g.degree(v)).at_least(eps) {
                    break;
                }
                if roles[v as usize] == Role::NonCore {
                    pairs.push((v, core_label[u as usize]));
                }
            }
        }
        Clustering::from_raw(roles, core_label, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_core::pscan::pscan;
    use ppscan_core::verify;
    use ppscan_graph::gen;

    #[test]
    fn query_matches_pscan_across_grid() {
        let graphs = [
            gen::scan_paper_example(),
            gen::clique_chain(5, 3),
            gen::planted_partition(3, 18, 0.6, 0.04, 2),
            gen::erdos_renyi(100, 480, 7),
            gen::roll(150, 8, 5),
        ];
        for g in &graphs {
            let idx = GsIndex::build(g, 2);
            for eps10 in [1u32, 3, 5, 7, 9, 10] {
                for mu in [1usize, 2, 3, 5, 8] {
                    let p = ScanParams::new(eps10 as f64 / 10.0, mu);
                    assert_eq!(
                        idx.query(p),
                        pscan(g, p).clustering,
                        "index query diverged at eps={}/10 mu={mu}",
                        eps10
                    );
                }
            }
        }
    }

    #[test]
    fn query_verifies_from_first_principles() {
        let g = gen::planted_partition(4, 15, 0.6, 0.03, 11);
        let idx = GsIndex::build(&g, 2);
        let p = ScanParams::new(0.5, 3);
        verify::check_clustering(&g, p, &idx.query(p)).unwrap();
    }

    #[test]
    fn mu_beyond_max_degree_yields_empty() {
        let g = gen::star(10);
        let idx = GsIndex::build(&g, 1);
        let c = idx.query(ScanParams::new(0.2, 50));
        assert_eq!(c.num_cores(), 0);
        assert_eq!(c.num_clusters(), 0);
    }

    #[test]
    fn mu_at_largest_tracked_bucket_matches_pscan() {
        // µ = max_mu() is the last bucket build.rs lays out
        // (`co_offsets[mu]..co_offsets[mu + 1]` with len = max_d + 2);
        // the boundary guard must keep it reachable.
        let g = gen::complete(6);
        let idx = GsIndex::build(&g, 1);
        let mu = idx.max_mu();
        assert_eq!(mu, 5);
        let p = ScanParams::new(0.9, mu);
        let c = idx.query(p);
        assert_eq!(c, pscan(&g, p).clustering);
        assert_eq!(c.num_cores(), 6, "every K6 vertex has 5 σ=1 neighbors");
    }

    #[test]
    fn mu_at_bucket_count_yields_empty() {
        // One past the largest tracked bucket: no vertex has that many
        // neighbors, so the answer is the empty clustering, same as pscan.
        let g = gen::clique_chain(4, 3);
        let idx = GsIndex::build(&g, 1);
        let mu = idx.max_mu() + 1;
        let p = ScanParams::new(0.1, mu);
        let c = idx.query(p);
        assert_eq!(c, pscan(&g, p).clustering);
        assert_eq!(c.num_cores(), 0);
    }

    #[test]
    fn mu_usize_max_does_not_overflow() {
        // Regression: the old guard computed `mu + 1`, which panics in
        // debug builds and wraps to 0 in release (passing the bounds
        // check and indexing out of range) for µ = usize::MAX. A server
        // accepting untrusted µ must get an empty answer instead.
        let g = gen::complete(4);
        let idx = GsIndex::build(&g, 1);
        for mu in [usize::MAX, usize::MAX - 1, idx.max_mu() + 2] {
            let c = idx.query(ScanParams::new(0.5, mu));
            assert_eq!(c.num_cores(), 0, "mu = {mu}");
            assert_eq!(c.num_clusters(), 0, "mu = {mu}");
        }
    }

    #[test]
    fn epsilon_one_on_complete_graph() {
        // K_5: all closed neighborhoods identical → σ ≡ 1 ≥ ε = 1.
        let g = gen::complete(5);
        let idx = GsIndex::build(&g, 1);
        let c = idx.query(ScanParams::new(1.0, 2));
        assert_eq!(c.num_cores(), 5);
        assert_eq!(c.num_clusters(), 1);
    }
}
