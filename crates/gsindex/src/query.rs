//! Output-proportional queries against a built GS*-Index.

use crate::{GsIndex, SimValue};
use ppscan_core::params::ScanParams;
use ppscan_core::result::{Clustering, Role, NO_CLUSTER};
use ppscan_graph::VertexId;
use ppscan_unionfind::UnionFind;

impl<'g> GsIndex<'g> {
    /// Answers a `(ε, µ)` clustering query from the index alone — no set
    /// intersections. Work is proportional to the number of cores plus
    /// their ε-similar edges.
    pub fn query(&self, params: ScanParams) -> Clustering {
        let g = self.graph;
        let n = g.num_vertices();
        let eps = &params.epsilon;
        let mu = params.mu;

        let mut roles = vec![Role::NonCore; n];
        let mut cores: Vec<VertexId> = Vec::new();
        if mu >= 1 && mu + 1 < self.co_offsets.len() {
            // Cores are a prefix of the µ-th core order.
            let slice = &self.core_order[self.co_offsets[mu]..self.co_offsets[mu + 1]];
            for &(u, cn, denom) in slice {
                if !(SimValue { cn, denom }).at_least(eps) {
                    break;
                }
                roles[u as usize] = Role::Core;
                cores.push(u);
            }
        }

        // Cluster cores along ε-similar core-core edges: the similar
        // neighbors are exactly the neighbor-order prefix.
        let mut uf = UnionFind::new(n);
        let mut pairs: Vec<(VertexId, u32)> = Vec::new();
        for &u in &cores {
            let base = g.neighbor_range(u).start;
            let d_u = g.degree(u);
            for &(v, cn) in &self.neighbor_order[base..base + d_u] {
                if !SimValue::new(cn, d_u, g.degree(v)).at_least(eps) {
                    break; // prefix exhausted
                }
                if roles[v as usize] == Role::Core && u < v {
                    uf.union(u, v);
                }
            }
        }
        // Attach non-core prefix members (after the core partition is
        // final, so the recorded label is the set root).
        let mut core_label = vec![NO_CLUSTER; n];
        for &u in &cores {
            core_label[u as usize] = uf.find_root(u);
        }
        for &u in &cores {
            let base = g.neighbor_range(u).start;
            let d_u = g.degree(u);
            for &(v, cn) in &self.neighbor_order[base..base + d_u] {
                if !SimValue::new(cn, d_u, g.degree(v)).at_least(eps) {
                    break;
                }
                if roles[v as usize] == Role::NonCore {
                    pairs.push((v, core_label[u as usize]));
                }
            }
        }
        Clustering::from_raw(roles, core_label, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_core::pscan::pscan;
    use ppscan_core::verify;
    use ppscan_graph::gen;

    #[test]
    fn query_matches_pscan_across_grid() {
        let graphs = [
            gen::scan_paper_example(),
            gen::clique_chain(5, 3),
            gen::planted_partition(3, 18, 0.6, 0.04, 2),
            gen::erdos_renyi(100, 480, 7),
            gen::roll(150, 8, 5),
        ];
        for g in &graphs {
            let idx = GsIndex::build(g, 2);
            for eps10 in [1u32, 3, 5, 7, 9, 10] {
                for mu in [1usize, 2, 3, 5, 8] {
                    let p = ScanParams::new(eps10 as f64 / 10.0, mu);
                    assert_eq!(
                        idx.query(p),
                        pscan(g, p).clustering,
                        "index query diverged at eps={}/10 mu={mu}",
                        eps10
                    );
                }
            }
        }
    }

    #[test]
    fn query_verifies_from_first_principles() {
        let g = gen::planted_partition(4, 15, 0.6, 0.03, 11);
        let idx = GsIndex::build(&g, 2);
        let p = ScanParams::new(0.5, 3);
        verify::check_clustering(&g, p, &idx.query(p)).unwrap();
    }

    #[test]
    fn mu_beyond_max_degree_yields_empty() {
        let g = gen::star(10);
        let idx = GsIndex::build(&g, 1);
        let c = idx.query(ScanParams::new(0.2, 50));
        assert_eq!(c.num_cores(), 0);
        assert_eq!(c.num_clusters(), 0);
    }

    #[test]
    fn epsilon_one_on_complete_graph() {
        // K_5: all closed neighborhoods identical → σ ≡ 1 ≥ ε = 1.
        let g = gen::complete(5);
        let idx = GsIndex::build(&g, 1);
        let c = idx.query(ScanParams::new(1.0, 2));
        assert_eq!(c.num_cores(), 5);
        assert_eq!(c.num_clusters(), 1);
    }
}
