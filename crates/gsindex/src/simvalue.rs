//! Exact structural-similarity values with a total order.
//!
//! σ(u,v) = cn / √((d[u]+1)(d[v]+1)) with `cn = |Γ(u) ∩ Γ(v)|`. The index
//! never materializes the square root: values are ordered by comparing
//! σ₁² vs σ₂² through `u128` cross multiplication, which is exact for all
//! graphs this library admits (`cn ≤ 2³²`, `denom < 2⁶⁴`).

use ppscan_intersect::EpsilonThreshold;

/// An exact similarity value: `σ² = cn² / denom`.
#[derive(Clone, Copy, Debug)]
pub struct SimValue {
    /// `|Γ(u) ∩ Γ(v)|` (includes the two endpoints).
    pub cn: u32,
    /// `(d[u] + 1) · (d[v] + 1)`.
    pub denom: u64,
}

impl SimValue {
    /// Creates a value from an intersection count and the two degrees.
    pub fn new(cn: u32, d_u: usize, d_v: usize) -> Self {
        Self {
            cn,
            denom: (d_u as u64 + 1) * (d_v as u64 + 1),
        }
    }

    /// Whether σ ≥ ε, exactly.
    #[inline]
    pub fn at_least(&self, eps: &EpsilonThreshold) -> bool {
        eps.sim_at_least(self.cn as u64, self.denom as u128)
    }

    /// σ as f64 (display only; ordering always uses exact arithmetic).
    pub fn as_f64(&self) -> f64 {
        self.cn as f64 / (self.denom as f64).sqrt()
    }

    /// Exact cross-multiplied comparison key: `σ₁ < σ₂ ⟺
    /// cn₁²·denom₂ < cn₂²·denom₁`.
    #[inline]
    fn key_vs(&self, other: &SimValue) -> std::cmp::Ordering {
        let lhs = (self.cn as u128) * (self.cn as u128) * (other.denom as u128);
        let rhs = (other.cn as u128) * (other.cn as u128) * (self.denom as u128);
        lhs.cmp(&rhs)
    }
}

impl PartialEq for SimValue {
    fn eq(&self, other: &Self) -> bool {
        self.key_vs(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for SimValue {}

impl PartialOrd for SimValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key_vs(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_float_in_easy_cases() {
        let a = SimValue::new(3, 3, 3); // 3/4
        let b = SimValue::new(2, 3, 3); // 2/4
        assert!(a > b);
        assert!((a.as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn equal_ratios_compare_equal() {
        // 2/√4 == 4/√16 == 1.
        let a = SimValue::new(2, 1, 1);
        let b = SimValue::new(4, 3, 3);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn boundary_exactness_beyond_floats() {
        // cn² / denom differing in the last unit: exact order must hold
        // even when f64 would round both to the same value.
        let big = (1u64 << 40) + 1;
        let a = SimValue {
            cn: 1 << 20,
            denom: big,
        };
        let b = SimValue {
            cn: 1 << 20,
            denom: big - 1,
        };
        assert!(a < b);
    }

    #[test]
    fn threshold_predicate_matches_min_cn() {
        for eps10 in 1..=10u64 {
            let eps = EpsilonThreshold::from_ratio(eps10, 10);
            for d_u in 0..20usize {
                for d_v in 0..20usize {
                    let min_cn = eps.min_cn(d_u, d_v);
                    for cn in 0..=(d_u.min(d_v) as u32 + 2) {
                        let v = SimValue::new(cn, d_u, d_v);
                        assert_eq!(
                            v.at_least(&eps),
                            cn as u64 >= min_cn,
                            "eps={eps10}/10 d=({d_u},{d_v}) cn={cn}"
                        );
                    }
                }
            }
        }
    }
}
