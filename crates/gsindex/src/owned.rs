//! A self-contained index that owns its graph, for long-lived serving.
//!
//! [`GsIndex`] borrows its [`CsrGraph`], which is the right shape for
//! the bench harnesses (graph outlives index on the stack) but not for
//! a server that rebuilds indexes and swaps them atomically: a snapshot
//! must be one droppable unit. [`OwnedGsIndex`] bundles an
//! `Arc<CsrGraph>` with the index built over it.

use crate::GsIndex;
use ppscan_core::params::ScanParams;
use ppscan_core::result::Clustering;
use ppscan_graph::CsrGraph;
use ppscan_intersect::fesia::FesiaPrecomp;
use ppscan_intersect::KernelPrecomp;
use std::sync::Arc;

/// A [`GsIndex`] together with the graph it indexes, as one owned unit.
///
/// Internally the index borrows the graph through an `Arc` held in the
/// same struct. The `'static` lifetime this requires never escapes:
/// every accessor re-borrows at `&self`'s lifetime (sound because
/// `GsIndex<'g>` is covariant in `'g`), and the fields are private.
pub struct OwnedGsIndex {
    /// Declared before `graph` so it can never observe a dropped graph
    /// (fields drop in declaration order). `GsIndex` has no `Drop` impl
    /// of its own, so this ordering is belt and braces.
    index: GsIndex<'static>,
    graph: Arc<CsrGraph>,
    /// Kernel precomputation the index was built with, if any. Carried
    /// across [`apply_delta`](Self::apply_delta) (repaired per touched
    /// vertex, never rebuilt) so every rebuild after the first reuses
    /// the hashed layouts.
    precomp: Option<Arc<KernelPrecomp>>,
}

impl OwnedGsIndex {
    /// Builds the index over `graph` with `threads` workers, taking
    /// shared ownership of the graph. No kernel precomputation: pass 1
    /// uses the plain SIMD count, which is the right default for a
    /// one-shot build.
    pub fn build(graph: Arc<CsrGraph>, threads: usize) -> OwnedGsIndex {
        OwnedGsIndex::build_inner(graph, threads, None)
    }

    /// [`build`](Self::build), but first constructs a FESIA kernel
    /// precomputation over the graph and routes pass 1's counts through
    /// it. The precomp is kept on the returned index and *repaired* (not
    /// rebuilt) by [`apply_delta`](Self::apply_delta), so its build cost
    /// amortizes over the index's whole update lifetime. Opt-in because
    /// it trades ~O(m) extra memory and build work for faster counts.
    pub fn build_with_precomp(graph: Arc<CsrGraph>, threads: usize) -> OwnedGsIndex {
        let n = graph.num_vertices();
        let avg = graph.num_directed_edges() as f64 / n.max(1) as f64;
        let fesia = FesiaPrecomp::build(n, avg, |u| graph.neighbors(u));
        let precomp = Arc::new(KernelPrecomp::new(Some(fesia), None));
        OwnedGsIndex::build_inner(graph, threads, Some(precomp))
    }

    fn build_inner(
        graph: Arc<CsrGraph>,
        threads: usize,
        precomp: Option<Arc<KernelPrecomp>>,
    ) -> OwnedGsIndex {
        // SAFETY: the reference is only valid while the Arc keeps the
        // graph alive. The Arc lives in the same struct, is never
        // replaced, and the pointee is behind a stable heap allocation
        // that `Arc` never moves; all public APIs narrow the lifetime
        // back to `&self`, so the `'static` is an unobservable
        // implementation detail.
        let g: &'static CsrGraph = unsafe { &*Arc::as_ptr(&graph) };
        OwnedGsIndex {
            index: GsIndex::build_with(g, threads, precomp.as_deref()),
            graph,
            precomp,
        }
    }

    /// Assembles an owned index from an already-built `GsIndex` whose
    /// graph borrow is backed by `graph` (the incremental update path).
    pub(crate) fn from_parts(
        index: GsIndex<'static>,
        graph: Arc<CsrGraph>,
        precomp: Option<Arc<KernelPrecomp>>,
    ) -> OwnedGsIndex {
        OwnedGsIndex {
            index,
            graph,
            precomp,
        }
    }

    /// The kernel precomputation this index carries, if it was built
    /// with one (see [`build_with_precomp`](Self::build_with_precomp)).
    pub fn precomp(&self) -> Option<&Arc<KernelPrecomp>> {
        self.precomp.as_ref()
    }

    /// The wrapped index, borrowed at `self`'s lifetime.
    pub fn index(&self) -> &GsIndex<'_> {
        &self.index
    }

    /// The indexed graph.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// Answers a `(ε, µ)` query (see [`GsIndex::query`]).
    pub fn query(&self, params: ScanParams) -> Clustering {
        self.index.query(params)
    }

    /// Largest µ the index can answer (see [`GsIndex::max_mu`]).
    pub fn max_mu(&self) -> usize {
        self.index.max_mu()
    }

    /// Approximate heap footprint of index plus graph (plus the kernel
    /// precomputation, when carried), in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.index.heap_bytes()
            + self.graph.heap_bytes()
            + self.precomp.as_deref().map_or(0, KernelPrecomp::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_core::pscan::pscan;
    use ppscan_graph::gen;

    #[test]
    fn owned_index_answers_like_borrowed() {
        let g = Arc::new(gen::planted_partition(3, 14, 0.6, 0.04, 9));
        let owned = OwnedGsIndex::build(Arc::clone(&g), 2);
        let borrowed = GsIndex::build(&g, 2);
        for mu in [1usize, 2, 4] {
            let p = ScanParams::new(0.5, mu);
            assert_eq!(owned.query(p), borrowed.query(p));
            assert_eq!(owned.query(p), pscan(&g, p).clustering);
        }
        assert_eq!(owned.max_mu(), borrowed.max_mu());
        assert!(owned.heap_bytes() > borrowed.heap_bytes());
    }

    #[test]
    fn precomp_build_answers_like_plain_build() {
        let g = Arc::new(gen::planted_partition(3, 14, 0.6, 0.04, 9));
        let plain = OwnedGsIndex::build(Arc::clone(&g), 2);
        let hashed = OwnedGsIndex::build_with_precomp(Arc::clone(&g), 2);
        assert!(plain.precomp().is_none());
        let pre = hashed.precomp().expect("precomp is carried");
        assert!(pre.fesia().is_some(), "gsindex precomp is the hash layout");
        assert!(pre.plan().is_none(), "no autotune plan on the count path");
        for mu in [1usize, 2, 4] {
            let p = ScanParams::new(0.5, mu);
            assert_eq!(plain.query(p), hashed.query(p));
        }
        assert!(hashed.heap_bytes() > plain.heap_bytes());
    }

    #[test]
    fn owned_index_outlives_external_graph_handles() {
        let owned = {
            let g = Arc::new(gen::clique_chain(4, 2));
            OwnedGsIndex::build(g, 1)
        }; // the only external Arc handle is gone
        let p = ScanParams::new(0.5, 2);
        let c = owned.query(p);
        assert_eq!(c, pscan(owned.graph(), p).clustering);
        assert!(c.num_cores() > 0);
    }
}
