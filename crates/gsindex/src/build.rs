//! Parallel GS*-Index construction: exhaustive exact similarities (one
//! SIMD count per undirected edge), neighbor order, core order.

use crate::{GsIndex, SimValue};
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::count::count_with;
use ppscan_intersect::KernelPrecomp;
use ppscan_sched::{WorkerPool, DEFAULT_DEGREE_THRESHOLD};
use std::sync::atomic::{AtomicU32, Ordering};

impl<'g> GsIndex<'g> {
    /// Builds the index with `threads` workers. O(Σ over edges of
    /// `d[u] + d[v]`) — the exhaustive cost the ppSCAN paper criticizes,
    /// amortized over every later query.
    pub fn build(graph: &'g CsrGraph, threads: usize) -> GsIndex<'g> {
        GsIndex::build_with(graph, threads, None)
    }

    /// [`build`](Self::build) with an optional kernel precomputation:
    /// when `precomp` carries FESIA structures for `graph`, pass 1's
    /// exact counts go through the hash kernel (falling back to the
    /// merge count per pair when an entry is stale or missing). The
    /// precomp must have been built over *this* graph's adjacency.
    pub fn build_with(
        graph: &'g CsrGraph,
        threads: usize,
        precomp: Option<&KernelPrecomp>,
    ) -> GsIndex<'g> {
        let pool = WorkerPool::new(threads);
        let n = graph.num_vertices();
        let m2 = graph.num_directed_edges();

        // Pass 1: exact cn per directed slot, computed once per
        // undirected edge (u < v) and mirrored to the reverse slot.
        // Atomic u32 slots let both directions be written lock-free.
        let cn: Vec<AtomicU32> = (0..m2).map(|_| AtomicU32::new(0)).collect();
        pool.run_weighted(
            n,
            DEFAULT_DEGREE_THRESHOLD,
            |u| graph.degree(u) as u64,
            |range| {
                for u in range {
                    let nu = graph.neighbors(u);
                    for eo in graph.neighbor_range(u) {
                        let v = graph.edge_dst(eo);
                        if v <= u {
                            continue;
                        }
                        let c = count_with(precomp.map(|p| (p, u, v)), nu, graph.neighbors(v))
                            as u32
                            + 2;
                        cn[eo].store(c, Ordering::Relaxed);
                        let rev = graph.rev_offset(eo);
                        cn[rev].store(c, Ordering::Relaxed);
                    }
                }
            },
        );

        // Pass 2: neighbor order — per vertex, neighbors sorted by
        // descending σ. Sorting runs per-vertex in parallel over disjoint
        // output slices.
        let mut neighbor_order: Vec<(VertexId, u32)> = graph
            .raw_neighbors()
            .iter()
            .zip(cn.iter())
            .map(|(&v, c)| (v, c.load(Ordering::Relaxed)))
            .collect();
        {
            // Split the flat array into per-vertex slices for parallel
            // sorting without overlap.
            let mut slices: Vec<&mut [(VertexId, u32)]> = Vec::with_capacity(n);
            let mut rest: &mut [(VertexId, u32)] = &mut neighbor_order;
            for u in 0..n {
                let d = graph.degree(u as VertexId);
                let (head, tail) = rest.split_at_mut(d);
                slices.push(head);
                rest = tail;
            }
            pool.run_mut(&mut slices, |adj| {
                let d_u = adj.len();
                adj.sort_unstable_by(|&(va, ca), &(vb, cb)| {
                    let sa = SimValue::new(ca, d_u, graph.degree(va));
                    let sb = SimValue::new(cb, d_u, graph.degree(vb));
                    sb.cmp(&sa).then(va.cmp(&vb))
                });
            });
        }

        // Pass 3: core order — for each µ, vertices with d ≥ µ keyed by
        // σ_µ (the µ-th largest neighbor similarity), sorted descending.
        let max_d = graph.max_degree();
        let mut co_offsets = vec![0usize; max_d + 2];
        for u in 0..n {
            let d = graph.degree(u as VertexId);
            for mu in 1..=d {
                co_offsets[mu + 1] += 1;
            }
        }
        for mu in 1..co_offsets.len() {
            co_offsets[mu] += co_offsets[mu - 1];
        }
        let mut core_order: Vec<(VertexId, u32, u64)> =
            vec![(0, 0, 1); *co_offsets.last().unwrap_or(&0)];
        {
            let mut cursor = co_offsets.clone();
            for u in 0..n as VertexId {
                let base = graph.neighbor_range(u).start;
                let d_u = graph.degree(u);
                for mu in 1..=d_u {
                    let (v, c) = neighbor_order[base + mu - 1];
                    let sv = SimValue::new(c, d_u, graph.degree(v));
                    core_order[cursor[mu]] = (u, sv.cn, sv.denom);
                    cursor[mu] += 1;
                }
            }
        }
        // Sort each µ-slice by descending σ_µ, in parallel over µ.
        {
            let mut slices: Vec<&mut [(VertexId, u32, u64)]> = Vec::new();
            let mut rest: &mut [(VertexId, u32, u64)] = &mut core_order;
            for mu in 0..=max_d {
                let len = co_offsets[mu + 1] - co_offsets[mu];
                let (head, tail) = rest.split_at_mut(len);
                slices.push(head);
                rest = tail;
            }
            pool.run_mut(&mut slices, |slice| {
                slice.sort_unstable_by(|&(ua, ca, da), &(ub, cb, db)| {
                    let sa = SimValue { cn: ca, denom: da };
                    let sb = SimValue { cn: cb, denom: db };
                    sb.cmp(&sa).then(ua.cmp(&ub))
                });
            });
        }

        GsIndex {
            graph,
            neighbor_order,
            core_order,
            co_offsets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_graph::gen;
    use ppscan_intersect::merge;

    #[test]
    fn neighbor_order_is_descending_and_complete() {
        let g = gen::planted_partition(3, 15, 0.6, 0.05, 1);
        let idx = GsIndex::build(&g, 2);
        for u in g.vertices() {
            let base = g.neighbor_range(u).start;
            let d_u = g.degree(u);
            let entries = &idx.neighbor_order[base..base + d_u];
            // Same multiset of neighbors as CSR.
            let mut ids: Vec<u32> = entries.iter().map(|&(v, _)| v).collect();
            ids.sort_unstable();
            assert_eq!(ids, g.neighbors(u));
            // Descending σ.
            for w in entries.windows(2) {
                let a = SimValue::new(w[0].1, d_u, g.degree(w[0].0));
                let b = SimValue::new(w[1].1, d_u, g.degree(w[1].0));
                assert!(a >= b, "neighbor order not descending");
            }
            // cn values are exact.
            for &(v, c) in entries {
                let expect = merge::count_full(g.neighbors(u), g.neighbors(v)) + 2;
                assert_eq!(c as u64, expect, "cn wrong for ({u}, {v})");
            }
        }
    }

    #[test]
    fn core_order_slices_are_descending() {
        let g = gen::roll(120, 8, 3);
        let idx = GsIndex::build(&g, 2);
        for mu in 1..=idx.max_mu() {
            let slice = &idx.core_order[idx.co_offsets[mu]..idx.co_offsets[mu + 1]];
            for w in slice.windows(2) {
                let a = SimValue {
                    cn: w[0].1,
                    denom: w[0].2,
                };
                let b = SimValue {
                    cn: w[1].1,
                    denom: w[1].2,
                };
                assert!(a >= b, "core order not descending at mu={mu}");
            }
            // Every vertex with degree ≥ µ appears exactly once.
            let expected = g.vertices().filter(|&u| g.degree(u) >= mu).count();
            assert_eq!(slice.len(), expected);
        }
    }

    #[test]
    fn build_with_fesia_precomp_is_bit_identical() {
        use ppscan_intersect::fesia::FesiaPrecomp;
        use ppscan_intersect::KernelPrecomp;
        let g = gen::planted_partition(3, 18, 0.55, 0.06, 21);
        let avg = g.num_directed_edges() as f64 / g.num_vertices() as f64;
        let fesia = FesiaPrecomp::build(g.num_vertices(), avg, |u| g.neighbors(u));
        let pre = KernelPrecomp::new(Some(fesia), None);
        let plain = GsIndex::build(&g, 2);
        let hashed = GsIndex::build_with(&g, 2, Some(&pre));
        assert_eq!(plain.neighbor_order, hashed.neighbor_order);
        assert_eq!(plain.core_order, hashed.core_order);
        assert_eq!(plain.co_offsets, hashed.co_offsets);
    }

    #[test]
    fn empty_graph_builds() {
        let g = ppscan_graph::CsrGraph::empty(4);
        let idx = GsIndex::build(&g, 1);
        assert_eq!(idx.max_mu(), 0);
        assert!(idx.heap_bytes() < 1024);
    }
}
