//! # ppscan-gsindex
//!
//! A GS*-Index-style similarity index (Wen, Qin, Zhang, Chang, Lin —
//! VLDB'17; discussed in the ppSCAN paper's related work, §3.3): after a
//! one-time construction pass that computes the *exact* structural
//! similarity of every edge, clusterings for **arbitrary `(ε, µ)`
//! parameters** are answered in output-proportional time, with no further
//! set intersections.
//!
//! The ppSCAN paper's criticism — "the indexing phase involves exhaustive
//! similarity computations, which are prohibitively expensive for massive
//! graphs" — is measurable here: construction costs roughly one SCAN-XP
//! run (we parallelize it with the same degree-based scheduler and use
//! the exact-count SIMD kernel), and each subsequent query is orders of
//! magnitude cheaper than re-running ppSCAN. The `parameter_exploration`
//! harness quantifies the break-even point.
//!
//! ## Structure (following the GS*-Index design)
//!
//! * **Similarity values** — per directed CSR slot, the exact
//!   `cn = |Γ(u) ∩ Γ(v)|`; σ(u,v) = cn/√((d[u]+1)(d[v]+1)) is compared
//!   exactly in integer arithmetic ([`SimValue`]).
//! * **Neighbor order** — each vertex's neighbors re-sorted by
//!   descending σ, so the ε-neighborhood is always a prefix.
//! * **Core order** — for every µ, the vertices with degree ≥ µ sorted by
//!   descending µ-th-largest neighbor similarity σ_µ, so the core set for
//!   any ε is a prefix. Total size Σ_u d[u] = 2|E| entries.
//!
//! ```
//! use ppscan_gsindex::GsIndex;
//! use ppscan_core::params::ScanParams;
//! use ppscan_graph::gen;
//!
//! let g = gen::scan_paper_example();
//! let index = GsIndex::build(&g, 2);
//! let clustering = index.query(ScanParams::new(0.7, 2));
//! assert_eq!(clustering.num_clusters(), 2);
//! // Any other parameters, no recomputation:
//! let looser = index.query(ScanParams::new(0.4, 2));
//! assert!(looser.num_cores() >= clustering.num_cores());
//! ```

mod build;
mod owned;
mod query;
mod simvalue;
mod update;

pub use owned::OwnedGsIndex;
pub use simvalue::SimValue;
pub use update::UpdateStats;

use ppscan_graph::{CsrGraph, VertexId};

/// The similarity index. Build once with [`GsIndex::build`], query any
/// number of times with [`GsIndex::query`].
pub struct GsIndex<'g> {
    graph: &'g CsrGraph,
    /// Per directed CSR slot (in *neighbor-order*, not CSR order): the
    /// reordered neighbor and the exact closed-neighborhood intersection
    /// `cn` of that edge. `no[offsets[u]..offsets[u+1]]` is `u`'s
    /// neighborhood sorted by descending σ.
    neighbor_order: Vec<(VertexId, u32)>,
    /// Flattened core order: `core_order[co_offsets[mu]..co_offsets[mu+1]]`
    /// lists `(vertex, cn_mu, denom_mu)` sorted by descending σ_µ.
    core_order: Vec<(VertexId, u32, u64)>,
    /// Offsets into `core_order`, indexed by µ (entry 0 unused).
    co_offsets: Vec<usize>,
}

impl<'g> GsIndex<'g> {
    /// The indexed graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The σ-descending `(neighbor, cn)` entries of `u` — the slice the
    /// ε-prefix walks. Exposed for the incremental re-clustering layer
    /// (`ppscan-update`), which re-derives roles and repairs clusters
    /// from prefixes without re-running any intersection.
    pub fn neighbor_entries(&self, u: VertexId) -> &[(VertexId, u32)] {
        &self.neighbor_order[self.graph.neighbor_range(u)]
    }

    /// Exact σ of one of `u`'s entries (as returned by
    /// [`neighbor_entries`](Self::neighbor_entries)).
    pub fn entry_sim(&self, u: VertexId, entry: (VertexId, u32)) -> SimValue {
        SimValue::new(entry.1, self.graph.degree(u), self.graph.degree(entry.0))
    }

    /// Whether `u` is a core at `params`: σ_µ(u) ≥ ε, read straight off
    /// the µ-th neighbor-order entry.
    pub fn is_core(&self, u: VertexId, params: ppscan_core::params::ScanParams) -> bool {
        let d = self.graph.degree(u);
        if params.mu < 1 || params.mu > d {
            return false;
        }
        let entry = self.neighbor_entries(u)[params.mu - 1];
        self.entry_sim(u, entry).at_least(&params.epsilon)
    }

    /// The ε-similar neighbors of `u` — its ε-prefix, in descending σ.
    pub fn eps_prefix(
        &self,
        u: VertexId,
        params: ppscan_core::params::ScanParams,
    ) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbor_entries(u)
            .iter()
            .copied()
            .take_while(move |&e| self.entry_sim(u, e).at_least(&params.epsilon))
            .map(|(v, _)| v)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.neighbor_order.len() * std::mem::size_of::<(VertexId, u32)>()
            + self.core_order.len() * std::mem::size_of::<(VertexId, u32, u64)>()
            + self.co_offsets.len() * std::mem::size_of::<usize>()
    }

    /// Largest µ the index can answer (the maximum degree).
    pub fn max_mu(&self) -> usize {
        self.co_offsets.len().saturating_sub(2)
    }
}
