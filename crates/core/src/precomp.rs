//! Graph-aware construction of the kernel precomputation.
//!
//! `ppscan-intersect` owns the [`KernelPrecomp`] data structures (FESIA
//! hashed layouts, measured [`AutotunePlan`]s) but is graph-agnostic;
//! this module binds them to a [`CsrGraph`]: building the per-vertex
//! FESIA entries from the CSR adjacency, and drawing the autotuner's
//! sample set from the graph's *real* edges — so the measured plan is
//! tuned on exactly the `(len_a, len_b, min_cn)` distribution the run
//! will dispatch.
//!
//! Sampling is **seeded from the graph shape** (vertex count, edge
//! count, and the similarity threshold), not from a clock or OS
//! entropy: two runs over the same graph and parameters draw the same
//! sample set, keeping `SequentialDeterministic` runs reproducible
//! end to end. Degenerate graphs are safe by construction — zero edges
//! sample nothing, tiny graphs under-fill every bucket, and in both
//! cases the plan stays empty so [`Kernel::Autotuned`] degrades to the
//! `Adaptive` rule.
//!
//! Drivers call [`build_kernel_precomp`] **before** activating their
//! counter scope: plan measurement runs the real kernels, and those
//! timing invocations must not pollute the run's `compsim_invocations`.
//! The plan's summary is then recorded explicitly inside the scope via
//! [`ppscan_intersect::counters::record_autotune_plan`].

use crate::params::ScanParams;
use ppscan_graph::rng::SplitMix64;
use ppscan_graph::CsrGraph;
use ppscan_intersect::{AutotuneConfig, AutotunePlan, Kernel, KernelPrecomp, SamplePair};

/// Upper bound on sampled edges per plan. 8192 pairs across 72 buckets
/// keeps measurement in the tens of milliseconds while filling the
/// populated buckets toward `per_bucket` distinct pairs — distinctness
/// is what keeps the measurement honest (see `AutotuneConfig`).
const MAX_SAMPLES: usize = 8192;

/// Whether `kernel` benefits from a [`KernelPrecomp`]. Drivers skip the
/// build entirely for the classic kernels.
pub fn wants_precomp(kernel: Kernel) -> bool {
    matches!(kernel, Kernel::Fesia | Kernel::Autotuned)
}

/// Builds the precomputation `kernel` needs for running on `g` with
/// `params`: FESIA layouts for [`Kernel::Fesia`] and
/// [`Kernel::Autotuned`] (the autotuner measures the FESIA candidate
/// through them), plus the measured plan for [`Kernel::Autotuned`].
pub fn build_kernel_precomp(
    g: &CsrGraph,
    params: ScanParams,
    kernel: Kernel,
    cfg: &AutotuneConfig,
) -> KernelPrecomp {
    let fesia = wants_precomp(kernel).then(|| {
        ppscan_intersect::fesia::FesiaPrecomp::build(g.num_vertices(), g.avg_degree(), |u| {
            g.neighbors(u)
        })
    });
    let plan = (kernel == Kernel::Autotuned).then(|| {
        let samples = sample_pairs(g, params, MAX_SAMPLES);
        AutotunePlan::measure(&samples, fesia.as_ref(), cfg)
    });
    KernelPrecomp::new(fesia, plan)
}

/// Draws up to `max` `(N(u), N(v), min_cn)` samples from `g`'s directed
/// edge slots, seeded deterministically from the graph shape and
/// threshold parameters.
fn sample_pairs(g: &CsrGraph, params: ScanParams, max: usize) -> Vec<SamplePair<'_>> {
    let m2 = g.num_directed_edges();
    if m2 == 0 {
        return Vec::new();
    }
    let seed = 0xA070_7E45_u64
        ^ (g.num_vertices() as u64).rotate_left(17)
        ^ (m2 as u64).rotate_left(34)
        ^ (params.mu as u64).rotate_left(51)
        ^ params.min_cn(7, 13);
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..max.min(m2))
        .map(|_| {
            let eo = rng.gen_index(m2);
            let (u, v) = (g.slot_src(eo), g.edge_dst(eo));
            let (a, b) = (g.neighbors(u), g.neighbors(v));
            SamplePair {
                u,
                v,
                a,
                b,
                min_cn: params.min_cn(a.len(), b.len()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_graph::{builder, gen};

    fn zoo_graph() -> CsrGraph {
        gen::roll(400, 24, 0xFE51A)
    }

    fn params() -> ScanParams {
        ScanParams::new(0.5, 4)
    }

    #[test]
    fn classic_kernels_want_no_precomp() {
        for k in [
            Kernel::MergeEarly,
            Kernel::PivotScalar,
            Kernel::Galloping,
            Kernel::Adaptive,
            Kernel::Shuffling,
        ] {
            assert!(!wants_precomp(k), "{k}");
        }
        assert!(wants_precomp(Kernel::Fesia));
        assert!(wants_precomp(Kernel::Autotuned));
    }

    #[test]
    fn fesia_precomp_has_layout_but_no_plan() {
        let g = zoo_graph();
        let pre = build_kernel_precomp(&g, params(), Kernel::Fesia, &AutotuneConfig::default());
        assert!(pre.fesia().is_some());
        assert!(pre.plan().is_none());
    }

    #[test]
    fn autotuned_precomp_plans_buckets_on_a_real_graph() {
        let g = zoo_graph();
        let pre = build_kernel_precomp(&g, params(), Kernel::Autotuned, &AutotuneConfig::default());
        assert!(pre.fesia().is_some());
        let plan = pre.plan().expect("autotuned builds a plan");
        assert!(plan.stats().samples > 0);
        assert!(
            !plan.is_empty(),
            "a 400-vertex ROLL graph populates at least one bucket"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = zoo_graph();
        let a = sample_pairs(&g, params(), 64);
        let b = sample_pairs(&g, params(), 64);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.u, x.v, x.min_cn), (y.u, y.v, y.min_cn));
        }
    }

    #[test]
    fn degenerate_graphs_yield_empty_plans() {
        let g = builder::from_edges(&[]);
        assert!(sample_pairs(&g, params(), 64).is_empty());
        let pre = build_kernel_precomp(&g, params(), Kernel::Autotuned, &AutotuneConfig::default());
        let plan = pre.plan().expect("plan exists but is empty");
        assert!(plan.is_empty(), "no edges → no samples → empty plan");
        // Tiny graph: a couple of edges can't clear min_per_bucket
        // across buckets; whatever happens, the plan must stay total.
        let tiny = builder::from_edges(&[(0, 1), (1, 2)]);
        let pre = build_kernel_precomp(
            &tiny,
            params(),
            Kernel::Autotuned,
            &AutotuneConfig::default(),
        );
        assert!(pre.plan().is_some());
    }
}
