//! The per-directed-edge similarity label array (`sim[e(u, v)]`,
//! Definition 2.12) with the lock-free access discipline of §4.
//!
//! One byte per CSR slot (`2|E|` total). Every slot transitions at most
//! once, from `Unknown` to a final `Sim`/`NSim` (paper Theorem 4.1);
//! concurrent readers that still observe `Unknown` fall back to
//! recomputation, which is wasteful but never wrong — the algorithms'
//! phase structure makes such races rare (§4.2.2). `Relaxed` ordering
//! suffices because no other data is published through a label and the
//! phase barriers (pool joins) order cross-phase access.

use ppscan_intersect::Similarity;
use ppscan_unionfind::substrate::AtomicCellU8;
use std::sync::atomic::{AtomicU8, Ordering};

/// Shared similarity-label array.
///
/// Generic over the atomic substrate (default: the real [`AtomicU8`],
/// zero-cost). The `ppscan-check` model checker instantiates the same
/// publication protocol over its `ModelAtomicU8` shim and exhaustively
/// explores the label publish/consume interleavings of §4.2.2.
pub struct SimStore<A: AtomicCellU8 = AtomicU8> {
    labels: Vec<A>,
}

impl<A: AtomicCellU8> SimStore<A> {
    /// All labels start `Unknown`.
    pub fn new(num_directed_edges: usize) -> Self {
        let mut labels = Vec::with_capacity(num_directed_edges);
        labels.resize_with(num_directed_edges, || A::new(Similarity::Unknown as u8));
        Self { labels }
    }

    /// Number of directed-edge slots.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Reads the label at CSR slot `eo`.
    #[inline]
    pub fn get(&self, eo: usize) -> Similarity {
        Similarity::from_u8(self.labels[eo].load(Ordering::Relaxed))
    }

    /// Writes the label at CSR slot `eo`.
    #[inline]
    pub fn set(&self, eo: usize, s: Similarity) {
        debug_assert!(
            s != Similarity::Unknown,
            "labels only transition away from Unknown"
        );
        self.labels[eo].store(s as u8, Ordering::Relaxed);
    }

    /// Number of decided labels (diagnostics).
    pub fn num_known(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| l.load(Ordering::Relaxed) != Similarity::Unknown as u8)
            .count()
    }

    /// Number of `Sim` labels (diagnostics).
    pub fn num_sim(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| l.load(Ordering::Relaxed) == Similarity::Sim as u8)
            .count()
    }
}

impl<A: AtomicCellU8> std::fmt::Debug for SimStore<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimStore({} slots, {} known)",
            self.len(),
            self.num_known()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unknown() {
        let s: SimStore = SimStore::new(4);
        assert_eq!(s.len(), 4);
        for eo in 0..4 {
            assert_eq!(s.get(eo), Similarity::Unknown);
        }
        assert_eq!(s.num_known(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let s: SimStore = SimStore::new(3);
        s.set(1, Similarity::Sim);
        s.set(2, Similarity::NSim);
        assert_eq!(s.get(0), Similarity::Unknown);
        assert_eq!(s.get(1), Similarity::Sim);
        assert_eq!(s.get(2), Similarity::NSim);
        assert_eq!(s.num_known(), 2);
        assert_eq!(s.num_sim(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let s: SimStore = SimStore::new(1000);
        std::thread::scope(|t| {
            let s = &s;
            t.spawn(move || {
                for eo in 0..500 {
                    s.set(eo, Similarity::Sim);
                }
            });
            t.spawn(move || {
                for eo in 500..1000 {
                    s.set(eo, Similarity::NSim);
                }
            });
        });
        assert_eq!(s.num_known(), 1000);
        assert_eq!(s.num_sim(), 500);
    }
}
