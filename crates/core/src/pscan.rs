//! pSCAN (Chang et al., ICDE'16) — paper Algorithm 2.
//!
//! The state-of-the-art *sequential* pruning-based algorithm ppSCAN
//! parallelizes. Three pruning techniques (§3.2.1):
//!
//! 1. **Min-max pruning** — similar-degree `sd[u]` and effective-degree
//!    `ed[u]` bound `|N_ε(u)| − 1`; core checking stops as soon as
//!    `sd[u] ≥ µ` (core) or `ed[u] < µ` (non-core). Vertices are explored
//!    in non-increasing *dynamic* `ed[u]` order via a lazy bucket
//!    max-priority structure (`ed` only decreases).
//! 2. **Similarity value reuse** — every computed `sim[e(u, v)]` is also
//!    stored at the reverse slot `e(v, u)` (binary search in `v`'s
//!    sorted list).
//! 3. **Union-find pruning** — core clustering skips pairs already in the
//!    same disjoint set.
//!
//! `CompSim` uses the merge kernel with early termination
//! (Definition 3.9 bounds), like the reference implementation.

use crate::params::ScanParams;
use crate::report as report_glue;
use crate::result::{Clustering, Role, NO_CLUSTER};
use crate::simstore::SimStore;
use crate::timing::{Breakdown, Stopwatch};
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::counters::CounterScope;
use ppscan_intersect::{Kernel, Similarity};
use ppscan_obs::RunReport;
use ppscan_unionfind::UnionFind;
use std::time::Instant;

/// pSCAN result: canonical clustering plus the Figure-1 breakdown and
/// the unified run report.
#[derive(Debug)]
pub struct PScanOutput {
    /// Canonical clustering.
    pub clustering: Clustering,
    /// Similarity / pruning / other time split.
    pub breakdown: Breakdown,
    /// Machine-readable record of the run (breakdown-backed phases plus
    /// kernel counters).
    pub report: RunReport,
}

/// Runs pSCAN (Algorithm 2) with the default dynamic `ed` ordering.
pub fn pscan(g: &CsrGraph, params: ScanParams) -> PScanOutput {
    pscan_with_order(g, params, true)
}

/// Runs pSCAN with or without the dynamic non-increasing-`ed` vertex
/// order (the §4.1 ablation: ppSCAN drops the order because its effect on
/// workload is negligible; `bin/ablation_edorder` measures that claim).
pub fn pscan_with_order(g: &CsrGraph, params: ScanParams, dynamic_order: bool) -> PScanOutput {
    PScan::new(g, params).run(dynamic_order)
}

struct PScan<'g> {
    g: &'g CsrGraph,
    params: ScanParams,
    sim: SimStore,
    /// Lower bound on `|N_ε(u)| − 1` (similar degree).
    sd: Vec<i64>,
    /// Upper bound on `|N_ε(u)| − 1` (effective degree).
    ed: Vec<i64>,
    role: Vec<Option<Role>>,
    uf: UnionFind,
    sim_timer: Stopwatch,
    prune_timer: Stopwatch,
}

impl<'g> PScan<'g> {
    fn new(g: &'g CsrGraph, params: ScanParams) -> Self {
        let n = g.num_vertices();
        Self {
            g,
            params,
            sim: SimStore::new(g.num_directed_edges()),
            sd: vec![0; n],
            ed: (0..n).map(|u| g.degree(u as VertexId) as i64).collect(),
            role: vec![None; n],
            uf: UnionFind::new(n),
            sim_timer: Stopwatch::default(),
            prune_timer: Stopwatch::default(),
        }
    }

    fn run(mut self, dynamic_order: bool) -> PScanOutput {
        let counter_scope = CounterScope::new();
        let _counters = counter_scope.activate();
        let wall = Instant::now();
        let n = self.g.num_vertices();
        let mu = self.params.mu as i64;

        if dynamic_order {
            self.run_bucket_order();
        } else {
            for u in 0..n as VertexId {
                self.check_core(u);
                if self.role[u as usize] == Some(Role::Core) {
                    self.cluster_core(u);
                }
            }
        }
        debug_assert!(self.role.iter().all(Option::is_some));
        let _ = mu;

        // InitClusterId + ClusterNonCores (Algorithm 2 line 8).
        let mut pairs: Vec<(VertexId, u32)> = Vec::new();
        let mut core_label = vec![NO_CLUSTER; n];
        for u in 0..n as VertexId {
            if self.role[u as usize] != Some(Role::Core) {
                continue;
            }
            core_label[u as usize] = self.uf.find_root(u);
            for eo in self.g.neighbor_range(u) {
                let v = self.g.edge_dst(eo);
                if self.role[v as usize] != Some(Role::NonCore) {
                    continue;
                }
                let mut label = self.sim.get(eo);
                if label == Similarity::Unknown {
                    label = self.comp_sim(u, v, eo);
                }
                if label == Similarity::Sim {
                    pairs.push((v, core_label[u as usize]));
                }
            }
        }

        let roles: Vec<Role> = self.role.iter().map(|r| r.unwrap()).collect();
        let clustering = Clustering::from_raw(roles, core_label, pairs);
        let mut breakdown = Breakdown {
            similarity_evaluation: self.sim_timer.total(),
            workload_reduction: self.prune_timer.total(),
            ..Default::default()
        };
        let wall = wall.elapsed();
        breakdown.set_other_from_total(wall);
        let mut report = report_glue::base_report("pscan", self.g, self.params);
        report.wall_nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        report.phases = report_glue::breakdown_phases(&breakdown);
        report.counters = report_glue::counters_from(counter_scope.snapshot());
        PScanOutput {
            clustering,
            breakdown,
            report,
        }
    }

    /// Vertex loop in non-increasing dynamic `ed[u]` order: a lazy bucket
    /// max-priority structure. `ed` only decreases, so stale entries are
    /// re-binned downward on pop; each vertex re-bins at most `d[u]`
    /// times.
    fn run_bucket_order(&mut self) {
        let n = self.g.num_vertices();
        let max_d = self.g.max_degree();
        let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_d + 1];
        for u in 0..n as VertexId {
            buckets[self.ed[u as usize] as usize].push(u);
        }
        let mut processed = vec![false; n];
        let mut cur = max_d;
        loop {
            while buckets[cur].is_empty() {
                if cur == 0 {
                    // Drain any remaining (all ed = 0) and finish.
                    break;
                }
                cur -= 1;
            }
            let Some(u) = buckets[cur].pop() else {
                break; // cur == 0 and empty → done
            };
            if processed[u as usize] {
                continue;
            }
            let cur_ed = self.ed[u as usize].max(0) as usize;
            if cur_ed != cur {
                // Stale: re-bin at the (lower) current ed.
                debug_assert!(cur_ed < cur);
                buckets[cur_ed].push(u);
                continue;
            }
            processed[u as usize] = true;
            self.check_core(u);
            if self.role[u as usize] == Some(Role::Core) {
                self.cluster_core(u);
            }
        }
    }

    /// `CompSim(u, v)`: merge kernel with early termination; stores the
    /// label at both `e(u, v)` and the reverse slot, and maintains
    /// `sd`/`ed` of both endpoints.
    fn comp_sim(&mut self, u: VertexId, v: VertexId, eo: usize) -> Similarity {
        let (nu, nv) = (self.g.neighbors(u), self.g.neighbors(v));
        let min_cn = self.params.min_cn(nu.len(), nv.len());
        let label = self
            .sim_timer
            .time(|| Kernel::MergeEarly.check(nu, nv, min_cn));
        let (g, sim) = (self.g, &self.sim);
        self.prune_timer.time(|| {
            sim.set(eo, label);
            // Similarity value reuse: the reverse slot comes from the
            // precomputed reverse-edge index in O(1) (the paper's
            // binary search survives as `CsrGraph::rev_offset`'s
            // fallback for index-less graphs).
            sim.set(g.rev_offset(eo), label);
        });
        if label == Similarity::Sim {
            self.sd[u as usize] += 1;
            self.sd[v as usize] += 1;
        } else {
            self.ed[u as usize] -= 1;
            self.ed[v as usize] -= 1;
        }
        label
    }

    /// Algorithm 2 `CheckCore(u)` with min-max pruning.
    fn check_core(&mut self, u: VertexId) {
        let mu = self.params.mu as i64;
        if self.sd[u as usize] < mu && self.ed[u as usize] >= mu {
            for eo in self.g.neighbor_range(u) {
                if self.sim.get(eo) != Similarity::Unknown {
                    continue;
                }
                let v = self.g.edge_dst(eo);
                self.comp_sim(u, v, eo);
                if self.sd[u as usize] >= mu || self.ed[u as usize] < mu {
                    break;
                }
            }
        }
        let role = if self.sd[u as usize] >= mu {
            Role::Core
        } else {
            Role::NonCore
        };
        self.role[u as usize] = Some(role);
    }

    /// Algorithm 2 `ClusterCore(u)` with union-find pruning.
    fn cluster_core(&mut self, u: VertexId) {
        let mu = self.params.mu as i64;
        for eo in self.g.neighbor_range(u) {
            let v = self.g.edge_dst(eo);
            // Only neighbors already known to be cores (sd[v] ≥ µ).
            if self.sd[v as usize] < mu || self.uf.is_same_set(u, v) {
                continue;
            }
            let mut label = self.sim.get(eo);
            if label == Similarity::Unknown {
                label = self.comp_sim(u, v, eo);
            }
            if label == Similarity::Sim {
                self.uf.union(u, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use ppscan_graph::gen;

    fn assert_matches_scan(g: &CsrGraph, eps: f64, mu: usize) {
        let p = ScanParams::new(eps, mu);
        let a = scan(g, p).clustering;
        let b = pscan(g, p).clustering;
        assert_eq!(a, b, "pSCAN != SCAN at eps={eps} mu={mu}");
        let c = pscan_with_order(g, p, false).clustering;
        assert_eq!(a, c, "pSCAN(no order) != SCAN at eps={eps} mu={mu}");
    }

    #[test]
    fn matches_scan_on_golden_example() {
        let g = gen::scan_paper_example();
        for eps in [0.2, 0.4, 0.6, 0.7, 0.8] {
            for mu in [1, 2, 3, 5] {
                assert_matches_scan(&g, eps, mu);
            }
        }
    }

    #[test]
    fn matches_scan_on_structured_graphs() {
        for g in [
            gen::complete(8),
            gen::star(10),
            gen::path(12),
            gen::cycle(9),
            gen::grid(4, 5),
            gen::clique_chain(5, 4),
        ] {
            for eps in [0.3, 0.6, 0.9] {
                for mu in [1, 2, 4] {
                    assert_matches_scan(&g, eps, mu);
                }
            }
        }
    }

    #[test]
    fn matches_scan_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(120, 600, seed);
            for eps in [0.2, 0.5, 0.8] {
                assert_matches_scan(&g, eps, 3);
            }
        }
        let g = gen::planted_partition(4, 20, 0.7, 0.03, 7);
        assert_matches_scan(&g, 0.6, 4);
    }

    #[test]
    fn prunes_relative_to_scan() {
        // pSCAN must invoke strictly fewer intersections than exhaustive
        // similarity computation (2 per undirected edge).
        use ppscan_intersect::counters::CounterScope;
        let g = gen::roll(400, 16, 3);
        let scope = CounterScope::new();
        let (delta, _) = scope.measure(|| pscan(&g, ScanParams::new(0.6, 5)));
        assert!(
            delta.compsim_invocations < g.num_directed_edges() as u64,
            "pSCAN did {} invocations on {} directed edges — no pruning?",
            delta.compsim_invocations,
            g.num_directed_edges()
        );
    }

    #[test]
    fn empty_graph() {
        let out = pscan(&CsrGraph::empty(3), ScanParams::new(0.5, 1));
        assert_eq!(out.clustering.num_cores(), 0);
    }

    #[test]
    fn breakdown_populated() {
        let g = gen::clique_chain(6, 3);
        let out = pscan(&g, ScanParams::new(0.5, 2));
        assert!(out.breakdown.total() > std::time::Duration::ZERO);
    }
}
