//! Differential stress driver: sweeps algorithm × kernel × thread count ×
//! schedule strategy × (ε, µ) over seeded random graphs, validating every
//! result against the from-first-principles reference (`verify`). On a
//! mismatch it **shrinks** the failing graph — first to a (locally)
//! minimal edge list, then to a minimal vertex subset with ids remapped
//! dense — and reports a replayable case — schedule bugs become
//! one-command reproductions instead of once-in-a-hundred CI flakes.
//! With [`StressConfig::race_detection`] the sweep additionally runs
//! every case under the FastTrack happens-before detector and embeds
//! any detected race in the run report.
//!
//! # Replaying a failure
//!
//! A failure prints a banner like
//!
//! ```text
//! stress failure: case_seed=0xd1ab0003 algorithm=ppscan kernel=merge-early
//! threads=4 strategy=adversarial(3735928559) eps=0.5 mu=3
//! shrunk graph (7 vertices): [(0, 1), (0, 2), ...]
//! replay: ppscan_core::stress::replay_case(0xd1ab0003, &config)
//! ```
//!
//! and the shrunk edge list is embedded in the [`FailingCase`], so the
//! exact graph is available even without the generator. `replay_case`
//! re-runs every configuration of one case under the same `StressConfig`;
//! the failing configuration is fully pinned by the banner fields.
//!
//! # Failure corpus
//!
//! Beyond the banner, every shrunk failure is persisted as JSON into
//! [`StressConfig::corpus_dir`] (default `target/stress-corpus/`).
//! [`replay_corpus`] reloads everything found there and re-runs each
//! case's pinned configuration — the `replay_corpus_is_clean` test turns
//! any lingering corpus entry that still reproduces into a hard test
//! failure, so fixed bugs clean themselves out of CI while unfixed ones
//! stay loud.
//!
//! [`run_stress_report`] wraps the sweep in a [`RunReport`]: one `seeds`
//! entry per case (accepted or failing) plus the failure payload, for the
//! machine-readable run reports the bench harness aggregates.

use crate::params::ScanParams;
use crate::ppscan::{ppscan, PpScanConfig};
use crate::result::Clustering;
use crate::verify;
use ppscan_graph::builder::from_edges;
use ppscan_graph::rng::SplitMix64;
use ppscan_graph::{gen, CsrGraph, VertexId};
use ppscan_intersect::Kernel;
use ppscan_obs::json::Json;
use ppscan_obs::RunReport;
use ppscan_sched::{ExecutionStrategy, SchedulerKind};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A boxed algorithm runner used by the baseline differential checks.
type RunFn = Box<dyn Fn(&CsrGraph) -> Clustering>;
/// Edge-list failure predicate used by the shrinker.
type FailsFn<'a> = &'a dyn Fn(&[(VertexId, VertexId)]) -> bool;

/// What the stress driver sweeps. The defaults satisfy the harness's
/// acceptance envelope: 3 thread counts × all 3 strategies × 2 kernels.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Base seed; case `i` uses `master_seed + i`.
    pub master_seed: u64,
    /// Number of random graphs to sweep.
    pub cases: u64,
    /// Thread counts for the parallel algorithms.
    pub thread_counts: Vec<usize>,
    /// Schedule strategies for ppSCAN.
    pub strategies: Vec<ExecutionStrategy>,
    /// Scheduler backends for ppSCAN. Backends must be result-invariant,
    /// so the sweep crosses them with every parallel strategy (the
    /// caller-thread strategies ignore the backend and are swept once).
    pub schedulers: Vec<SchedulerKind>,
    /// `CompSim` kernels for ppSCAN.
    pub kernels: Vec<Kernel>,
    /// (ε, µ) grid.
    pub params: Vec<(f64, usize)>,
    /// Also differential-test the sequential baselines (SCAN, pSCAN,
    /// SCAN++) and the parallel non-ppSCAN baselines per case.
    pub check_baselines: bool,
    /// Scheduler degree threshold — deliberately tiny so every few
    /// vertices form a task and the schedule space is rich.
    pub degree_threshold: u64,
    /// Reruns per configuration when probing a schedule-dependent
    /// failure during shrinking (a racy mismatch may need several
    /// attempts to re-manifest).
    pub repeats: usize,
    /// Maximum predicate evaluations the shrinker may spend.
    pub shrink_budget: usize,
    /// Where shrunk failing cases are persisted as JSON (`None` disables
    /// persistence, e.g. for tests that provoke failures on purpose).
    pub corpus_dir: Option<PathBuf>,
    /// Run each case inside a [`ppscan_obs::race::DetectionSession`]:
    /// the scheduler's fork/join/steal edges (and any traced atomics in
    /// the code under test) feed the FastTrack happens-before detector,
    /// and every detected race is embedded in the sweep's
    /// [`RunReport::races`]. A clean sweep must stay at zero races —
    /// the nightly full sweep and the `race_axis_sweep_is_clean` smoke
    /// test assert exactly that. Off by default: detection serializes
    /// concurrent sessions process-wide and adds per-dispatch clock
    /// work.
    pub race_detection: bool,
}

/// The default failure-corpus directory: `stress-corpus/` under the
/// cargo target directory (honoring `CARGO_TARGET_DIR`).
pub fn default_corpus_dir() -> PathBuf {
    let target = option_env!("CARGO_TARGET_DIR").map_or_else(
        || {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        },
        PathBuf::from,
    );
    target.join("stress-corpus")
}

impl Default for StressConfig {
    fn default() -> Self {
        Self {
            master_seed: 0xd1ab_0000,
            cases: 6,
            thread_counts: vec![1, 2, 4],
            strategies: vec![
                ExecutionStrategy::Parallel,
                ExecutionStrategy::SequentialDeterministic,
                ExecutionStrategy::AdversarialSeeded { seed: 0xdead_beef },
            ],
            schedulers: vec![SchedulerKind::WorkStealing, SchedulerKind::SharedQueue],
            kernels: vec![
                Kernel::MergeEarly,
                Kernel::auto(),
                Kernel::Adaptive,
                Kernel::Fesia,
                Kernel::Shuffling,
                Kernel::Autotuned,
            ],
            params: vec![(0.3, 2), (0.5, 3), (0.8, 4)],
            check_baselines: true,
            degree_threshold: 8,
            repeats: 3,
            shrink_budget: 120,
            corpus_dir: Some(default_corpus_dir()),
            race_detection: false,
        }
    }
}

/// A reproduced-and-shrunk differential failure.
#[derive(Clone, Debug)]
pub struct FailingCase {
    /// Seed regenerating the original (pre-shrink) graph via
    /// [`case_graph`].
    pub case_seed: u64,
    /// Which algorithm diverged from the reference.
    pub algorithm: &'static str,
    /// ppSCAN kernel (ppSCAN failures only).
    pub kernel: Option<Kernel>,
    /// Thread count (parallel algorithms only).
    pub threads: Option<usize>,
    /// Schedule strategy (ppSCAN failures only).
    pub strategy: Option<ExecutionStrategy>,
    /// Scheduler backend (ppSCAN failures only).
    pub scheduler: Option<SchedulerKind>,
    /// Failing ε.
    pub eps: f64,
    /// Failing µ.
    pub mu: usize,
    /// Shrunk failing graph as an undirected edge list. Both passes have
    /// run: edge-level ddmin, then vertex-subset dropping with ids
    /// remapped dense — so these ids generally differ from the original
    /// graph's.
    pub edges: Vec<(VertexId, VertexId)>,
    /// First divergence detail from the verifier.
    pub detail: String,
}

impl std::fmt::Display for FailingCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stress failure: case_seed={:#x} algorithm={}",
            self.case_seed, self.algorithm
        )?;
        if let Some(k) = self.kernel {
            write!(f, " kernel={k}")?;
        }
        if let Some(t) = self.threads {
            write!(f, " threads={t}")?;
        }
        if let Some(s) = self.strategy {
            write!(f, " strategy={s}")?;
        }
        if let Some(s) = self.scheduler {
            write!(f, " scheduler={s}")?;
        }
        writeln!(f, " eps={} mu={}", self.eps, self.mu)?;
        writeln!(f, "shrunk graph: {:?}", self.edges)?;
        writeln!(f, "detail: {}", self.detail)?;
        writeln!(
            f,
            "replay: ppscan_core::stress::replay_case({:#x}, &config)",
            self.case_seed
        )?;
        writeln!(f, "ready-to-paste regression test:")?;
        write!(f, "{}", self.regression_test_body())
    }
}

/// Maps an algorithm name back to the `'static` string the drivers use.
fn algorithm_static(name: &str) -> Option<&'static str> {
    ["scan", "pscan", "scanpp", "scanxp", "anyscan", "ppscan"]
        .into_iter()
        .find(|a| *a == name)
}

impl FailingCase {
    /// Renders a ready-to-paste `#[test]` function pinning this failing
    /// configuration. Pasted into any module of a crate depending on
    /// `ppscan-core` (the stress test module is the natural home), it
    /// turns the shrunk reproduction into a permanent regression test:
    /// the test re-runs the pinned configuration on the embedded graph
    /// and fails while the divergence still manifests. The same snippet
    /// is embedded in the failure banner and in the corpus JSON entry.
    pub fn regression_test_body(&self) -> String {
        let kernel = match self.kernel {
            Some(k) => format!("Some(ppscan_intersect::Kernel::{k:?})"),
            None => "None".to_string(),
        };
        let strategy = match self.strategy {
            Some(s) => format!("Some(ppscan_sched::ExecutionStrategy::{s:?})"),
            None => "None".to_string(),
        };
        let scheduler = match self.scheduler {
            Some(s) => format!("Some(ppscan_sched::SchedulerKind::{s:?})"),
            None => "None".to_string(),
        };
        format!(
            "#[test]\n\
             fn regression_case_{seed:016x}_{algo}() {{\n\
             \x20   // Auto-generated by the stress shrinker (stress::FailingCase).\n\
             \x20   let case = ppscan_core::stress::FailingCase {{\n\
             \x20       case_seed: {seed:#x},\n\
             \x20       algorithm: {algo:?},\n\
             \x20       kernel: {kernel},\n\
             \x20       threads: {threads:?},\n\
             \x20       strategy: {strategy},\n\
             \x20       scheduler: {scheduler},\n\
             \x20       eps: {eps:?},\n\
             \x20       mu: {mu},\n\
             \x20       edges: vec!{edges:?},\n\
             \x20       detail: {detail:?}.to_string(),\n\
             \x20   }};\n\
             \x20   assert!(\n\
             \x20       !case.reproduces(5),\n\
             \x20       \"shrunk stress case reproduces again:\\n{{case}}\"\n\
             \x20   );\n\
             }}\n",
            seed = self.case_seed,
            algo = self.algorithm,
            kernel = kernel,
            threads = self.threads,
            strategy = strategy,
            scheduler = scheduler,
            eps = self.eps,
            mu = self.mu,
            edges = self.edges,
            detail = self.detail,
        )
    }

    /// Serializes the case (corpus file format).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("case_seed".to_string(), Json::from_u64(self.case_seed)),
            (
                "algorithm".to_string(),
                Json::Str(self.algorithm.to_string()),
            ),
        ];
        if let Some(k) = self.kernel {
            fields.push(("kernel".to_string(), Json::Str(k.name().to_string())));
        }
        if let Some(t) = self.threads {
            fields.push(("threads".to_string(), Json::from_u64(t as u64)));
        }
        if let Some(s) = self.strategy {
            fields.push(("strategy".to_string(), Json::Str(s.to_string())));
        }
        if let Some(s) = self.scheduler {
            fields.push(("scheduler".to_string(), Json::Str(s.to_string())));
        }
        fields.push(("eps".to_string(), Json::Num(self.eps)));
        fields.push(("mu".to_string(), Json::from_u64(self.mu as u64)));
        fields.push((
            "edges".to_string(),
            Json::Arr(
                self.edges
                    .iter()
                    .map(|&(u, v)| {
                        Json::Arr(vec![Json::from_u64(u as u64), Json::from_u64(v as u64)])
                    })
                    .collect(),
            ),
        ));
        fields.push(("detail".to_string(), Json::Str(self.detail.clone())));
        // Informational only — `from_json` ignores it; regenerate with
        // `regression_test_body()` after editing a corpus entry.
        fields.push((
            "regression_test".to_string(),
            Json::Str(self.regression_test_body()),
        ));
        Json::Obj(fields)
    }

    /// Deserializes a corpus entry written by [`FailingCase::to_json`].
    /// Returns `None` on any missing/ill-typed field or unknown
    /// algorithm/kernel/strategy name.
    pub fn from_json(json: &Json) -> Option<FailingCase> {
        let algorithm = algorithm_static(json.get("algorithm")?.as_str()?)?;
        let kernel = match json.get("kernel") {
            Some(k) => Some(Kernel::parse(k.as_str()?)?),
            None => None,
        };
        let threads = match json.get("threads") {
            Some(t) => Some(usize::try_from(t.as_u64()?).ok()?),
            None => None,
        };
        let strategy = match json.get("strategy") {
            Some(s) => Some(ExecutionStrategy::parse(s.as_str()?)?),
            None => None,
        };
        let scheduler = match json.get("scheduler") {
            Some(s) => Some(SchedulerKind::parse(s.as_str()?)?),
            None => None,
        };
        let mut edges = Vec::new();
        for e in json.get("edges")?.as_arr()? {
            let pair = e.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let u = u32::try_from(pair[0].as_u64()?).ok()?;
            let v = u32::try_from(pair[1].as_u64()?).ok()?;
            edges.push((u, v));
        }
        Some(FailingCase {
            case_seed: json.get("case_seed")?.as_u64()?,
            algorithm,
            kernel,
            threads,
            strategy,
            scheduler,
            eps: json.get("eps")?.as_f64()?,
            mu: usize::try_from(json.get("mu")?.as_u64()?).ok()?,
            edges,
            detail: json.get("detail")?.as_str()?.to_string(),
        })
    }

    /// Corpus file name for this case, unique per (seed, configuration).
    pub fn corpus_file_name(&self) -> String {
        let kernel = self.kernel.map_or("none".into(), |k| k.name().to_string());
        let strategy = self
            .strategy
            .map_or("none".into(), |s| s.to_string())
            .replace(['(', ')'], "-");
        let scheduler = self.scheduler.map_or("none".into(), |s| s.to_string());
        format!(
            "case-{:016x}-{}-{}-{}-{}-t{}.json",
            self.case_seed,
            self.algorithm,
            kernel,
            strategy,
            scheduler,
            self.threads.unwrap_or(0),
        )
    }

    /// Re-runs exactly this case's pinned configuration on the embedded
    /// (shrunk) graph, `repeats` times. Returns `true` if the divergence
    /// from the reference clustering still manifests.
    pub fn reproduces(&self, repeats: usize) -> bool {
        let g = from_edges(&self.edges);
        let p = ScanParams::new(self.eps, self.mu);
        let reference = verify::reference_clustering(&g, p);
        let threads = self.threads.unwrap_or(1);
        let run: RunFn = match self.algorithm {
            "scan" => Box::new(move |g| crate::scan::scan(g, p).clustering),
            "pscan" => Box::new(move |g| crate::pscan::pscan(g, p).clustering),
            "scanpp" => Box::new(move |g| crate::scanpp::scanpp(g, p)),
            "scanxp" => Box::new(move |g| crate::scanxp::scanxp(g, p, threads)),
            "anyscan" => Box::new(move |g| crate::anyscan::anyscan(g, p, threads)),
            _ => {
                let cfg = PpScanConfig::with_threads(threads)
                    .kernel(self.kernel.unwrap_or_default())
                    .strategy(self.strategy.unwrap_or_default())
                    .scheduler(self.scheduler.unwrap_or_default());
                Box::new(move |g| ppscan(g, p, &cfg).clustering)
            }
        };
        (0..repeats.max(1)).any(|_| run(&g) != reference)
    }
}

/// Loads every corpus entry under `dir` and re-runs it ([`FailingCase::
/// reproduces`] with `repeats` attempts). Returns `(case, still_failing)`
/// pairs; a missing directory is an empty (clean) corpus. Unparseable
/// files are an error — a corrupt corpus should be loud, not skipped.
pub fn replay_corpus(dir: &Path, repeats: usize) -> Result<Vec<(FailingCase, bool)>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading corpus dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            // Only `case-*.json` entries are corpus cases; the directory
            // also holds the sweep's seed-log report.
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("case-"))
        })
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let json = ppscan_obs::json::parse(&text)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let case = FailingCase::from_json(&json)
            .ok_or_else(|| format!("malformed corpus entry {}", path.display()))?;
        let still_failing = case.reproduces(repeats);
        out.push((case, still_failing));
    }
    Ok(out)
}

/// Aggregate statistics of a green sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct StressStats {
    /// Graphs swept.
    pub cases: u64,
    /// Individual (algorithm, kernel, threads, strategy, ε, µ) runs
    /// compared against the reference.
    pub configs_checked: u64,
}

/// Deterministically generates case `case_seed`'s graph: a seeded pick
/// among Erdős–Rényi, ROLL scale-free and planted-partition families,
/// sized small enough that the naive reference stays fast but large
/// enough that consolidation has real work.
pub fn case_graph(case_seed: u64) -> CsrGraph {
    let mut rng = SplitMix64::seed_from_u64(case_seed);
    match rng.gen_index(3) {
        0 => {
            let n = rng.gen_range(12..60);
            let m = n * rng.gen_range(1..5);
            gen::erdos_renyi(n, m, rng.next_u64())
        }
        1 => {
            let n = rng.gen_range(40..120);
            let d = 4 + 2 * rng.gen_index(4);
            gen::roll(n, d, rng.next_u64())
        }
        _ => {
            let blocks = rng.gen_range(2..5);
            let size = rng.gen_range(8..20);
            let p_in = 0.45 + 0.3 * rng.gen_f64();
            gen::planted_partition(blocks, size, p_in, 0.05, rng.next_u64())
        }
    }
}

/// Runs the full sweep. `Ok` carries coverage statistics; `Err` carries
/// the first failing configuration, already shrunk and replayable.
pub fn run_stress(cfg: &StressConfig) -> Result<StressStats, Box<FailingCase>> {
    let mut stats = StressStats::default();
    for i in 0..cfg.cases {
        stats.configs_checked += replay_case(cfg.master_seed.wrapping_add(i), cfg)?;
        stats.cases += 1;
    }
    Ok(stats)
}

/// Runs the full sweep like [`run_stress`], additionally producing a
/// [`RunReport`] that records **every** case seed (accepted and failing)
/// under `extra["seeds"]`, with the shrunk failure payload inline when a
/// case diverges. The report is returned even on failure, so the stress
/// binary can persist it either way.
pub fn run_stress_report(cfg: &StressConfig) -> (Result<StressStats, Box<FailingCase>>, RunReport) {
    let wall = Instant::now();
    let mut report = RunReport::new("stress");
    report.push_extra("master_seed", Json::from_u64(cfg.master_seed));
    report.push_extra("cases", Json::from_u64(cfg.cases));
    report.push_extra("race_detection", Json::Bool(cfg.race_detection));
    let mut seeds = Vec::new();
    let mut stats = StressStats::default();
    let mut failure = None;
    for i in 0..cfg.cases {
        let seed = cfg.master_seed.wrapping_add(i);
        // One detection session per case keeps the vector clocks small
        // and tags any detected race with the case it came from.
        let session = cfg
            .race_detection
            .then(ppscan_obs::race::DetectionSession::begin);
        let outcome = replay_case(seed, cfg);
        let case_races = session.map_or_else(Vec::new, |s| s.finish());
        match outcome {
            Ok(checked) => {
                stats.cases += 1;
                stats.configs_checked += checked;
                seeds.push(Json::Obj(vec![
                    ("seed".to_string(), Json::from_u64(seed)),
                    ("status".to_string(), Json::Str("ok".to_string())),
                    ("configs_checked".to_string(), Json::from_u64(checked)),
                    ("races".to_string(), Json::from_u64(case_races.len() as u64)),
                ]));
                report.races.extend(case_races);
            }
            Err(case) => {
                seeds.push(Json::Obj(vec![
                    ("seed".to_string(), Json::from_u64(seed)),
                    ("status".to_string(), Json::Str("failed".to_string())),
                    ("case".to_string(), case.to_json()),
                ]));
                report.races.extend(case_races);
                failure = Some(case);
                break;
            }
        }
    }
    report.push_extra("seeds", Json::Arr(seeds));
    report.push_extra("configs_checked", Json::from_u64(stats.configs_checked));
    report.wall_nanos = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (failure.map_or(Ok(stats), Err), report)
}

/// Re-runs every configuration of one case (the unit a failure banner
/// points back at). Returns the number of configurations checked.
pub fn replay_case(case_seed: u64, cfg: &StressConfig) -> Result<u64, Box<FailingCase>> {
    let g = case_graph(case_seed);
    let mut checked = 0u64;
    for &(eps, mu) in &cfg.params {
        let p = ScanParams::new(eps, mu);
        let reference = verify::reference_clustering(&g, p);

        if cfg.check_baselines {
            checked += check_baselines(case_seed, &g, p, &reference, cfg)?;
        }

        for &kernel in &cfg.kernels {
            if !kernel.available() {
                continue;
            }
            for &threads in &cfg.thread_counts {
                for &strategy in &cfg.strategies {
                    for (si, &scheduler) in cfg.schedulers.iter().enumerate() {
                        // Caller-thread strategies never touch the
                        // backend; sweeping them once is enough.
                        let backend_matters = matches!(
                            strategy,
                            ExecutionStrategy::Parallel
                                | ExecutionStrategy::AdversarialSeeded { .. }
                        );
                        if si > 0 && !backend_matters {
                            continue;
                        }
                        checked += 1;
                        let run_cfg = PpScanConfig::with_threads(threads)
                            .kernel(kernel)
                            .strategy(strategy)
                            .scheduler(scheduler)
                            .degree_threshold(cfg.degree_threshold);
                        let got = ppscan(&g, p, &run_cfg).clustering;
                        if got != reference {
                            return Err(report(
                                case_seed,
                                &g,
                                "ppscan",
                                Some(kernel),
                                Some(threads),
                                Some(strategy),
                                Some(scheduler),
                                eps,
                                mu,
                                &got,
                                cfg,
                                &|g| ppscan(g, p, &run_cfg).clustering,
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(checked)
}

/// Differential checks of the non-ppSCAN implementations for one
/// parameter point.
fn check_baselines(
    case_seed: u64,
    g: &CsrGraph,
    p: ScanParams,
    reference: &Clustering,
    cfg: &StressConfig,
) -> Result<u64, Box<FailingCase>> {
    let threads = cfg.thread_counts.last().copied().unwrap_or(2);
    let runs: [(&'static str, Option<usize>, RunFn); 5] = [
        (
            "scan",
            None,
            Box::new(move |g| crate::scan::scan(g, p).clustering),
        ),
        (
            "pscan",
            None,
            Box::new(move |g| crate::pscan::pscan(g, p).clustering),
        ),
        (
            "scanpp",
            None,
            Box::new(move |g| crate::scanpp::scanpp(g, p)),
        ),
        (
            "scanxp",
            Some(threads),
            Box::new(move |g| crate::scanxp::scanxp(g, p, threads)),
        ),
        (
            "anyscan",
            Some(threads),
            Box::new(move |g| crate::anyscan::anyscan(g, p, threads)),
        ),
    ];
    for (name, t, run) in &runs {
        let got = run(g);
        if got != *reference {
            return Err(report(
                case_seed,
                g,
                name,
                None,
                *t,
                None,
                None,
                p.epsilon.as_f64(),
                p.mu,
                &got,
                cfg,
                run.as_ref(),
            ));
        }
    }
    Ok(runs.len() as u64)
}

/// Builds the failure report: shrinks the graph under the failing
/// configuration, then packages the banner fields.
#[allow(clippy::too_many_arguments)]
fn report(
    case_seed: u64,
    g: &CsrGraph,
    algorithm: &'static str,
    kernel: Option<Kernel>,
    threads: Option<usize>,
    strategy: Option<ExecutionStrategy>,
    scheduler: Option<SchedulerKind>,
    eps: f64,
    mu: usize,
    got: &Clustering,
    cfg: &StressConfig,
    run: &dyn Fn(&CsrGraph) -> Clustering,
) -> Box<FailingCase> {
    let p = ScanParams::new(eps, mu);
    let detail = verify::check_clustering(g, p, got)
        .err()
        .unwrap_or_else(|| "clustering differs from reference".into());

    let edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
    let mut budget = cfg.shrink_budget;
    let fails = |edges: &[(VertexId, VertexId)]| {
        let g = from_edges(edges);
        let reference = verify::reference_clustering(&g, p);
        (0..cfg.repeats.max(1)).any(|_| run(&g) != reference)
    };
    let edges = shrink_edges(edges, &mut budget, &fails);
    let edges = shrink_vertices(edges, &mut budget, &fails);

    let case = Box::new(FailingCase {
        case_seed,
        algorithm,
        kernel,
        threads,
        strategy,
        scheduler,
        eps,
        mu,
        edges,
        detail,
    });
    if let Some(dir) = &cfg.corpus_dir {
        persist_case(dir, &case);
    }
    case
}

/// Writes one shrunk failure into the corpus directory. Best-effort:
/// persistence failing must not mask the differential failure itself.
fn persist_case(dir: &Path, case: &FailingCase) {
    let path = dir.join(case.corpus_file_name());
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, case.to_json().to_pretty_string())
    };
    match write() {
        Ok(()) => eprintln!("stress: failing case persisted to {}", path.display()),
        Err(e) => eprintln!("stress: could not persist {}: {e}", path.display()),
    }
}

/// ddmin-style greedy edge minimization: repeatedly drop chunks of edges
/// (halving the chunk size down to single edges) while the failure still
/// reproduces, within `budget` predicate evaluations. The result is
/// 1-minimal w.r.t. the chunks tried, not globally minimal — good enough
/// to turn a 500-edge reproduction into a screenful.
fn shrink_edges(
    mut edges: Vec<(VertexId, VertexId)>,
    budget: &mut usize,
    fails: FailsFn<'_>,
) -> Vec<(VertexId, VertexId)> {
    let mut chunk = (edges.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < edges.len() && *budget > 0 {
            let mut candidate = edges.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            *budget -= 1;
            if !candidate.is_empty() && fails(&candidate) {
                edges = candidate;
            } else {
                i = end;
            }
        }
        if chunk == 1 || *budget == 0 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    edges
}

/// Induces the subgraph on `kept` (sorted) and remaps surviving vertex
/// ids to the dense range `0..kept.len()`, order-preserving. Edges with
/// either endpoint outside `kept` are dropped.
fn induce_and_remap(
    edges: &[(VertexId, VertexId)],
    kept: &[VertexId],
) -> Vec<(VertexId, VertexId)> {
    edges
        .iter()
        .filter_map(|&(u, v)| {
            let nu = kept.binary_search(&u).ok()?;
            let nv = kept.binary_search(&v).ok()?;
            Some((nu as VertexId, nv as VertexId))
        })
        .collect()
}

/// Vertex-subset minimization, composed after [`shrink_edges`]: drops
/// chunks of *vertices* (removing every incident edge) and remaps the
/// survivors to dense ids `0..k`, while the failure still reproduces on
/// the remapped graph. Edge-level ddmin cannot shed high-id spectator
/// vertices that keep the CSR arrays large — a failure on vertices
/// `{98, 99}` still replays as a 100-vertex graph; this pass renames it
/// to a 2-vertex one. The predicate always sees the remapped edge list,
/// so acceptance means the failure survives the renaming too.
fn shrink_vertices(
    mut edges: Vec<(VertexId, VertexId)>,
    budget: &mut usize,
    fails: FailsFn<'_>,
) -> Vec<(VertexId, VertexId)> {
    let distinct = |edges: &[(VertexId, VertexId)]| {
        let mut vs: Vec<VertexId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    };
    let mut vertices = distinct(&edges);
    let mut chunk = (vertices.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < vertices.len() && *budget > 0 {
            let end = (i + chunk).min(vertices.len());
            let kept: Vec<VertexId> = vertices[..i]
                .iter()
                .chain(&vertices[end..])
                .copied()
                .collect();
            let candidate = induce_and_remap(&edges, &kept);
            *budget -= 1;
            if !candidate.is_empty() && fails(&candidate) {
                // Chunk dropped; ids are dense again, so recompute the
                // vertex list and rescan from the same position.
                edges = candidate;
                vertices = distinct(&edges);
            } else {
                i = end;
            }
        }
        if chunk == 1 || *budget == 0 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_graphs_are_deterministic() {
        for seed in [0u64, 1, 0xd1ab_0000] {
            assert_eq!(case_graph(seed), case_graph(seed));
        }
    }

    #[test]
    fn shrinker_minimizes_against_a_simple_predicate() {
        // Predicate: fails whenever edge (2, 3) is present. The shrinker
        // must reduce any superset to exactly that edge.
        let edges: Vec<(VertexId, VertexId)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)];
        let fails = |e: &[(VertexId, VertexId)]| e.contains(&(2, 3));
        let mut budget = 100;
        let shrunk = shrink_edges(edges, &mut budget, &fails);
        assert_eq!(shrunk, vec![(2, 3)]);
    }

    #[test]
    fn shrinker_respects_budget() {
        let edges: Vec<(VertexId, VertexId)> = (0..100).map(|i| (i, i + 1)).collect();
        let mut budget = 3;
        let _ = shrink_edges(edges, &mut budget, &|_| true);
        assert_eq!(budget, 0);
    }

    #[test]
    fn vertex_shrinker_drops_spectators_and_remaps_dense() {
        // Predicate: fails whenever the graph contains a triangle. The
        // triangle lives on high ids 10-20-30; the tail 0-1-2 and the
        // id gaps must both disappear, leaving the triangle renamed to
        // dense vertices {0, 1, 2}.
        let has_triangle = |e: &[(VertexId, VertexId)]| {
            let adj = |a: VertexId, b: VertexId| e.contains(&(a, b)) || e.contains(&(b, a));
            let mut vs: Vec<VertexId> = e.iter().flat_map(|&(u, v)| [u, v]).collect();
            vs.sort_unstable();
            vs.dedup();
            vs.iter().enumerate().any(|(i, &a)| {
                vs[i + 1..].iter().enumerate().any(|(j, &b)| {
                    adj(a, b) && vs[i + j + 2..].iter().any(|&c| adj(b, c) && adj(a, c))
                })
            })
        };
        let edges: Vec<(VertexId, VertexId)> = vec![(0, 1), (1, 2), (10, 20), (20, 30), (10, 30)];
        assert!(has_triangle(&edges));
        let mut budget = 200;
        let shrunk = shrink_vertices(edges, &mut budget, &has_triangle);
        assert_eq!(shrunk, vec![(0, 1), (1, 2), (0, 2)]);
    }

    #[test]
    fn vertex_shrinker_respects_budget() {
        let edges: Vec<(VertexId, VertexId)> = (0..50).map(|i| (i, i + 1)).collect();
        let mut budget = 4;
        let _ = shrink_vertices(edges, &mut budget, &|_| true);
        assert_eq!(budget, 0);
    }

    /// The race-detection axis on a clean sweep: real `Parallel` and
    /// adversarial runs of the real pipeline inside a detection session
    /// must produce zero races (the scheduler's fork/join edges order
    /// every cross-task access the pipeline actually makes), and the
    /// sweep's report must carry the (empty) race array plus a per-seed
    /// race count.
    #[test]
    fn race_axis_sweep_is_clean() {
        let cfg = StressConfig {
            cases: 1,
            thread_counts: vec![2],
            strategies: vec![
                ExecutionStrategy::Parallel,
                ExecutionStrategy::AdversarialSeeded { seed: 0xbeef },
            ],
            schedulers: vec![SchedulerKind::WorkStealing, SchedulerKind::SharedQueue],
            kernels: vec![Kernel::MergeEarly],
            params: vec![(0.5, 2)],
            check_baselines: false,
            corpus_dir: None,
            race_detection: true,
            ..StressConfig::default()
        };
        let (result, report) = run_stress_report(&cfg);
        result.expect("clean sweep");
        assert!(
            report.races.is_empty(),
            "pipeline sweep reported races: {:?}",
            report.races
        );
        let extra = |k: &str| report.extra.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(extra("race_detection").unwrap().as_bool(), Some(true));
        let seeds = extra("seeds").unwrap().as_arr().unwrap();
        assert_eq!(seeds[0].get("races").unwrap().as_u64(), Some(0));
    }

    fn sample_case() -> FailingCase {
        FailingCase {
            case_seed: 0xd1ab_0003,
            algorithm: "ppscan",
            kernel: Some(Kernel::MergeEarly),
            threads: Some(4),
            strategy: Some(ExecutionStrategy::AdversarialSeeded { seed: 7 }),
            scheduler: Some(SchedulerKind::WorkStealing),
            eps: 0.5,
            mu: 3,
            edges: vec![(0, 1), (1, 2)],
            detail: "role mismatch at vertex 0".into(),
        }
    }

    /// Tiny sweep configuration so tests stay fast; no corpus writes.
    fn tiny_config() -> StressConfig {
        StressConfig {
            cases: 2,
            thread_counts: vec![2],
            strategies: vec![ExecutionStrategy::SequentialDeterministic],
            kernels: vec![Kernel::MergeEarly],
            params: vec![(0.5, 2)],
            check_baselines: false,
            corpus_dir: None,
            ..StressConfig::default()
        }
    }

    #[test]
    fn failing_case_json_roundtrip() {
        let case = sample_case();
        let text = case.to_json().to_pretty_string();
        let back = FailingCase::from_json(&ppscan_obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.case_seed, case.case_seed);
        assert_eq!(back.algorithm, case.algorithm);
        assert_eq!(back.kernel, case.kernel);
        assert_eq!(back.threads, case.threads);
        assert_eq!(back.strategy, case.strategy);
        assert_eq!(back.eps, case.eps);
        assert_eq!(back.mu, case.mu);
        assert_eq!(back.edges, case.edges);
        assert_eq!(back.detail, case.detail);
    }

    #[test]
    fn failing_case_roundtrips_every_kernel() {
        // The sweep's kernel axis now includes the hash/shuffling/
        // autotuned kernels: record/replay must survive each of them
        // (serialized by name, parsed back, and emitted replayably in
        // the generated regression body).
        for kernel in Kernel::ALL {
            let case = FailingCase {
                kernel: Some(kernel),
                ..sample_case()
            };
            let back = FailingCase::from_json(&case.to_json()).unwrap();
            assert_eq!(back.kernel, Some(kernel), "{kernel}");
            assert!(
                case.regression_test_body()
                    .contains(&format!("Kernel::{kernel:?}")),
                "{kernel} missing from regression body"
            );
        }
    }

    #[test]
    fn sequential_baseline_case_roundtrips_without_optionals() {
        let case = FailingCase {
            kernel: None,
            threads: None,
            strategy: None,
            algorithm: "pscan",
            ..sample_case()
        };
        let back = FailingCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back.kernel, None);
        assert_eq!(back.threads, None);
        assert_eq!(back.strategy, None);
        assert_eq!(back.algorithm, "pscan");
    }

    #[test]
    fn from_json_rejects_unknown_algorithm() {
        let mut json = sample_case().to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "algorithm" {
                    *v = Json::Str("quickscan".into());
                }
            }
        }
        assert!(FailingCase::from_json(&json).is_none());
    }

    #[test]
    fn healthy_case_does_not_reproduce() {
        // A correct configuration on a well-formed graph is not a failure:
        // `reproduces` must come back false, so replaying a corpus entry
        // for a since-fixed bug reads as clean.
        let case = FailingCase {
            edges: gen::complete(5).undirected_edges().collect(),
            strategy: Some(ExecutionStrategy::SequentialDeterministic),
            ..sample_case()
        };
        assert!(!case.reproduces(2));
    }

    #[test]
    fn corpus_files_roundtrip_through_replay() {
        // Persist a (healthy) case, then replay the directory: the entry
        // must load and report itself as no-longer-failing.
        let dir = default_corpus_dir()
            .parent()
            .unwrap()
            .join("stress-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let case = FailingCase {
            edges: gen::complete(4).undirected_edges().collect(),
            strategy: Some(ExecutionStrategy::SequentialDeterministic),
            ..sample_case()
        };
        persist_case(&dir, &case);
        let replayed = replay_corpus(&dir, 2).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].0.case_seed, case.case_seed);
        assert!(!replayed[0].1, "healthy case must not reproduce");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_corpus_is_clean() {
        // The real corpus directory: anything a previous stress run left
        // behind must no longer reproduce. An empty/missing directory is
        // trivially clean.
        let replayed = replay_corpus(&default_corpus_dir(), 3).unwrap();
        let failing: Vec<_> = replayed
            .iter()
            .filter(|(_, still)| *still)
            .map(|(c, _)| c.to_string())
            .collect();
        assert!(
            failing.is_empty(),
            "stress corpus contains still-failing cases:\n{}",
            failing.join("\n")
        );
    }

    #[test]
    fn stress_report_logs_every_seed() {
        let cfg = tiny_config();
        let (result, report) = run_stress_report(&cfg);
        let stats = result.expect("tiny sweep must be green");
        assert_eq!(stats.cases, cfg.cases);
        assert_eq!(report.algorithm, "stress");
        assert!(report.wall_nanos > 0);
        let extra = |k: &str| report.extra.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let seeds = extra("seeds").unwrap().as_arr().unwrap();
        assert_eq!(seeds.len(), cfg.cases as usize);
        for (i, entry) in seeds.iter().enumerate() {
            assert_eq!(
                entry.get("seed").unwrap().as_u64().unwrap(),
                cfg.master_seed + i as u64
            );
            assert_eq!(entry.get("status").unwrap().as_str().unwrap(), "ok");
            assert!(entry.get("configs_checked").unwrap().as_u64().unwrap() > 0);
        }
        assert_eq!(
            extra("configs_checked").unwrap().as_u64().unwrap(),
            stats.configs_checked
        );
        // The report round-trips like any other.
        let parsed = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn failing_case_banner_is_replayable() {
        let case = FailingCase {
            case_seed: 0xd1ab_0003,
            algorithm: "ppscan",
            kernel: Some(Kernel::MergeEarly),
            threads: Some(4),
            strategy: Some(ExecutionStrategy::AdversarialSeeded { seed: 7 }),
            scheduler: Some(SchedulerKind::WorkStealing),
            eps: 0.5,
            mu: 3,
            edges: vec![(0, 1)],
            detail: "role mismatch at vertex 0".into(),
        };
        let banner = case.to_string();
        assert!(banner.contains("case_seed=0xd1ab0003"), "{banner}");
        assert!(banner.contains("strategy=adversarial(7)"), "{banner}");
        assert!(banner.contains("replay_case(0xd1ab0003"), "{banner}");
    }

    #[test]
    fn regression_test_body_is_pasteable() {
        let case = sample_case();
        let body = case.regression_test_body();
        assert!(body.contains("#[test]"), "{body}");
        assert!(
            body.contains("fn regression_case_00000000d1ab0003_ppscan()"),
            "{body}"
        );
        assert!(body.contains("case_seed: 0xd1ab0003"), "{body}");
        assert!(
            body.contains("kernel: Some(ppscan_intersect::Kernel::MergeEarly)"),
            "{body}"
        );
        assert!(
            body.contains(
                "strategy: Some(ppscan_sched::ExecutionStrategy::AdversarialSeeded { seed: 7 })"
            ),
            "{body}"
        );
        assert!(body.contains("edges: vec![(0, 1), (1, 2)]"), "{body}");
        assert!(body.contains("!case.reproduces(5)"), "{body}");
        // The snippet travels with the failure banner and the corpus
        // entry, so it is at hand wherever the failure is first seen.
        assert!(case.to_string().contains("ready-to-paste regression test:"));
        assert!(case.to_string().contains("#[test]"));
        let json = case.to_json();
        assert!(json
            .get("regression_test")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("#[test]"));
        // The informational field does not disturb the roundtrip.
        assert!(FailingCase::from_json(&json).is_some());
    }

    #[test]
    fn regression_test_body_handles_sequential_baselines() {
        // Baseline failures carry no kernel/threads/strategy; the
        // emitted literal must still be valid Rust.
        let case = FailingCase {
            kernel: None,
            threads: None,
            strategy: None,
            algorithm: "pscan",
            ..sample_case()
        };
        let body = case.regression_test_body();
        assert!(body.contains("kernel: None,"), "{body}");
        assert!(body.contains("threads: None,"), "{body}");
        assert!(body.contains("strategy: None,"), "{body}");
        assert!(
            body.contains("fn regression_case_00000000d1ab0003_pscan()"),
            "{body}"
        );
    }
}
