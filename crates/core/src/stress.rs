//! Differential stress driver: sweeps algorithm × kernel × thread count ×
//! schedule strategy × (ε, µ) over seeded random graphs, validating every
//! result against the from-first-principles reference (`verify`). On a
//! mismatch it **shrinks** the failing graph to a (locally) minimal edge
//! list and reports a replayable case — schedule bugs become one-command
//! reproductions instead of once-in-a-hundred CI flakes.
//!
//! # Replaying a failure
//!
//! A failure prints a banner like
//!
//! ```text
//! stress failure: case_seed=0xd1ab0003 algorithm=ppscan kernel=merge-early
//! threads=4 strategy=adversarial(3735928559) eps=0.5 mu=3
//! shrunk graph (7 vertices): [(0, 1), (0, 2), ...]
//! replay: ppscan_core::stress::replay_case(0xd1ab0003, &config)
//! ```
//!
//! and the shrunk edge list is embedded in the [`FailingCase`], so the
//! exact graph is available even without the generator. `replay_case`
//! re-runs every configuration of one case under the same `StressConfig`;
//! the failing configuration is fully pinned by the banner fields.

use crate::params::ScanParams;
use crate::ppscan::{ppscan, PpScanConfig};
use crate::result::Clustering;
use crate::verify;
use ppscan_graph::builder::from_edges;
use ppscan_graph::rng::SplitMix64;
use ppscan_graph::{gen, CsrGraph, VertexId};
use ppscan_intersect::Kernel;
use ppscan_sched::ExecutionStrategy;

/// A boxed algorithm runner used by the baseline differential checks.
type RunFn = Box<dyn Fn(&CsrGraph) -> Clustering>;
/// Edge-list failure predicate used by the shrinker.
type FailsFn<'a> = &'a dyn Fn(&[(VertexId, VertexId)]) -> bool;

/// What the stress driver sweeps. The defaults satisfy the harness's
/// acceptance envelope: 3 thread counts × all 3 strategies × 2 kernels.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Base seed; case `i` uses `master_seed + i`.
    pub master_seed: u64,
    /// Number of random graphs to sweep.
    pub cases: u64,
    /// Thread counts for the parallel algorithms.
    pub thread_counts: Vec<usize>,
    /// Schedule strategies for ppSCAN.
    pub strategies: Vec<ExecutionStrategy>,
    /// `CompSim` kernels for ppSCAN.
    pub kernels: Vec<Kernel>,
    /// (ε, µ) grid.
    pub params: Vec<(f64, usize)>,
    /// Also differential-test the sequential baselines (SCAN, pSCAN,
    /// SCAN++) and the parallel non-ppSCAN baselines per case.
    pub check_baselines: bool,
    /// Scheduler degree threshold — deliberately tiny so every few
    /// vertices form a task and the schedule space is rich.
    pub degree_threshold: u64,
    /// Reruns per configuration when probing a schedule-dependent
    /// failure during shrinking (a racy mismatch may need several
    /// attempts to re-manifest).
    pub repeats: usize,
    /// Maximum predicate evaluations the shrinker may spend.
    pub shrink_budget: usize,
}

impl Default for StressConfig {
    fn default() -> Self {
        Self {
            master_seed: 0xd1ab_0000,
            cases: 6,
            thread_counts: vec![1, 2, 4],
            strategies: vec![
                ExecutionStrategy::Parallel,
                ExecutionStrategy::SequentialDeterministic,
                ExecutionStrategy::AdversarialSeeded { seed: 0xdead_beef },
            ],
            kernels: vec![Kernel::MergeEarly, Kernel::auto()],
            params: vec![(0.3, 2), (0.5, 3), (0.8, 4)],
            check_baselines: true,
            degree_threshold: 8,
            repeats: 3,
            shrink_budget: 120,
        }
    }
}

/// A reproduced-and-shrunk differential failure.
#[derive(Clone, Debug)]
pub struct FailingCase {
    /// Seed regenerating the original (pre-shrink) graph via
    /// [`case_graph`].
    pub case_seed: u64,
    /// Which algorithm diverged from the reference.
    pub algorithm: &'static str,
    /// ppSCAN kernel (ppSCAN failures only).
    pub kernel: Option<Kernel>,
    /// Thread count (parallel algorithms only).
    pub threads: Option<usize>,
    /// Schedule strategy (ppSCAN failures only).
    pub strategy: Option<ExecutionStrategy>,
    /// Failing ε.
    pub eps: f64,
    /// Failing µ.
    pub mu: usize,
    /// Shrunk failing graph as an undirected edge list.
    pub edges: Vec<(VertexId, VertexId)>,
    /// First divergence detail from the verifier.
    pub detail: String,
}

impl std::fmt::Display for FailingCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stress failure: case_seed={:#x} algorithm={}",
            self.case_seed, self.algorithm
        )?;
        if let Some(k) = self.kernel {
            write!(f, " kernel={k}")?;
        }
        if let Some(t) = self.threads {
            write!(f, " threads={t}")?;
        }
        if let Some(s) = self.strategy {
            write!(f, " strategy={s}")?;
        }
        writeln!(f, " eps={} mu={}", self.eps, self.mu)?;
        writeln!(f, "shrunk graph: {:?}", self.edges)?;
        writeln!(f, "detail: {}", self.detail)?;
        write!(
            f,
            "replay: ppscan_core::stress::replay_case({:#x}, &config)",
            self.case_seed
        )
    }
}

/// Aggregate statistics of a green sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct StressStats {
    /// Graphs swept.
    pub cases: u64,
    /// Individual (algorithm, kernel, threads, strategy, ε, µ) runs
    /// compared against the reference.
    pub configs_checked: u64,
}

/// Deterministically generates case `case_seed`'s graph: a seeded pick
/// among Erdős–Rényi, ROLL scale-free and planted-partition families,
/// sized small enough that the naive reference stays fast but large
/// enough that consolidation has real work.
pub fn case_graph(case_seed: u64) -> CsrGraph {
    let mut rng = SplitMix64::seed_from_u64(case_seed);
    match rng.gen_index(3) {
        0 => {
            let n = rng.gen_range(12..60);
            let m = n * rng.gen_range(1..5);
            gen::erdos_renyi(n, m, rng.next_u64())
        }
        1 => {
            let n = rng.gen_range(40..120);
            let d = 4 + 2 * rng.gen_index(4);
            gen::roll(n, d, rng.next_u64())
        }
        _ => {
            let blocks = rng.gen_range(2..5);
            let size = rng.gen_range(8..20);
            let p_in = 0.45 + 0.3 * rng.gen_f64();
            gen::planted_partition(blocks, size, p_in, 0.05, rng.next_u64())
        }
    }
}

/// Runs the full sweep. `Ok` carries coverage statistics; `Err` carries
/// the first failing configuration, already shrunk and replayable.
pub fn run_stress(cfg: &StressConfig) -> Result<StressStats, Box<FailingCase>> {
    let mut stats = StressStats::default();
    for i in 0..cfg.cases {
        stats.configs_checked += replay_case(cfg.master_seed.wrapping_add(i), cfg)?;
        stats.cases += 1;
    }
    Ok(stats)
}

/// Re-runs every configuration of one case (the unit a failure banner
/// points back at). Returns the number of configurations checked.
pub fn replay_case(case_seed: u64, cfg: &StressConfig) -> Result<u64, Box<FailingCase>> {
    let g = case_graph(case_seed);
    let mut checked = 0u64;
    for &(eps, mu) in &cfg.params {
        let p = ScanParams::new(eps, mu);
        let reference = verify::reference_clustering(&g, p);

        if cfg.check_baselines {
            checked += check_baselines(case_seed, &g, p, &reference, cfg)?;
        }

        for &kernel in &cfg.kernels {
            if !kernel.available() {
                continue;
            }
            for &threads in &cfg.thread_counts {
                for &strategy in &cfg.strategies {
                    checked += 1;
                    let run_cfg = PpScanConfig::with_threads(threads)
                        .kernel(kernel)
                        .strategy(strategy)
                        .degree_threshold(cfg.degree_threshold);
                    let got = ppscan(&g, p, &run_cfg).clustering;
                    if got != reference {
                        return Err(report(
                            case_seed,
                            &g,
                            "ppscan",
                            Some(kernel),
                            Some(threads),
                            Some(strategy),
                            eps,
                            mu,
                            &got,
                            cfg,
                            &|g| ppscan(g, p, &run_cfg).clustering,
                        ));
                    }
                }
            }
        }
    }
    Ok(checked)
}

/// Differential checks of the non-ppSCAN implementations for one
/// parameter point.
fn check_baselines(
    case_seed: u64,
    g: &CsrGraph,
    p: ScanParams,
    reference: &Clustering,
    cfg: &StressConfig,
) -> Result<u64, Box<FailingCase>> {
    let threads = cfg.thread_counts.last().copied().unwrap_or(2);
    let runs: [(&'static str, Option<usize>, RunFn); 5] = [
        (
            "scan",
            None,
            Box::new(move |g| crate::scan::scan(g, p).clustering),
        ),
        (
            "pscan",
            None,
            Box::new(move |g| crate::pscan::pscan(g, p).clustering),
        ),
        (
            "scanpp",
            None,
            Box::new(move |g| crate::scanpp::scanpp(g, p)),
        ),
        (
            "scanxp",
            Some(threads),
            Box::new(move |g| crate::scanxp::scanxp(g, p, threads)),
        ),
        (
            "anyscan",
            Some(threads),
            Box::new(move |g| crate::anyscan::anyscan(g, p, threads)),
        ),
    ];
    for (name, t, run) in &runs {
        let got = run(g);
        if got != *reference {
            return Err(report(
                case_seed,
                g,
                name,
                None,
                *t,
                None,
                p.epsilon.as_f64(),
                p.mu,
                &got,
                cfg,
                run.as_ref(),
            ));
        }
    }
    Ok(runs.len() as u64)
}

/// Builds the failure report: shrinks the graph under the failing
/// configuration, then packages the banner fields.
#[allow(clippy::too_many_arguments)]
fn report(
    case_seed: u64,
    g: &CsrGraph,
    algorithm: &'static str,
    kernel: Option<Kernel>,
    threads: Option<usize>,
    strategy: Option<ExecutionStrategy>,
    eps: f64,
    mu: usize,
    got: &Clustering,
    cfg: &StressConfig,
    run: &dyn Fn(&CsrGraph) -> Clustering,
) -> Box<FailingCase> {
    let p = ScanParams::new(eps, mu);
    let detail = verify::check_clustering(g, p, got)
        .err()
        .unwrap_or_else(|| "clustering differs from reference".into());

    let edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
    let mut budget = cfg.shrink_budget;
    let fails = |edges: &[(VertexId, VertexId)]| {
        let g = from_edges(edges);
        let reference = verify::reference_clustering(&g, p);
        (0..cfg.repeats.max(1)).any(|_| run(&g) != reference)
    };
    let edges = shrink_edges(edges, &mut budget, &fails);

    Box::new(FailingCase {
        case_seed,
        algorithm,
        kernel,
        threads,
        strategy,
        eps,
        mu,
        edges,
        detail,
    })
}

/// ddmin-style greedy edge minimization: repeatedly drop chunks of edges
/// (halving the chunk size down to single edges) while the failure still
/// reproduces, within `budget` predicate evaluations. The result is
/// 1-minimal w.r.t. the chunks tried, not globally minimal — good enough
/// to turn a 500-edge reproduction into a screenful.
fn shrink_edges(
    mut edges: Vec<(VertexId, VertexId)>,
    budget: &mut usize,
    fails: FailsFn<'_>,
) -> Vec<(VertexId, VertexId)> {
    let mut chunk = (edges.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < edges.len() && *budget > 0 {
            let mut candidate = edges.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            *budget -= 1;
            if !candidate.is_empty() && fails(&candidate) {
                edges = candidate;
            } else {
                i = end;
            }
        }
        if chunk == 1 || *budget == 0 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_graphs_are_deterministic() {
        for seed in [0u64, 1, 0xd1ab_0000] {
            assert_eq!(case_graph(seed), case_graph(seed));
        }
    }

    #[test]
    fn shrinker_minimizes_against_a_simple_predicate() {
        // Predicate: fails whenever edge (2, 3) is present. The shrinker
        // must reduce any superset to exactly that edge.
        let edges: Vec<(VertexId, VertexId)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)];
        let fails = |e: &[(VertexId, VertexId)]| e.contains(&(2, 3));
        let mut budget = 100;
        let shrunk = shrink_edges(edges, &mut budget, &fails);
        assert_eq!(shrunk, vec![(2, 3)]);
    }

    #[test]
    fn shrinker_respects_budget() {
        let edges: Vec<(VertexId, VertexId)> = (0..100).map(|i| (i, i + 1)).collect();
        let mut budget = 3;
        let _ = shrink_edges(edges, &mut budget, &|_| true);
        assert_eq!(budget, 0);
    }

    #[test]
    fn failing_case_banner_is_replayable() {
        let case = FailingCase {
            case_seed: 0xd1ab_0003,
            algorithm: "ppscan",
            kernel: Some(Kernel::MergeEarly),
            threads: Some(4),
            strategy: Some(ExecutionStrategy::AdversarialSeeded { seed: 7 }),
            eps: 0.5,
            mu: 3,
            edges: vec![(0, 1)],
            detail: "role mismatch at vertex 0".into(),
        };
        let banner = case.to_string();
        assert!(banner.contains("case_seed=0xd1ab0003"), "{banner}");
        assert!(banner.contains("strategy=adversarial(7)"), "{banner}");
        assert!(banner.contains("replay_case(0xd1ab0003"), "{banner}");
    }
}
