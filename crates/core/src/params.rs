//! SCAN input parameters (paper problem statement): the similarity
//! threshold `0 < ε ≤ 1` and the core threshold `µ ≥ 1`.

use ppscan_intersect::EpsilonThreshold;

/// The `(ε, µ)` parameter pair every SCAN-family algorithm takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanParams {
    /// Exact-arithmetic similarity threshold ε.
    pub epsilon: EpsilonThreshold,
    /// Core threshold µ: a vertex is a core iff it has at least µ similar
    /// proper neighbors, i.e. `|N_ε(u)| ≥ µ + 1` (Definition 2.4).
    pub mu: usize,
}

impl ScanParams {
    /// Creates parameters from a float ε and integer µ.
    ///
    /// # Panics
    /// Panics if `eps ∉ (0, 1]` or `mu == 0`.
    pub fn new(eps: f64, mu: usize) -> Self {
        assert!(mu >= 1, "mu must be at least 1");
        Self {
            epsilon: EpsilonThreshold::new(eps),
            mu,
        }
    }

    /// The similarity threshold `min_cn` for an edge between degrees
    /// `d_u`, `d_v` (delegates to [`EpsilonThreshold::min_cn`]).
    #[inline]
    pub fn min_cn(&self, d_u: usize, d_v: usize) -> u64 {
        self.epsilon.min_cn(d_u, d_v)
    }

    /// Display string like `eps=0.60 mu=5`.
    pub fn label(&self) -> String {
        format!("eps={:.2} mu={}", self.epsilon.as_f64(), self.mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_label() {
        let p = ScanParams::new(0.6, 5);
        assert_eq!(p.mu, 5);
        assert_eq!(p.label(), "eps=0.60 mu=5");
        assert_eq!(p.min_cn(4, 4), 3);
    }

    #[test]
    #[should_panic(expected = "mu must be at least 1")]
    fn rejects_mu_zero() {
        ScanParams::new(0.5, 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        ScanParams::new(1.5, 2);
    }
}
