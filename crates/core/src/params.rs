//! SCAN input parameters (paper problem statement): the similarity
//! threshold `0 < ε ≤ 1` and the core threshold `µ ≥ 1`.

use ppscan_intersect::EpsilonThreshold;

/// The `(ε, µ)` parameter pair every SCAN-family algorithm takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanParams {
    /// Exact-arithmetic similarity threshold ε.
    pub epsilon: EpsilonThreshold,
    /// Core threshold µ: a vertex is a core iff it has at least µ similar
    /// proper neighbors, i.e. `|N_ε(u)| ≥ µ + 1` (Definition 2.4).
    pub mu: usize,
}

impl ScanParams {
    /// Creates parameters from a float ε and integer µ.
    ///
    /// # Panics
    /// Panics if `eps ∉ (0, 1]` or `mu == 0`.
    pub fn new(eps: f64, mu: usize) -> Self {
        assert!(mu >= 1, "mu must be at least 1");
        Self {
            epsilon: EpsilonThreshold::new(eps),
            mu,
        }
    }

    /// Validating constructor for untrusted input (the serving path):
    /// returns a description of the violated constraint instead of
    /// panicking, so one malformed client request cannot take down a
    /// long-lived server.
    pub fn checked(eps: f64, mu: usize) -> Result<Self, String> {
        if !(eps.is_finite() && eps > 0.0 && eps <= 1.0) {
            return Err(format!("epsilon must be in (0, 1], got {eps}"));
        }
        if mu == 0 {
            return Err("mu must be at least 1".into());
        }
        Ok(Self::new(eps, mu))
    }

    /// The similarity threshold `min_cn` for an edge between degrees
    /// `d_u`, `d_v` (delegates to [`EpsilonThreshold::min_cn`]).
    #[inline]
    pub fn min_cn(&self, d_u: usize, d_v: usize) -> u64 {
        self.epsilon.min_cn(d_u, d_v)
    }

    /// Display string like `eps=0.60 mu=5`.
    pub fn label(&self) -> String {
        format!("eps={:.2} mu={}", self.epsilon.as_f64(), self.mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_label() {
        let p = ScanParams::new(0.6, 5);
        assert_eq!(p.mu, 5);
        assert_eq!(p.label(), "eps=0.60 mu=5");
        assert_eq!(p.min_cn(4, 4), 3);
    }

    #[test]
    #[should_panic(expected = "mu must be at least 1")]
    fn rejects_mu_zero() {
        ScanParams::new(0.5, 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        ScanParams::new(1.5, 2);
    }

    #[test]
    fn checked_accepts_valid_and_rejects_invalid() {
        let p = ScanParams::checked(1.0, 1).unwrap();
        assert_eq!(p.mu, 1);
        assert_eq!(p, ScanParams::new(1.0, 1));
        for (eps, mu) in [
            (0.0, 2),
            (-0.5, 2),
            (1.5, 2),
            (f64::NAN, 2),
            (f64::INFINITY, 2),
            (0.5, 0),
        ] {
            assert!(
                ScanParams::checked(eps, mu).is_err(),
                "eps={eps} mu={mu} must be rejected"
            );
        }
        // `checked` never panics where `new` would.
        assert!(ScanParams::checked(f64::NAN, 0).is_err());
    }
}
