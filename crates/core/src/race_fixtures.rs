//! Traced protocol fixtures for the FastTrack race detector: small
//! workloads on the *traced* substrate ([`TracedAtomicU32`] + shadow
//! payloads) that mirror the access disciplines of the pipeline's
//! protocols, each in a correct and an intentionally broken variant.
//!
//! These are the real-execution counterparts of the `ppscan-check`
//! seeded-bug scenarios: where the model checker proves a bug reachable
//! by exhausting interleavings of a model, these fixtures demonstrate
//! the detector flags the same discipline violations on *actual* runs —
//! real threads under [`ExecutionStrategy::Parallel`], or the caller
//! thread under `Modeled` where the detector's logical-task-slot design
//! makes the dispatch contract (sibling tasks are unordered) checkable
//! even on a physically sequential execution.
//!
//! Detection granularity differs by bug shape, and the fixtures are
//! honest about it:
//!
//! * [`claim_fixture`] (the PR-3 check-then-store union discipline) and
//!   [`publish_fixture`] (the settle-skip / publish-without-acquire
//!   discipline) race *between sibling tasks of one dispatch* — the
//!   detector flags them on every run, under `Parallel` and `Modeled`
//!   alike, because the missing edge is missing from the recorded
//!   happens-before relation regardless of physical timing.
//! * [`snapshot_fixture`] (the serving path's snapshot cell with its
//!   epoch bump moved before the pointer swap) races *inside* the
//!   pin/publish window. A serial trace genuinely orders the accesses
//!   (the reclaim scan's acquire of the reader's slot store is a real
//!   edge on that trace), so `Modeled` runs are clean by construction;
//!   the race manifests — and is flagged — only under real `Parallel`
//!   interleaving, within a bounded retry budget. The matching
//!   `ppscan-check` scenario (`seeded-epoch-bump-elision`) covers the
//!   same bug exhaustively on the model side.

use ppscan_obs::race::{DetectionSession, RaceReport, ShadowCell};
use ppscan_sched::{ExecutionStrategy, WorkerPool};
use ppscan_unionfind::substrate::AtomicCellU32;
use ppscan_unionfind::TracedAtomicU32;
use std::sync::atomic::Ordering;

/// Runs `body`'s two closures as sibling tasks of one pool dispatch
/// under `strategy`, inside a fresh detection session; returns the
/// detected races.
fn run_pair(
    strategy: ExecutionStrategy,
    a: impl Fn() + Sync,
    b: impl Fn() + Sync,
) -> Vec<RaceReport> {
    let session = DetectionSession::begin();
    let pool = WorkerPool::with_strategy(2, strategy);
    pool.run_chunks(&[0..1, 1..2], |r| {
        if r.start == 0 {
            a();
        } else {
            b();
        }
    });
    session.finish()
}

/// The check-then-store claim discipline (PR 3's seeded union bug,
/// reshaped onto a shadow payload): two tasks contend to claim a slot;
/// the winner installs a payload and the loser consumes it.
///
/// * `buggy = false`: the claim is decided by an `AcqRel`
///   compare-exchange and the winner re-publishes the claim word with a
///   `DONE` bit (release) after installing; the loser consumes only
///   after acquiring `DONE`, which carries the install's happens-before
///   edge. Clean under every interleaving. (Acquiring the failed CAS
///   alone would *not* suffice — the install happens after the winning
///   CAS's release, which is exactly the kind of subtle gap the
///   detector exists to catch.)
/// * `buggy = true`: the claim is a `Relaxed` load + `Relaxed` store —
///   the re-check and the installation are separate operations, exactly
///   what the `Relaxed` root re-check in `find_root` would license if
///   the CAS's atomic re-read were removed. Whichever way the tasks
///   interleave, an unordered payload access pair executes (two writes
///   when both claims succeed, a write and an unsynchronized read
///   otherwise), so the detector flags every run.
pub fn claim_fixture(strategy: ExecutionStrategy, buggy: bool) -> Vec<RaceReport> {
    const DONE: u32 = 0x100;
    let claim: TracedAtomicU32 = AtomicCellU32::new(0);
    let payload: ShadowCell<u32> = ShadowCell::new("claim-payload", 0);
    let task = |me: u32| {
        if buggy {
            if claim.load(Ordering::Relaxed) == 0 {
                claim.store(me, Ordering::Relaxed);
                payload.set(me, "claim_fixture::install");
            } else {
                let _ = payload.get("claim_fixture::consume");
            }
        } else if claim
            .compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            payload.set(me, "claim_fixture::install");
            claim.store(me | DONE, Ordering::Release);
        } else {
            for _ in 0..1_000_000 {
                if claim.load(Ordering::Acquire) & DONE != 0 {
                    let _ = payload.get("claim_fixture::consume");
                    break;
                }
                std::hint::spin_loop();
            }
        }
    };
    run_pair(strategy, || task(1), || task(2))
}

/// The publish/consume discipline of the similarity store, with the
/// settle-skip bug's missing ordering: a publisher task writes a shadow
/// payload and raises a flag; a consumer task polls the flag (bounded)
/// and reads the payload once the flag is up.
///
/// * `buggy = false`: `Release` store / `Acquire` load — the flag
///   carries the payload's happens-before edge. Clean.
/// * `buggy = true`: both ends `Relaxed` — the consumer acts on the
///   payload with no edge from the publisher, the same shape as
///   consuming a similarity verdict whose label load was demoted to
///   `Relaxed`. Flagged on any run where the consumer observes the
///   flag; under `Modeled` submission order (publisher first) that is
///   every run.
pub fn publish_fixture(strategy: ExecutionStrategy, buggy: bool) -> Vec<RaceReport> {
    let (store_order, load_order) = if buggy {
        (Ordering::Relaxed, Ordering::Relaxed)
    } else {
        (Ordering::Release, Ordering::Acquire)
    };
    let flag: TracedAtomicU32 = AtomicCellU32::new(0);
    let payload: ShadowCell<u32> = ShadowCell::new("publish-payload", 0);
    run_pair(
        strategy,
        || {
            payload.set(42, "publish_fixture::publish");
            flag.store(1, store_order);
        },
        || {
            for _ in 0..10_000 {
                if flag.load(load_order) == 1 {
                    let _ = payload.get("publish_fixture::consume");
                    return;
                }
                std::hint::spin_loop();
            }
        },
    )
}

/// `fetch_add(1)` on the traced substrate (single writer here, so the
/// CAS succeeds first try; one RMW edge like the real `fetch_add`).
fn bump(epoch: &TracedAtomicU32) -> u32 {
    loop {
        let cur = epoch.load(Ordering::SeqCst);
        if epoch
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return cur;
        }
    }
}

/// The serving path's snapshot-cell protocol on the traced substrate:
/// a writer publishes value 2 over value 1 and reclaims, a reader pins
/// and dereferences. "Heap values" are shadow cells; reclamation is a
/// shadow *write* (the drop), dereferencing a shadow *read* — so
/// freeing under an active pin is a write racing the pinned reader's
/// read.
///
/// * `buggy = false`: swap, then bump — the real protocol. Clean.
/// * `buggy = true`: the post-swap bump is elided and replaced by a
///   pre-swap bump. A reader pinning in the bump→swap window records
///   epoch `E+1` yet loads the old value; the reclaim scan reads the
///   pin as post-swap and frees the value under the reader.
///
/// The racy window is narrow, so the fixture aligns the two tasks with
/// a pair of *untraced* rendezvous gates (window-open / pin-done):
/// plain `AtomicU32`s the detector never sees, used only to shape
/// physical timing. (Traced gates would defeat the fixture a different
/// way: every traced access serializes on detector state, so a traced
/// spin-wait starves the other task's traced operations and the run
/// degenerates to quasi-serial. Untraced edges can only make the
/// detector *over*-report relative to real happens-before, never hide
/// a race, and the correct variant is ordered by its own traced edges
/// alone — see `snapshot_fixture_correct_is_clean`.) The reader also
/// dwells briefly between dereferencing and unpinning so the reclaim
/// scan tends to observe the live pin rather than the (edge-carrying)
/// unpin store.
pub fn snapshot_fixture(strategy: ExecutionStrategy, buggy: bool) -> Vec<RaceReport> {
    /// Gate-wait deadline; also the timeout that keeps serial
    /// executions (e.g. `Modeled`, or both tasks landing on one
    /// worker) moving. Long enough to ride out worker wake-up latency.
    const GATE_WAIT: std::time::Duration = std::time::Duration::from_millis(10);
    /// Reader dwell (in spin iterations) between dereference and
    /// unpin: must outlast the writer's post-rendezvous swap + scan,
    /// each of which serializes on detector state (~tens of µs).
    const DWELL_SPIN: usize = 200_000;
    let ptr: TracedAtomicU32 = AtomicCellU32::new(1);
    let epoch: TracedAtomicU32 = AtomicCellU32::new(1);
    let slot: TracedAtomicU32 = AtomicCellU32::new(0);
    let window_open = std::sync::atomic::AtomicU32::new(0);
    let pin_done = std::sync::atomic::AtomicU32::new(0);
    let values: [ShadowCell<u32>; 2] = [
        ShadowCell::new("snapshot-value", 10),
        ShadowCell::new("snapshot-value", 20),
    ];
    let await_gate = |gate: &std::sync::atomic::AtomicU32| {
        let start = std::time::Instant::now();
        while gate.load(Ordering::Relaxed) != 1 && start.elapsed() < GATE_WAIT {
            std::hint::spin_loop();
        }
    };
    run_pair(
        strategy,
        || {
            // Writer: publish value 2, then try_reclaim.
            let retired_epoch = if buggy {
                let e = bump(&epoch);
                window_open.store(1, Ordering::Relaxed);
                await_gate(&pin_done);
                let _ = ptr.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst);
                e
            } else {
                let _ = ptr.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst);
                let e = bump(&epoch);
                window_open.store(1, Ordering::Relaxed);
                await_gate(&pin_done);
                e
            };
            let pin = slot.load(Ordering::SeqCst);
            if !(pin != 0 && pin <= retired_epoch) {
                // Reclaim: drop the old value.
                values[0].set(0xdead, "snapshot_fixture::drop");
            }
        },
        || {
            // Reader: pin, dereference, unpin.
            await_gate(&window_open);
            let e = epoch.load(Ordering::SeqCst);
            slot.store(e, Ordering::SeqCst);
            let v = ptr.load(Ordering::SeqCst);
            let _ = values[(v - 1) as usize].get("snapshot_fixture::deref");
            pin_done.store(1, Ordering::Relaxed);
            for _ in 0..DWELL_SPIN {
                std::hint::spin_loop();
            }
            slot.store(0, Ordering::SeqCst);
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODELED: ExecutionStrategy = ExecutionStrategy::Modeled;
    const PARALLEL: ExecutionStrategy = ExecutionStrategy::Parallel;

    /// Retries `f` up to `budget` times, returning the first non-empty
    /// race list (for bugs whose races need a real interleaving to
    /// manifest).
    fn detect_within(budget: usize, f: impl Fn() -> Vec<RaceReport>) -> Vec<RaceReport> {
        for _ in 0..budget {
            let races = f();
            if !races.is_empty() {
                return races;
            }
        }
        Vec::new()
    }

    #[test]
    fn claim_bug_flagged_under_modeled_and_parallel() {
        for strategy in [MODELED, PARALLEL] {
            let races = claim_fixture(strategy, true);
            assert!(
                !races.is_empty(),
                "check-then-store bug not flagged under {strategy:?}"
            );
            assert!(races.iter().all(|r| r.location == "claim-payload"));
        }
    }

    #[test]
    fn claim_fixture_correct_is_clean() {
        assert!(claim_fixture(MODELED, false).is_empty());
        for _ in 0..20 {
            let races = claim_fixture(PARALLEL, false);
            assert!(races.is_empty(), "false positive: {races:?}");
        }
    }

    #[test]
    fn publish_bug_flagged_under_modeled_and_parallel() {
        // Modeled submission order runs the publisher first, so the
        // consumer always observes the flag: deterministic detection.
        let races = publish_fixture(MODELED, true);
        assert!(!races.is_empty(), "publish bug not flagged under modeled");
        // Parallel needs the consumer to observe the flag, which the
        // bounded poll makes near-certain; allow a few attempts.
        let races = detect_within(50, || publish_fixture(PARALLEL, true));
        assert!(!races.is_empty(), "publish bug not flagged under parallel");
        assert!(races.iter().all(|r| r.location == "publish-payload"));
    }

    #[test]
    fn publish_fixture_correct_is_clean() {
        assert!(publish_fixture(MODELED, false).is_empty());
        for _ in 0..20 {
            let races = publish_fixture(PARALLEL, false);
            assert!(races.is_empty(), "false positive: {races:?}");
        }
    }

    #[test]
    fn snapshot_bug_flagged_under_parallel() {
        let races = detect_within(200, || snapshot_fixture(PARALLEL, true));
        assert!(
            !races.is_empty(),
            "epoch-bump-elision not flagged within the retry budget"
        );
        assert!(races.iter().all(|r| r.location == "snapshot-value"));
    }

    /// Documents the instrumentation boundary: on a serial trace the
    /// buggy ordering never produces a racy access pair (whichever task
    /// runs first, either the reclaim scan's acquire of the reader's
    /// unpin store is a real happens-before edge, or the reader
    /// dereferences the already-published new value), so `Modeled` runs
    /// are clean even with the bug present. The model checker's
    /// `seeded-epoch-bump-elision` scenario owns this bug's exhaustive
    /// coverage; the detector owns its real-interleaving coverage.
    #[test]
    fn snapshot_bug_invisible_to_serial_traces() {
        assert!(snapshot_fixture(MODELED, true).is_empty());
    }

    #[test]
    fn snapshot_fixture_correct_is_clean() {
        assert!(snapshot_fixture(MODELED, false).is_empty());
        for _ in 0..50 {
            let races = snapshot_fixture(PARALLEL, false);
            assert!(races.is_empty(), "false positive: {races:?}");
        }
    }
}
