//! First-principles verification of a clustering against the SCAN
//! definitions (paper §2) — no shared code with the algorithms beyond
//! the naive reference intersection, so a bug in the pruning or the
//! lock-free phases cannot hide from it.
//!
//! [`check_clustering`] recomputes, naively and sequentially:
//! * every edge's similarity predicate σ_ε (Definition 2.2),
//! * every role (Definition 2.4),
//! * the clusters, by BFS over direct structural reachability
//!   (Definitions 2.6–2.9: connectivity via a common seed, maximality by
//!   exhaustive expansion),
//!
//! and compares them with the result under test.

use crate::params::ScanParams;
use crate::result::{Clustering, Role, NO_CLUSTER};
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::merge;

/// Naive σ_ε(u, v) for adjacent vertices (Definition 2.2).
fn similar(g: &CsrGraph, params: &ScanParams, u: VertexId, v: VertexId) -> bool {
    let (nu, nv) = (g.neighbors(u), g.neighbors(v));
    merge::count_full(nu, nv) + 2 >= params.min_cn(nu.len(), nv.len())
}

/// Independently recomputes the ground-truth clustering by definition:
/// exhaustive similarities, roles by counting, clusters by BFS from cores
/// over similar edges.
pub fn reference_clustering(g: &CsrGraph, params: ScanParams) -> Clustering {
    let n = g.num_vertices();
    // Roles.
    let roles: Vec<Role> = (0..n as VertexId)
        .map(|u| {
            let cnt = g
                .neighbors(u)
                .iter()
                .filter(|&&v| similar(g, &params, u, v))
                .count();
            if cnt >= params.mu {
                Role::Core
            } else {
                Role::NonCore
            }
        })
        .collect();
    // Clusters: BFS over cores along similar core-core edges.
    let mut core_label = vec![NO_CLUSTER; n];
    let mut pairs: Vec<(VertexId, u32)> = Vec::new();
    for seed in 0..n as VertexId {
        if roles[seed as usize] != Role::Core || core_label[seed as usize] != NO_CLUSTER {
            continue;
        }
        core_label[seed as usize] = seed;
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !similar(g, &params, u, v) {
                    continue;
                }
                match roles[v as usize] {
                    Role::Core => {
                        if core_label[v as usize] == NO_CLUSTER {
                            core_label[v as usize] = seed;
                            queue.push_back(v);
                        }
                    }
                    Role::NonCore => pairs.push((v, seed)),
                }
            }
        }
    }
    Clustering::from_raw(roles, core_label, pairs)
}

/// Validates `c` against the definitions. Returns the first violation as
/// an error message.
pub fn check_clustering(g: &CsrGraph, params: ScanParams, c: &Clustering) -> Result<(), String> {
    if c.num_vertices() != g.num_vertices() {
        return Err(format!(
            "vertex count mismatch: clustering has {}, graph has {}",
            c.num_vertices(),
            g.num_vertices()
        ));
    }
    let reference = reference_clustering(g, params);
    if c.roles != reference.roles {
        let bad = c
            .roles
            .iter()
            .zip(reference.roles.iter())
            .position(|(a, b)| a != b)
            .unwrap();
        return Err(format!(
            "role mismatch at vertex {bad}: got {:?}, expected {:?}",
            c.roles[bad], reference.roles[bad]
        ));
    }
    if c.core_cluster != reference.core_cluster {
        let bad = c
            .core_cluster
            .iter()
            .zip(reference.core_cluster.iter())
            .position(|(a, b)| a != b)
            .unwrap();
        return Err(format!(
            "core cluster mismatch at vertex {bad}: got {}, expected {} \
             (violates connectivity/maximality of Definition 2.9)",
            c.core_cluster[bad], reference.core_cluster[bad]
        ));
    }
    if c.noncore_pairs != reference.noncore_pairs {
        return Err(format!(
            "non-core memberships mismatch: got {} pairs, expected {}",
            c.noncore_pairs.len(),
            reference.noncore_pairs.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Role;
    use ppscan_graph::gen;

    #[test]
    fn reference_accepts_itself() {
        let g = gen::scan_paper_example();
        let p = ScanParams::new(0.7, 2);
        let c = reference_clustering(&g, p);
        check_clustering(&g, p, &c).unwrap();
    }

    #[test]
    fn rejects_flipped_role() {
        let g = gen::complete(5);
        let p = ScanParams::new(0.5, 2);
        let mut c = reference_clustering(&g, p);
        c.roles[3] = Role::NonCore;
        let err = check_clustering(&g, p, &c).unwrap_err();
        assert!(err.contains("role mismatch at vertex 3"), "{err}");
    }

    #[test]
    fn rejects_split_cluster() {
        let g = gen::complete(6);
        let p = ScanParams::new(0.5, 2);
        let mut c = reference_clustering(&g, p);
        c.core_cluster[5] = 5; // break maximality
        let err = check_clustering(&g, p, &c).unwrap_err();
        assert!(err.contains("core cluster mismatch"), "{err}");
    }

    #[test]
    fn rejects_missing_noncore_pair() {
        let g = gen::scan_paper_example();
        let p = ScanParams::new(0.7, 2);
        let mut c = reference_clustering(&g, p);
        if !c.noncore_pairs.is_empty() {
            c.noncore_pairs.pop();
            let err = check_clustering(&g, p, &c).unwrap_err();
            assert!(err.contains("non-core memberships"), "{err}");
        }
    }

    #[test]
    fn rejects_wrong_size() {
        let g = gen::complete(4);
        let p = ScanParams::new(0.5, 2);
        let c = reference_clustering(&gen::complete(5), p);
        assert!(check_clustering(&g, p, &c).is_err());
    }
}
