//! Canonical clustering result shared by every algorithm.
//!
//! SCAN semantics (Definitions 2.9–2.10): clusters of *cores* are
//! disjoint (pSCAN Lemma 3.5), while a *non-core* may belong to several
//! clusters (it is attached to every cluster containing a core it is
//! similar to). Vertices in no cluster are hubs (neighbors in ≥ 2
//! distinct clusters) or outliers.
//!
//! The canonical form labels every cluster by its **minimum core id**
//! (Definition 3.7), so results from different algorithms — BFS-grown
//! SCAN, union-find pSCAN, lock-free parallel ppSCAN — compare with `==`.

use ppscan_graph::{CsrGraph, VertexId};

/// The role of a vertex (Definition 2.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Role {
    /// `|N_ε(u)| ≥ µ + 1`.
    Core = 1,
    /// Not a core.
    NonCore = 2,
}

/// Classification of vertices outside every cluster (Definition 2.10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnclusteredClass {
    /// In at least one cluster (not hub/outlier).
    Clustered,
    /// Unclustered with neighbors in ≥ 2 distinct clusters.
    Hub,
    /// Unclustered, everything else.
    Outlier,
}

/// Sentinel for "not in any cluster" in the per-core label array.
pub const NO_CLUSTER: u32 = u32::MAX;

/// Canonical clustering result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// Role per vertex.
    pub roles: Vec<Role>,
    /// For every core: its cluster id (the minimum core id in the
    /// cluster); [`NO_CLUSTER`] for non-cores.
    pub core_cluster: Vec<u32>,
    /// `(non-core vertex, cluster id)` memberships, sorted and deduped.
    pub noncore_pairs: Vec<(VertexId, u32)>,
}

impl Clustering {
    /// Builds the canonical form from raw parts: per-vertex roles, an
    /// arbitrary (but per-cluster-constant) core labeling, and raw
    /// non-core membership pairs keyed by the same arbitrary labels.
    ///
    /// Relabels every cluster by its minimum core id, sorts and dedups.
    pub fn from_raw(
        roles: Vec<Role>,
        raw_core_label: Vec<u32>,
        raw_pairs: Vec<(VertexId, u32)>,
    ) -> Self {
        assert_eq!(roles.len(), raw_core_label.len());
        // Min core id per raw label.
        let mut min_core: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (v, (&role, &lbl)) in roles.iter().zip(raw_core_label.iter()).enumerate() {
            if role == Role::Core {
                debug_assert_ne!(lbl, NO_CLUSTER, "core {v} has no cluster label");
                let e = min_core.entry(lbl).or_insert(u32::MAX);
                *e = (*e).min(v as u32);
            }
        }
        let core_cluster: Vec<u32> = roles
            .iter()
            .zip(raw_core_label.iter())
            .map(|(&role, &lbl)| {
                if role == Role::Core {
                    min_core[&lbl]
                } else {
                    NO_CLUSTER
                }
            })
            .collect();
        let mut noncore_pairs: Vec<(VertexId, u32)> = raw_pairs
            .into_iter()
            .map(|(v, lbl)| (v, min_core[&lbl]))
            .collect();
        noncore_pairs.sort_unstable();
        noncore_pairs.dedup();
        Self {
            roles,
            core_cluster,
            noncore_pairs,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.roles.len()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.roles.iter().filter(|&&r| r == Role::Core).count()
    }

    /// Number of distinct clusters.
    pub fn num_clusters(&self) -> usize {
        let mut ids: Vec<u32> = self
            .core_cluster
            .iter()
            .copied()
            .filter(|&c| c != NO_CLUSTER)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// All cluster ids a vertex belongs to (empty if unclustered).
    pub fn memberships(&self, v: VertexId) -> Vec<u32> {
        if self.roles[v as usize] == Role::Core {
            vec![self.core_cluster[v as usize]]
        } else {
            let lo = self.noncore_pairs.partition_point(|&(w, _)| w < v);
            let hi = self.noncore_pairs.partition_point(|&(w, _)| w <= v);
            self.noncore_pairs[lo..hi].iter().map(|&(_, c)| c).collect()
        }
    }

    /// Whether `v` belongs to at least one cluster.
    pub fn is_clustered(&self, v: VertexId) -> bool {
        !self.memberships(v).is_empty()
    }

    /// Materializes every cluster as a sorted vertex list, keyed by
    /// cluster id, sorted by id.
    pub fn clusters(&self) -> Vec<(u32, Vec<VertexId>)> {
        let mut map: std::collections::BTreeMap<u32, Vec<VertexId>> =
            std::collections::BTreeMap::new();
        for (v, &c) in self.core_cluster.iter().enumerate() {
            if c != NO_CLUSTER {
                map.entry(c).or_default().push(v as VertexId);
            }
        }
        for &(v, c) in &self.noncore_pairs {
            map.entry(c).or_default().push(v);
        }
        map.into_iter()
            .map(|(c, mut vs)| {
                vs.sort_unstable();
                vs.dedup();
                (c, vs)
            })
            .collect()
    }

    /// Classifies every vertex as clustered / hub / outlier
    /// (Definition 2.10). O(|E| + |V| + P log P) where P is the number of
    /// non-core membership pairs — the complexity pSCAN quotes.
    pub fn classify_unclustered(&self, g: &CsrGraph) -> Vec<UnclusteredClass> {
        (0..self.num_vertices() as VertexId)
            .map(|v| {
                if self.is_clustered(v) {
                    return UnclusteredClass::Clustered;
                }
                // Hub iff neighbors touch ≥ 2 distinct clusters.
                let mut seen: Option<u32> = None;
                for &w in g.neighbors(v) {
                    for c in self.memberships(w) {
                        match seen {
                            None => seen = Some(c),
                            Some(first) if first != c => return UnclusteredClass::Hub,
                            _ => {}
                        }
                    }
                }
                UnclusteredClass::Outlier
            })
            .collect()
    }

    /// Human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} vertices: {} cores, {} clusters, {} non-core memberships",
            self.num_vertices(),
            self.num_cores(),
            self.num_clusters(),
            self.noncore_pairs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_graph::builder::from_edges;

    /// roles: 0,1 cores in one cluster; 3,4 cores in another; 2 non-core
    /// in both; 5 non-core in none.
    fn sample() -> Clustering {
        Clustering::from_raw(
            vec![
                Role::Core,
                Role::Core,
                Role::NonCore,
                Role::Core,
                Role::Core,
                Role::NonCore,
            ],
            vec![7, 7, NO_CLUSTER, 9, 9, NO_CLUSTER],
            vec![(2, 9), (2, 7), (2, 7)],
        )
    }

    #[test]
    fn canonical_relabels_to_min_core_id() {
        let c = sample();
        assert_eq!(c.core_cluster, vec![0, 0, NO_CLUSTER, 3, 3, NO_CLUSTER]);
        assert_eq!(c.noncore_pairs, vec![(2, 0), (2, 3)]);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.num_cores(), 4);
    }

    #[test]
    fn memberships_and_clusters() {
        let c = sample();
        assert_eq!(c.memberships(0), vec![0]);
        assert_eq!(c.memberships(2), vec![0, 3]);
        assert!(c.memberships(5).is_empty());
        assert!(!c.is_clustered(5));
        assert_eq!(c.clusters(), vec![(0, vec![0, 1, 2]), (3, vec![2, 3, 4])]);
    }

    #[test]
    fn hub_outlier_classification() {
        let c = sample();
        // 5 adjacent to 2 (in clusters 0 and 3) → hub; make 6th vertex
        // isolated → outlier. Graph: 5-2 edge plus cluster edges.
        let g = from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (5, 2)]);
        let classes = c.classify_unclustered(&g);
        assert_eq!(classes[0], UnclusteredClass::Clustered);
        assert_eq!(classes[2], UnclusteredClass::Clustered);
        assert_eq!(classes[5], UnclusteredClass::Hub);
    }

    #[test]
    fn outlier_when_neighbors_share_cluster() {
        let roles = vec![Role::Core, Role::Core, Role::NonCore];
        let c = Clustering::from_raw(roles, vec![1, 1, NO_CLUSTER], vec![]);
        let g = from_edges(&[(0, 1), (2, 0), (2, 1)]);
        // 2's neighbors are both in cluster 0 only → outlier.
        assert_eq!(c.classify_unclustered(&g)[2], UnclusteredClass::Outlier);
    }

    #[test]
    fn equality_is_representation_independent() {
        let a = sample();
        // Same clustering, different raw labels and pair order.
        let b = Clustering::from_raw(
            vec![
                Role::Core,
                Role::Core,
                Role::NonCore,
                Role::Core,
                Role::Core,
                Role::NonCore,
            ],
            vec![100, 100, NO_CLUSTER, 42, 42, NO_CLUSTER],
            vec![(2, 42), (2, 100)],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn summary_contains_counts() {
        assert!(sample().summary().contains("2 clusters"));
    }
}
