//! Cross-algorithm differential tests: SCAN ≡ pSCAN ≡ ppSCAN ≡ SCAN-XP ≡
//! anySCAN on identical inputs, and every result validated against the
//! from-first-principles reference (`verify`). This is the strongest
//! correctness statement in the workspace: five independent
//! implementations (one of them lock-free parallel) must agree exactly.

use crate::params::ScanParams;
use crate::ppscan::{ppscan, PpScanConfig};
use crate::verify;
use ppscan_graph::rng::SplitMix64;
use ppscan_graph::{gen, CsrGraph};
use ppscan_intersect::Kernel;

fn all_algorithms_agree(g: &CsrGraph, eps: f64, mu: usize) {
    let p = ScanParams::new(eps, mu);
    let reference = verify::reference_clustering(g, p);

    let scan_out = crate::scan::scan(g, p).clustering;
    assert_eq!(scan_out, reference, "SCAN diverged at eps={eps} mu={mu}");

    let pscan_out = crate::pscan::pscan(g, p).clustering;
    assert_eq!(pscan_out, reference, "pSCAN diverged at eps={eps} mu={mu}");

    let xp = crate::scanxp::scanxp(g, p, 2);
    assert_eq!(xp, reference, "SCAN-XP diverged at eps={eps} mu={mu}");

    let any = crate::anyscan::anyscan(g, p, 2);
    assert_eq!(any, reference, "anySCAN diverged at eps={eps} mu={mu}");

    let spp = crate::scanpp::scanpp(g, p);
    assert_eq!(spp, reference, "SCAN++ diverged at eps={eps} mu={mu}");

    for threads in [1usize, 3] {
        let cfg = PpScanConfig::with_threads(threads);
        let pp = ppscan(g, p, &cfg).clustering;
        assert_eq!(
            pp, reference,
            "ppSCAN({threads} threads) diverged at eps={eps} mu={mu}"
        );
        verify::check_clustering(g, p, &pp).unwrap();
    }
}

#[test]
fn golden_example_full_grid() {
    let g = gen::scan_paper_example();
    for eps in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        for mu in [1, 2, 3, 6] {
            all_algorithms_agree(&g, eps, mu);
        }
    }
}

#[test]
fn pathological_topologies() {
    for g in [
        CsrGraph::empty(0),
        CsrGraph::empty(5),
        gen::path(2),
        gen::star(20),
        gen::complete(10),
        gen::cycle(8),
        gen::grid(5, 5),
        gen::clique_chain(6, 3),
    ] {
        all_algorithms_agree(&g, 0.5, 2);
        all_algorithms_agree(&g, 0.9, 4);
        all_algorithms_agree(&g, 1.0, 1);
    }
}

#[test]
fn scale_free_and_blocky_graphs() {
    all_algorithms_agree(&gen::roll(250, 10, 7), 0.4, 4);
    all_algorithms_agree(&gen::rmat_social(8, 8, 9), 0.3, 3);
    all_algorithms_agree(&gen::planted_partition(4, 20, 0.65, 0.02, 5), 0.5, 3);
}

#[test]
fn mu_exceeding_max_degree_yields_no_cores() {
    let g = gen::roll(100, 6, 1);
    let p = ScanParams::new(0.2, g.max_degree() + 1);
    let out = ppscan(&g, p, &PpScanConfig::with_threads(2));
    assert_eq!(out.clustering.num_cores(), 0);
    assert_eq!(out.clustering.num_clusters(), 0);
    verify::check_clustering(&g, p, &out.clustering).unwrap();
}

#[test]
fn all_kernels_produce_identical_clusterings() {
    let g = gen::planted_partition(3, 25, 0.6, 0.03, 11);
    let p = ScanParams::new(0.5, 3);
    let reference = verify::reference_clustering(&g, p);
    for kernel in Kernel::ALL.into_iter().filter(|k| k.available()) {
        let cfg = PpScanConfig::with_threads(2).kernel(kernel);
        assert_eq!(
            ppscan(&g, p, &cfg).clustering,
            reference,
            "kernel {kernel} diverged"
        );
    }
}

/// Random small graphs × random parameters: the parallel algorithm must
/// match the naive reference exactly. (Formerly a `proptest!` block; now a
/// seeded loop — on failure the printed case parameters replay it.)
#[test]
fn ppscan_matches_reference_on_random_graphs() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0x00d1_ff00 ^ case);
        let seed = rng.gen_index(1000) as u64;
        let n = rng.gen_range(10..60);
        let edge_factor = rng.gen_range(1..6);
        let eps_decile = rng.gen_range(1..10) as u64;
        let mu = rng.gen_range(1..6);
        let g = gen::erdos_renyi(n, n * edge_factor, seed);
        let p = ScanParams::new(eps_decile as f64 / 10.0, mu);
        let reference = verify::reference_clustering(&g, p);
        let cfg = PpScanConfig::with_threads(3).degree_threshold(8);
        let pp = ppscan(&g, p, &cfg).clustering;
        assert_eq!(
            pp,
            reference,
            "case {case}: er(n={n}, m={}, seed={seed}) eps=0.{eps_decile} mu={mu}",
            n * edge_factor
        );
    }
}

/// pSCAN (with and without the dynamic ed-order) matches the reference on
/// random scale-free graphs.
#[test]
fn pscan_matches_reference_on_scale_free() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0x00d1_ee00 ^ case);
        let seed = rng.gen_index(1000) as u64;
        let eps_decile = rng.gen_range(1..10) as u64;
        let mu = rng.gen_range(1..5);
        let g = gen::roll(80, 6, seed);
        let p = ScanParams::new(eps_decile as f64 / 10.0, mu);
        let reference = verify::reference_clustering(&g, p);
        assert_eq!(
            crate::pscan::pscan(&g, p).clustering,
            reference,
            "case {case}: roll(80, 6, {seed}) eps=0.{eps_decile} mu={mu}"
        );
        assert_eq!(
            crate::pscan::pscan_with_order(&g, p, false).clustering,
            reference,
            "case {case}: static order, roll(80, 6, {seed}) eps=0.{eps_decile} mu={mu}"
        );
    }
}

/// Acceptance sweep: the stress driver runs algorithm × kernel × thread
/// count × schedule strategy × (ε, µ) on generated graphs — ≥3 thread
/// counts, all 3 strategies, ≥2 kernels — and every configuration agrees
/// with the reference. On failure the driver's banner carries the shrunk
/// graph and a replayable seed.
#[test]
fn stress_driver_sweep_is_green() {
    let cfg = crate::stress::StressConfig::default();
    assert!(cfg.thread_counts.len() >= 3);
    assert!(cfg.strategies.len() == 3);
    assert!(cfg.kernels.iter().filter(|k| k.available()).count() >= 2);
    let (result, report) = crate::stress::run_stress_report(&cfg);
    // Persist the seed log next to the stress corpus either way.
    if let Some(dir) = &cfg.corpus_dir {
        let _ = report.write_to_file(dir.join("last-sweep-report.json"));
    }
    let seeds = report
        .extra
        .iter()
        .find(|(k, _)| k == "seeds")
        .and_then(|(_, v)| v.as_arr())
        .expect("sweep report must log seeds");
    match result {
        Ok(stats) => {
            assert_eq!(stats.cases, cfg.cases);
            assert!(stats.configs_checked > 0);
            assert_eq!(seeds.len(), cfg.cases as usize, "every seed logged");
        }
        Err(failure) => panic!("{failure}"),
    }
}

/// The deterministic reference schedule and the parallel schedule produce
/// identical clusterings — golden example and ROLL scale-free graphs.
#[test]
fn sequential_deterministic_matches_parallel() {
    use ppscan_sched::ExecutionStrategy;
    let graphs = [
        gen::scan_paper_example(),
        gen::roll(250, 10, 21),
        gen::roll(120, 6, 22),
    ];
    for (gi, g) in graphs.iter().enumerate() {
        for (eps, mu) in [(0.5, 3), (0.7, 2), (0.35, 4)] {
            let p = ScanParams::new(eps, mu);
            let seq = ppscan(
                g,
                p,
                &PpScanConfig::with_threads(1).strategy(ExecutionStrategy::SequentialDeterministic),
            )
            .clustering;
            for threads in [2usize, 4, 8] {
                let par = ppscan(
                    g,
                    p,
                    &PpScanConfig::with_threads(threads).strategy(ExecutionStrategy::Parallel),
                )
                .clustering;
                assert_eq!(
                    par, seq,
                    "graph {gi}: parallel({threads}) != sequential at eps={eps} mu={mu}"
                );
            }
        }
    }
}
