//! `RunReport` glue for the algorithm drivers.
//!
//! `ppscan-obs` defines the report format without knowing about graphs,
//! parameters, or kernels; this module is the binding layer: canonical
//! stage names, conversion from [`Breakdown`]/[`StageTimings`] to report
//! phases, and [`instrument`] — a wrapper that runs any driver under a
//! fresh span collector + kernel counter scope and returns the run's
//! [`RunReport`] alongside its result.

use crate::params::ScanParams;
use crate::timing::{Breakdown, StageTimings};
use ppscan_graph::CsrGraph;
use ppscan_intersect::counters::CounterScope;
use ppscan_obs::report::{KernelCounters, PhaseMetrics, RunReport};
use ppscan_obs::Collector;
use std::time::{Duration, Instant};

/// Stage name: similarity pruning (ppSCAN phase 1).
pub const STAGE_SIMILARITY_PRUNING: &str = "similarity-pruning";
/// Stage name: core checking + consolidating (ppSCAN phases 2–3).
pub const STAGE_CORE_CHECKING: &str = "core-checking";
/// Stage name: two-phase core clustering (ppSCAN phase 4).
pub const STAGE_CORE_CLUSTERING: &str = "core-clustering";
/// Stage name: cluster-id init + non-core clustering (ppSCAN phases 5–6).
pub const STAGE_NONCORE_CLUSTERING: &str = "noncore-clustering";

/// ppSCAN stage names in execution order, aligned with
/// [`StageTimings::stages`].
pub const PPSCAN_STAGES: [&str; 4] = [
    STAGE_SIMILARITY_PRUNING,
    STAGE_CORE_CHECKING,
    STAGE_CORE_CLUSTERING,
    STAGE_NONCORE_CLUSTERING,
];

/// Phase name: similarity evaluation (Figure-1 breakdown).
pub const PHASE_SIMILARITY_EVALUATION: &str = "similarity-evaluation";
/// Phase name: workload-reduction computation (Figure-1 breakdown).
pub const PHASE_WORKLOAD_REDUCTION: &str = "workload-reduction";
/// Phase name: everything else (Figure-1 breakdown).
pub const PHASE_OTHER: &str = "other";

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A report skeleton with the fields every driver shares.
pub fn base_report(algorithm: &str, g: &CsrGraph, params: ScanParams) -> RunReport {
    RunReport::new(algorithm)
        .with_params(params.epsilon.as_f64(), params.mu as u64)
        .with_graph(g.num_vertices() as u64, g.num_edges() as u64)
}

/// Converts a Figure-1 [`Breakdown`] into report phases (wall-time only —
/// the sequential algorithms have no workers).
pub fn breakdown_phases(b: &Breakdown) -> Vec<PhaseMetrics> {
    [
        (PHASE_SIMILARITY_EVALUATION, b.similarity_evaluation),
        (PHASE_WORKLOAD_REDUCTION, b.workload_reduction),
        (PHASE_OTHER, b.other),
    ]
    .into_iter()
    .map(|(name, d)| PhaseMetrics {
        name: name.to_string(),
        wall_nanos: nanos(d),
        ..PhaseMetrics::default()
    })
    .collect()
}

/// Converts Figure-6 [`StageTimings`] into report phases (wall-time only).
/// Used when a run is not observed; observed runs get richer per-worker
/// phases straight from the span collector.
pub fn stage_phases(t: &StageTimings) -> Vec<PhaseMetrics> {
    PPSCAN_STAGES
        .into_iter()
        .zip(t.stages())
        .map(|(name, d)| PhaseMetrics {
            name: name.to_string(),
            wall_nanos: nanos(d),
            ..PhaseMetrics::default()
        })
        .collect()
}

/// Rebuilds [`StageTimings`] from a report's phases (zero for missing
/// stages). The inverse of the span-sourced phase list, used by harness
/// code that still consumes `StageTimings`.
pub fn stage_timings_from(report: &RunReport) -> StageTimings {
    let get = |name: &str| {
        report
            .phase(name)
            .map_or(Duration::ZERO, |p| Duration::from_nanos(p.wall_nanos))
    };
    StageTimings {
        prune: get(STAGE_SIMILARITY_PRUNING),
        check_core: get(STAGE_CORE_CHECKING),
        core_cluster: get(STAGE_CORE_CLUSTERING),
        noncore_cluster: get(STAGE_NONCORE_CLUSTERING),
    }
}

/// Converts a counter snapshot into report counters.
pub fn counters_from(snapshot: ppscan_intersect::counters::CounterSnapshot) -> KernelCounters {
    KernelCounters {
        compsim_invocations: snapshot.compsim_invocations,
        elements_scanned: snapshot.elements_scanned,
        adaptive_gallop: snapshot.adaptive_gallop,
        adaptive_block: snapshot.adaptive_block,
        autotune_samples: snapshot.autotune_samples,
        autotune_buckets: snapshot.autotune_buckets,
        autotune_wins_merge: snapshot.autotune_wins_merge,
        autotune_wins_gallop: snapshot.autotune_wins_gallop,
        autotune_wins_block: snapshot.autotune_wins_block,
        autotune_wins_fesia: snapshot.autotune_wins_fesia,
        autotune_wins_shuffle: snapshot.autotune_wins_shuffle,
        autotune_planned: snapshot.autotune_planned,
        autotune_fallback: snapshot.autotune_fallback,
    }
}

/// Surfaces the collector's span-ring eviction count as the
/// `span_ring_dropped` report extra when non-zero. Aggregation in the
/// collector is lossless, so this only flags lost *debug-ring* history —
/// but a cap that was hit belongs in the record ("no silent caps").
pub fn push_ring_dropped(report: &mut RunReport, collector: &Collector) {
    let dropped = collector.dropped_events();
    if dropped > 0 {
        report.push_extra(
            "span_ring_dropped",
            ppscan_obs::json::Json::from_u64(dropped),
        );
    }
}

/// Runs `f` under a fresh span [`Collector`] and kernel [`CounterScope`]
/// (both propagate to pool workers automatically) and returns its result
/// together with a populated [`RunReport`]: wall time, span-sourced
/// phases, and kernel counters. Config fields beyond `(ε, µ)` and the
/// graph shape are the caller's to fill.
pub fn instrument<R>(
    algorithm: &str,
    g: &CsrGraph,
    params: ScanParams,
    f: impl FnOnce() -> R,
) -> (R, RunReport) {
    let collector = Collector::new();
    let scope = CounterScope::new();
    let wall = Instant::now();
    let out = {
        let _spans = collector.activate();
        let _counters = scope.activate();
        f()
    };
    let wall = wall.elapsed();
    let mut report = base_report(algorithm, g, params);
    report.wall_nanos = nanos(wall);
    report.phases = RunReport::phases_from(&collector.snapshot());
    report.counters = counters_from(scope.snapshot());
    push_ring_dropped(&mut report, &collector);
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_graph::gen;

    #[test]
    fn instrument_captures_phases_and_counters() {
        let g = gen::clique_chain(4, 3);
        let params = ScanParams::new(0.5, 2);
        let (clustering, report) = instrument("scanxp", &g, params, || {
            crate::scanxp::scanxp(&g, params, 2)
        });
        assert_eq!(clustering.num_vertices(), g.num_vertices());
        assert_eq!(report.algorithm, "scanxp");
        assert_eq!(report.graph.unwrap().vertices, g.num_vertices() as u64);
        assert!(report.wall_nanos > 0);
        // SCAN-XP's exhaustive merge records scanned elements (it has no
        // early-terminating CompSim entry point, so no invocation count).
        assert!(
            report.counters.elements_scanned > 0,
            "counter scope must propagate into the pool automatically"
        );
        assert!(
            !report.phases.is_empty(),
            "pool tasks must be recorded as spans"
        );
        let tasks: u64 = report.phases.iter().map(|p| p.tasks).sum();
        assert!(tasks > 0);
    }

    #[test]
    fn breakdown_phases_roundtrip_names() {
        let b = Breakdown {
            similarity_evaluation: Duration::from_millis(3),
            workload_reduction: Duration::from_millis(2),
            other: Duration::from_millis(1),
        };
        let phases = breakdown_phases(&b);
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].name, PHASE_SIMILARITY_EVALUATION);
        assert_eq!(phases[0].wall_nanos, 3_000_000);
    }

    #[test]
    fn stage_phases_and_back() {
        let t = StageTimings {
            prune: Duration::from_millis(1),
            check_core: Duration::from_millis(2),
            core_cluster: Duration::from_millis(3),
            noncore_cluster: Duration::from_millis(4),
        };
        let mut report = RunReport::new("ppscan");
        report.phases = stage_phases(&t);
        let back = stage_timings_from(&report);
        assert_eq!(back.prune, t.prune);
        assert_eq!(back.noncore_cluster, t.noncore_cluster);
        assert_eq!(back.total(), t.total());
    }
}
