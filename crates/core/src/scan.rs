//! SCAN (Xu et al., KDD'07) — paper Algorithm 1.
//!
//! The original structural clustering algorithm: for every unvisited
//! vertex, check the core predicate by computing the structural
//! similarity to *all* neighbors with an exhaustive merge intersection
//! (no early termination, no reuse across edge directions — Theorem 3.4's
//! `2 Σ d[v]²` workload), and grow clusters from cores by BFS over
//! similar edges.
//!
//! Kept faithful to the original so the Figure 1/2/3 baselines reproduce:
//! `sim[e(u, v)]` is cached for the later cluster expansion, but
//! `CheckCore(v)` recomputes the reverse direction as the original does.

use crate::params::ScanParams;
use crate::report as report_glue;
use crate::result::{Clustering, Role, NO_CLUSTER};
use crate::simstore::SimStore;
use crate::timing::{Breakdown, Stopwatch};
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::counters::CounterScope;
use ppscan_intersect::{merge, Similarity};
use ppscan_obs::RunReport;
use std::collections::VecDeque;
use std::time::Instant;

/// SCAN result: the canonical clustering plus the Figure-1 breakdown and
/// the unified run report.
#[derive(Debug)]
pub struct ScanOutput {
    /// Canonical clustering.
    pub clustering: Clustering,
    /// Similarity / pruning / other time split.
    pub breakdown: Breakdown,
    /// Machine-readable record of the run (breakdown-backed phases plus
    /// kernel counters).
    pub report: RunReport,
}

/// Runs SCAN (Algorithm 1).
pub fn scan(g: &CsrGraph, params: ScanParams) -> ScanOutput {
    let counter_scope = CounterScope::new();
    let _counters = counter_scope.activate();
    let wall = Instant::now();
    let n = g.num_vertices();
    let sim = SimStore::new(g.num_directed_edges());
    let mut role: Vec<Option<Role>> = vec![None; n];
    let mut core_label: Vec<u32> = vec![NO_CLUSTER; n];
    let mut pairs: Vec<(VertexId, u32)> = Vec::new();
    let mut sim_timer = Stopwatch::default();

    let mut queue: VecDeque<VertexId> = VecDeque::new();
    for u in 0..n as VertexId {
        if role[u as usize].is_some() {
            continue;
        }
        if check_core(g, &params, &sim, &mut role, u, &mut sim_timer) != Role::Core {
            continue;
        }
        // ExpandCluster(u): BFS over similar edges from the seed core.
        let cid = u;
        core_label[u as usize] = cid;
        queue.push_back(u);
        while let Some(v) = queue.pop_front() {
            // v is a checked core: all its sim labels are cached.
            for eo in g.neighbor_range(v) {
                if sim.get(eo) != Similarity::Sim {
                    continue;
                }
                let w = g.edge_dst(eo);
                if role[w as usize].is_none() {
                    check_core(g, &params, &sim, &mut role, w, &mut sim_timer);
                }
                match role[w as usize].unwrap() {
                    Role::Core => {
                        if core_label[w as usize] == NO_CLUSTER {
                            core_label[w as usize] = cid;
                            queue.push_back(w);
                        }
                        debug_assert_eq!(core_label[w as usize], cid, "core in two clusters");
                    }
                    Role::NonCore => pairs.push((w, cid)),
                }
            }
        }
    }

    let roles: Vec<Role> = role.into_iter().map(Option::unwrap).collect();
    let clustering = Clustering::from_raw(roles, core_label, pairs);
    let mut breakdown = Breakdown {
        similarity_evaluation: sim_timer.total(),
        workload_reduction: std::time::Duration::ZERO, // SCAN has no pruning
        ..Default::default()
    };
    let wall = wall.elapsed();
    breakdown.set_other_from_total(wall);
    let mut report = report_glue::base_report("scan", g, params);
    report.wall_nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
    report.phases = report_glue::breakdown_phases(&breakdown);
    report.counters = report_glue::counters_from(counter_scope.snapshot());
    ScanOutput {
        clustering,
        breakdown,
        report,
    }
}

/// `CheckCore(u)`: exhaustively computes the similarity of every incident
/// edge (caching `sim[e(u, v)]` for the expansion) and decides the role.
fn check_core(
    g: &CsrGraph,
    params: &ScanParams,
    sim: &SimStore,
    role: &mut [Option<Role>],
    u: VertexId,
    sim_timer: &mut Stopwatch,
) -> Role {
    let nu = g.neighbors(u);
    let mut similar = 0usize;
    for eo in g.neighbor_range(u) {
        let v = g.edge_dst(eo);
        let nv = g.neighbors(v);
        let min_cn = params.min_cn(nu.len(), nv.len());
        // Exhaustive merge intersection — SCAN has no early termination.
        let label = sim_timer.time(|| {
            if merge::count_full(nu, nv) + 2 >= min_cn {
                Similarity::Sim
            } else {
                Similarity::NSim
            }
        });
        sim.set(eo, label);
        if label == Similarity::Sim {
            similar += 1;
        }
    }
    let r = if similar >= params.mu {
        Role::Core
    } else {
        Role::NonCore
    };
    role[u as usize] = Some(r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_graph::gen;

    #[test]
    fn golden_scan_paper_example() {
        // ε = 0.7, µ = 2 on the KDD'07 example: two clusters, vertex 6 a
        // hub between them, vertex 13 an outlier.
        let g = gen::scan_paper_example();
        let out = scan(&g, ScanParams::new(0.7, 2));
        let c = &out.clustering;
        assert_eq!(c.num_clusters(), 2);
        let classes = c.classify_unclustered(&g);
        use crate::result::UnclusteredClass::*;
        assert_eq!(classes[6], Hub, "bridge vertex must be a hub");
        assert_eq!(classes[13], Outlier, "pendant vertex must be an outlier");
        // Both communities fully clustered.
        for v in [0u32, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12] {
            assert!(c.is_clustered(v), "vertex {v} should be clustered");
        }
    }

    #[test]
    fn complete_graph_single_cluster() {
        let g = gen::complete(6);
        let out = scan(&g, ScanParams::new(0.5, 2));
        assert_eq!(out.clustering.num_clusters(), 1);
        assert_eq!(out.clustering.num_cores(), 6);
    }

    #[test]
    fn high_mu_no_cores() {
        let g = gen::complete(4);
        let out = scan(&g, ScanParams::new(0.5, 10));
        assert_eq!(out.clustering.num_cores(), 0);
        assert_eq!(out.clustering.num_clusters(), 0);
    }

    #[test]
    fn clique_chain_clusters_per_clique() {
        let g = gen::clique_chain(5, 3);
        let out = scan(&g, ScanParams::new(0.8, 3));
        assert_eq!(out.clustering.num_clusters(), 3);
    }

    #[test]
    fn empty_and_edgeless() {
        let out = scan(&CsrGraph::empty(5), ScanParams::new(0.5, 1));
        assert_eq!(out.clustering.num_cores(), 0);
        assert_eq!(out.clustering.num_vertices(), 5);
        let out = scan(&CsrGraph::empty(0), ScanParams::new(0.5, 1));
        assert_eq!(out.clustering.num_vertices(), 0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let g = gen::clique_chain(6, 4);
        let out = scan(&g, ScanParams::new(0.5, 2));
        assert!(out.breakdown.total() >= out.breakdown.similarity_evaluation);
        assert_eq!(out.breakdown.workload_reduction, std::time::Duration::ZERO);
    }
}
