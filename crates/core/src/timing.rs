//! Phase timing instrumentation for the paper's breakdown figures.
//!
//! * Figure 1 breaks SCAN/pSCAN runtime into *similarity evaluation*,
//!   *workload-reduction computation* and *other* — [`Breakdown`].
//! * Figure 6 breaks ppSCAN into its four stages (similarity pruning,
//!   core checking + consolidating, core clustering, non-core
//!   clustering) — [`StageTimings`].

use std::time::{Duration, Instant};

/// A running stopwatch accumulating into a `Duration`.
#[derive(Default, Debug, Clone, Copy)]
pub struct Stopwatch {
    total: Duration,
}

impl Stopwatch {
    /// Times one closure invocation, accumulating its duration.
    #[inline]
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.total += t0.elapsed();
        r
    }

    /// Accumulated time.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Adds an externally measured duration.
    pub fn add(&mut self, d: Duration) {
        self.total += d;
    }
}

/// Figure-1 style breakdown for the sequential algorithms.
#[derive(Default, Debug, Clone, Copy)]
pub struct Breakdown {
    /// Time spent in `CompSim` set intersections.
    pub similarity_evaluation: Duration,
    /// Time spent in pruning bookkeeping: sd/ed updates, priority
    /// maintenance, degree-predicate checks, reverse-edge binary search.
    pub workload_reduction: Duration,
    /// Everything else (cluster expansion, union-find, output assembly).
    pub other: Duration,
}

impl Breakdown {
    /// Total across the three categories.
    pub fn total(&self) -> Duration {
        self.similarity_evaluation + self.workload_reduction + self.other
    }

    /// Derives `other` from a wall-clock total.
    ///
    /// Debug builds assert that instrumented time does not exceed the
    /// wall time beyond a small tolerance (12.5% + 10ms, covering timer
    /// granularity and the cost of the instrumentation itself): an
    /// instrumented total that overshoots the wall clock means a timer
    /// is double-counting, and silently clamping `other` to zero would
    /// hide exactly that bug from the breakdown figures.
    pub fn set_other_from_total(&mut self, wall: Duration) {
        let instrumented = self.similarity_evaluation + self.workload_reduction;
        debug_assert!(
            instrumented <= wall + wall / 8 + Duration::from_millis(10),
            "instrumented time ({instrumented:?}) exceeds wall time ({wall:?}) beyond \
             tolerance: a phase timer is double-counting"
        );
        self.other = wall.saturating_sub(instrumented);
    }
}

/// Figure-6 style per-stage timings for ppSCAN.
#[derive(Default, Debug, Clone, Copy)]
pub struct StageTimings {
    /// Stage 1: similarity pruning (`PruneSim`).
    pub prune: Duration,
    /// Stage 2: core checking and consolidating.
    pub check_core: Duration,
    /// Stage 3: two-phase core clustering.
    pub core_cluster: Duration,
    /// Stage 4: cluster-id init + non-core clustering.
    pub noncore_cluster: Duration,
}

impl StageTimings {
    /// Whole-algorithm time (sum of stages).
    pub fn total(&self) -> Duration {
        self.prune + self.check_core + self.core_cluster + self.noncore_cluster
    }

    /// The stage names in paper order (Figure 6 legend).
    pub const STAGE_NAMES: [&'static str; 4] = [
        "1. Similarity Pruning",
        "2. Core Checking and Consolidating",
        "3. Core Clustering",
        "4. Non-Core Clustering",
    ];

    /// Stage durations in paper order.
    pub fn stages(&self) -> [Duration; 4] {
        [
            self.prune,
            self.check_core,
            self.core_cluster,
            self.noncore_cluster,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_accumulates() {
        let mut sw = Stopwatch::default();
        let x = sw.time(|| 21 * 2);
        assert_eq!(x, 42);
        sw.add(Duration::from_millis(5));
        assert!(sw.total() >= Duration::from_millis(5));
    }

    #[test]
    fn breakdown_other_derived_from_wall() {
        let mut b = Breakdown {
            similarity_evaluation: Duration::from_secs(2),
            workload_reduction: Duration::from_secs(1),
            other: Duration::ZERO,
        };
        b.set_other_from_total(Duration::from_secs(5));
        assert_eq!(b.other, Duration::from_secs(2));
        assert_eq!(b.total(), Duration::from_secs(5));
        // Timer granularity can leave instrumented time a hair over the
        // wall clock; within tolerance, `other` clamps at zero.
        b.set_other_from_total(Duration::from_secs(3) - Duration::from_millis(1));
        assert_eq!(b.other, Duration::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double-counting")]
    fn breakdown_rejects_overshooting_instrumentation() {
        let mut b = Breakdown {
            similarity_evaluation: Duration::from_secs(2),
            workload_reduction: Duration::from_secs(1),
            other: Duration::ZERO,
        };
        // Wall time far below the instrumented parts: a broken timer,
        // not granularity noise. Must fail loudly in debug builds.
        b.set_other_from_total(Duration::from_secs(1));
    }

    #[test]
    fn stage_timings_total() {
        let t = StageTimings {
            prune: Duration::from_millis(1),
            check_core: Duration::from_millis(2),
            core_cluster: Duration::from_millis(3),
            noncore_cluster: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
        assert_eq!(t.stages()[2], Duration::from_millis(3));
        assert_eq!(StageTimings::STAGE_NAMES.len(), 4);
    }
}
