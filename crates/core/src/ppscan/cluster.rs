//! Core and non-core clustering (paper Algorithm 4): two-phase core
//! clustering over a wait-free union-find, CAS-based cluster-id
//! initialization, and pipelined non-core clustering.

use super::shared::Shared;
use ppscan_graph::VertexId;
use ppscan_intersect::Similarity;
use ppscan_sched::WorkerPool;
use ppscan_unionfind::ConcurrentUnionFind;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Phases `ClusterCoreWithoutCompSim` + `ClusterCoreWithCompSim`
/// (Algorithm 4 lines 9–16). Returns the disjoint sets of cores.
///
/// The first phase unions along similar edges that are already labeled,
/// forming preliminary clusters at zero intersection cost; the second
/// phase then computes the remaining unknown core-core edges, where the
/// `IsSameSet` union-find pruning now skips every pair the first phase
/// already connected. `skip_phase_one` disables the first phase for the
/// §4.3 ablation (identical output, less pruning).
pub(crate) fn cluster_cores(
    shared: &Shared<'_>,
    pool: &WorkerPool,
    degree_threshold: u64,
    skip_phase_one: bool,
) -> ConcurrentUnionFind {
    let g = shared.g;
    let n = g.num_vertices();
    let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(n);
    let core_weight = |u: VertexId| {
        if shared.is_core(u) {
            g.degree(u) as u64
        } else {
            0
        }
    };

    if !skip_phase_one {
        // Phase: ClusterCoreWithoutCompSim(u).
        pool.run_weighted(n, degree_threshold, core_weight, |range| {
            for u in range {
                if !shared.is_core(u) {
                    continue;
                }
                for eo in g.neighbor_range(u) {
                    let v = g.edge_dst(eo);
                    if u < v
                        && shared.is_core(v)
                        && shared.sim.get(eo) == Similarity::Sim
                        && !uf.is_same_set(u, v)
                    {
                        uf.union(u, v);
                    }
                }
            }
        });
    }

    // Phase: ClusterCoreWithCompSim(u).
    pool.run_weighted(n, degree_threshold, core_weight, |range| {
        for u in range {
            if !shared.is_core(u) {
                continue;
            }
            for eo in g.neighbor_range(u) {
                let v = g.edge_dst(eo);
                if u >= v || !shared.is_core(v) {
                    continue;
                }
                let label = shared.sim.get(eo);
                // Union-find pruning: skip pairs already clustered
                // together.
                if uf.is_same_set(u, v) {
                    continue;
                }
                let label = match label {
                    Similarity::Unknown => shared.comp_sim_both(u, v, eo),
                    l => l,
                };
                if label == Similarity::Sim {
                    uf.union(u, v);
                }
                // With phase one skipped (ablation), known-Sim edges are
                // unioned here instead.
            }
        }
    });
    uf
}

/// Phases `InitClusterId` + `ClusterNonCore` (Algorithm 4 lines 17–29).
///
/// Returns `(core_label, pairs)`: the raw per-core cluster label
/// (`cluster_id[FindRoot(u)]`, the minimum core id of the set) and the
/// raw `(non-core, cluster)` membership pairs.
pub(crate) fn cluster_noncores(
    shared: &Shared<'_>,
    pool: &WorkerPool,
    degree_threshold: u64,
    uf: &ConcurrentUnionFind,
) -> (Vec<u32>, Vec<(VertexId, u32)>) {
    let g = shared.g;
    let n = g.num_vertices();

    // InitClusterId: CAS-min of core ids per disjoint-set root.
    let cluster_id: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    pool.run_vertices(n, |u| {
        if !shared.is_core(u) {
            return;
        }
        let ru = uf.find_root(u) as usize;
        let mut min_core_id = cluster_id[ru].load(Ordering::Relaxed);
        // Algorithm 4 lines 19–23: lower the set's id to u if smaller.
        while u < min_core_id {
            match cluster_id[ru].compare_exchange_weak(
                min_core_id,
                u,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => min_core_id = cur,
            }
        }
    });

    // ClusterNonCore: cores hand their cluster id to similar non-core
    // neighbors. Pairs accumulate in per-task buffers and are merged into
    // the global array once per task — the paper's pipelined design of
    // overlapping pair computation with the copy-back.
    let global_pairs: Mutex<Vec<(VertexId, u32)>> = Mutex::new(Vec::new());
    pool.run_weighted(
        n,
        degree_threshold,
        |u| {
            if shared.is_core(u) {
                g.degree(u) as u64
            } else {
                0
            }
        },
        |range| {
            let mut local: Vec<(VertexId, u32)> = Vec::new();
            for u in range {
                if !shared.is_core(u) {
                    continue;
                }
                let cid = cluster_id[uf.find_root(u) as usize].load(Ordering::Relaxed);
                debug_assert_ne!(cid, u32::MAX);
                for eo in g.neighbor_range(u) {
                    let v = g.edge_dst(eo);
                    if !shared.is_noncore(v) {
                        continue;
                    }
                    let label = match shared.sim.get(eo) {
                        // The reverse slot is never read after this
                        // phase, so publish forward only.
                        Similarity::Unknown => shared.comp_sim_forward(u, v, eo),
                        l => l,
                    };
                    if label == Similarity::Sim {
                        local.push((v, cid));
                    }
                }
            }
            if !local.is_empty() {
                global_pairs.lock().unwrap().append(&mut local);
            }
        },
    );

    // Raw per-core labels read off the quiescent structures.
    let core_label: Vec<u32> = (0..n as VertexId)
        .map(|u| {
            if shared.is_core(u) {
                cluster_id[uf.find_root(u) as usize].load(Ordering::Relaxed)
            } else {
                u32::MAX
            }
        })
        .collect();
    (core_label, global_pairs.into_inner().unwrap())
}
