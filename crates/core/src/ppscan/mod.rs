//! ppSCAN — the paper's contribution (Algorithms 3–5).
//!
//! A multi-phase, lock-free parallelization of pruning-based structural
//! clustering. The two dependency-coupled steps of sequential pSCAN are
//! decomposed into **six barrier-separated phases**, each embarrassingly
//! parallel over vertices:
//!
//! **Role computing** ([`roles`], Algorithm 3)
//! 1. *Similarity pruning* — decide labels from degrees alone
//!    (similarity-predicate pruning) and initialize roles.
//! 2. *Core checking* — min-max pruning with local `sd`/`ed`; only the
//!    `u < v` endpoint computes an edge (similarity reuse without
//!    write-write conflicts).
//! 3. *Core consolidating* — identical logic without the `u < v`
//!    constraint, finishing roles the order constraint left undecided
//!    (Theorems 4.1/4.2 guarantee no duplicated work and complete roles).
//!
//! **Core & non-core clustering** ([`cluster`], Algorithm 4)
//! 4. *Core clustering without / with similarity computation* — wait-free
//!    union-find; phase 4a unions along already-known similar edges so
//!    phase 4b's union-find pruning (`IsSameSet`) can skip whole batches
//!    of intersections.
//! 5. *Cluster-id initialization* — CAS-min of core ids per disjoint set.
//! 6. *Non-core clustering* — cores hand their cluster id to similar
//!    non-core neighbors; per-task pair buffers are merged into the
//!    global array (the paper's pipelined copy-back).
//!
//! Every phase is scheduled with the degree-based dynamic task scheduler
//! (Algorithm 5, `ppscan-sched`), and every `CompSim` goes through the
//! configurable [`Kernel`] — the vectorized pivot kernel by default.

pub(crate) mod cluster;
pub(crate) mod roles;
pub(crate) mod shared;

use crate::params::ScanParams;
use crate::report as report_glue;
use crate::result::Clustering;
use crate::timing::StageTimings;
use ppscan_graph::CsrGraph;
use ppscan_intersect::counters::CounterScope;
use ppscan_intersect::{AutotuneConfig, Kernel, KernelPrecomp};
use ppscan_obs::{Collector, RunReport, Span};
use ppscan_sched::{
    ExecutionStrategy, PoolMetrics, SchedulerKind, WorkerPool, DEFAULT_DEGREE_THRESHOLD,
};
use std::sync::Arc;
use std::time::Instant;

/// How phase-2 similarity reuse locates the reverse directed slot
/// `e(v, u)` when publishing a label computed at `e(u, v)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ReverseLookup {
    /// O(1) lookup through the graph's precomputed reverse-edge index
    /// (`CsrGraph::rev_offset`).
    #[default]
    Index,
    /// The paper's original O(log d) binary search in `v`'s sorted
    /// neighbor list. Kept so `sched_overhead` and ablations can measure
    /// what the index buys.
    BinarySearch,
}

impl ReverseLookup {
    /// Harness display name.
    pub fn name(self) -> &'static str {
        match self {
            ReverseLookup::Index => "index",
            ReverseLookup::BinarySearch => "binary-search",
        }
    }

    /// Parses a name as printed by [`ReverseLookup::name`].
    pub fn parse(s: &str) -> Option<ReverseLookup> {
        match s.trim().to_ascii_lowercase().as_str() {
            "index" => Some(ReverseLookup::Index),
            "binary-search" | "search" => Some(ReverseLookup::BinarySearch),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReverseLookup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution configuration for ppSCAN.
#[derive(Clone, Debug)]
pub struct PpScanConfig {
    /// Worker threads (the paper sweeps 1–256; defaults to all cores).
    pub threads: usize,
    /// `CompSim` kernel; defaults to [`Kernel::Adaptive`] (degree-ratio
    /// dispatch between galloping and the widest available block
    /// kernel). `Kernel::MergeEarly` reproduces the paper's "ppSCAN-NO".
    pub kernel: Kernel,
    /// Degree-sum threshold of the task scheduler (paper: 32768).
    pub degree_threshold: u64,
    /// How every phase's tasks are ordered and interleaved. `Parallel`
    /// for production; `SequentialDeterministic` as the reference
    /// schedule; `AdversarialSeeded` to replay hostile interleavings from
    /// a seed (the differential stress driver sweeps all three).
    pub strategy: ExecutionStrategy,
    /// Dispatch backend of the worker pool: the persistent work-stealing
    /// pool by default, or the legacy spawn-per-dispatch shared queue
    /// for the `sched_overhead` ablation.
    pub scheduler: SchedulerKind,
    /// Reverse-slot lookup used by similarity value reuse: the
    /// precomputed index by default, binary search for ablations.
    pub reverse_lookup: ReverseLookup,
    /// Whether the run activates its own span collector + kernel counter
    /// scope and fills the output's [`RunReport`] with per-worker phase
    /// metrics and counters. On by default; `bin/obs_overhead` measures
    /// the cost of leaving it on (the stage spans themselves always run —
    /// they are also the source of [`StageTimings`]).
    pub observe: bool,
    /// Live pool counters to attach to the run's worker pool (see
    /// [`PoolMetrics`]). `None` by default — live metrics are for
    /// long-lived hosts (serving, soak benches) that sample a registry
    /// while runs execute; one-shot runs report post-hoc instead.
    pub metrics: Option<Arc<PoolMetrics>>,
    /// Pre-built kernel precomputation to reuse (e.g. the GS*-Index's,
    /// or a previous run's over the same graph). `None` by default:
    /// when the configured kernel wants one
    /// ([`crate::precomp::wants_precomp`]), the run builds it at start —
    /// outside the counter scope, so plan measurement never pollutes the
    /// run's invocation counters.
    pub precomp: Option<Arc<KernelPrecomp>>,
}

impl Default for PpScanConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            kernel: Kernel::Adaptive,
            degree_threshold: DEFAULT_DEGREE_THRESHOLD,
            strategy: ExecutionStrategy::Parallel,
            scheduler: SchedulerKind::default(),
            reverse_lookup: ReverseLookup::default(),
            observe: true,
            metrics: None,
            precomp: None,
        }
    }
}

impl PpScanConfig {
    /// Default configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Default::default()
        }
    }

    /// Builder-style kernel override.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style scheduler threshold override.
    pub fn degree_threshold(mut self, t: u64) -> Self {
        self.degree_threshold = t;
        self
    }

    /// Builder-style execution-strategy override.
    pub fn strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style scheduler-backend override.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder-style reverse-lookup override.
    pub fn reverse_lookup(mut self, lookup: ReverseLookup) -> Self {
        self.reverse_lookup = lookup;
        self
    }

    /// Builder-style observation toggle.
    pub fn observe(mut self, observe: bool) -> Self {
        self.observe = observe;
        self
    }

    /// Builder-style live pool-metrics attachment.
    pub fn metrics(mut self, metrics: Option<Arc<PoolMetrics>>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Builder-style precomputation reuse.
    pub fn precomp(mut self, precomp: Option<Arc<KernelPrecomp>>) -> Self {
        self.precomp = precomp;
        self
    }
}

/// ppSCAN result: canonical clustering, per-stage timings (Figure 6),
/// and the unified machine-readable run report.
#[derive(Debug)]
pub struct PpScanOutput {
    /// Canonical clustering (identical to the sequential algorithms').
    pub clustering: Clustering,
    /// Durations of the four stages (sourced from the stage spans).
    pub timings: StageTimings,
    /// The run's [`RunReport`]: config, graph shape, span-sourced phase
    /// metrics (per-worker when `observe` is on), and kernel counters.
    pub report: RunReport,
}

/// Runs ppSCAN.
pub fn ppscan(g: &CsrGraph, params: ScanParams, config: &PpScanConfig) -> PpScanOutput {
    ppscan_ablation(g, params, config, false)
}

/// Runs ppSCAN, optionally skipping the first core-clustering phase
/// (`ClusterCoreWithoutCompSim`) — the §4.3 two-phase-clustering ablation
/// measured by `bin/ablation_twophase`. Results are identical either way;
/// only the amount of union-find pruning differs.
pub fn ppscan_ablation(
    g: &CsrGraph,
    params: ScanParams,
    config: &PpScanConfig,
    skip_cluster_phase_one: bool,
) -> PpScanOutput {
    let pool = WorkerPool::with_scheduler(config.threads, config.strategy, config.scheduler);
    if let Some(metrics) = &config.metrics {
        pool.attach_metrics(Arc::clone(metrics));
    }
    let mut shared = shared::Shared::new(g, params, config.kernel, config.strategy);
    shared.rev_lookup = config.reverse_lookup;
    // Kernel precomputation: reuse the config's if supplied, build one
    // when the kernel wants it. Like the reverse-edge index, the
    // precomp is a per-graph amortized structure, resolved before the
    // measured window — and before the counter scope activates, because
    // autotune plan measurement invokes real kernels whose counts must
    // not pollute this run's `compsim_invocations`.
    let precomp = match (
        &config.precomp,
        crate::precomp::wants_precomp(config.kernel),
    ) {
        (Some(pre), _) => Some(Arc::clone(pre)),
        (None, true) => Some(Arc::new(crate::precomp::build_kernel_precomp(
            g,
            params,
            config.kernel,
            &AutotuneConfig::default(),
        ))),
        (None, false) => None,
    };
    shared.precomp = precomp.clone();
    let shared = shared;
    let mut timings = StageTimings::default();

    // Observation: a collector + counter scope for this run, activated
    // only when configured. The stage spans below always run — they are
    // the single source of `StageTimings` — but without an active
    // collector they cost two clock reads per stage and nothing per task.
    let collector = Collector::new();
    let scope = CounterScope::new();
    let guards = config
        .observe
        .then(|| (collector.activate(), scope.activate()));
    if guards.is_some() {
        // The plan's build-time summary (samples, planned buckets,
        // per-family win mix) is charged to this run's scope explicitly.
        if let Some(stats) = precomp.as_deref().and_then(KernelPrecomp::plan) {
            ppscan_intersect::counters::record_autotune_plan(stats.stats());
        }
    }
    let wall = Instant::now();

    // ---- Role computing (Algorithm 3) ----
    {
        let span = Span::enter(report_glue::STAGE_SIMILARITY_PRUNING);
        roles::prune_sim(&shared, &pool, config.degree_threshold);
        timings.prune = span.finish();
    }

    {
        let span = Span::enter(report_glue::STAGE_CORE_CHECKING);
        roles::check_core(
            &shared,
            &pool,
            config.degree_threshold,
            /*only_greater=*/ true,
        );
        roles::check_core(
            &shared,
            &pool,
            config.degree_threshold,
            /*only_greater=*/ false,
        );
        timings.check_core = span.finish();
    }

    // ---- Core and non-core clustering (Algorithm 4) ----
    let uf = {
        let span = Span::enter(report_glue::STAGE_CORE_CLUSTERING);
        let uf = cluster::cluster_cores(
            &shared,
            &pool,
            config.degree_threshold,
            skip_cluster_phase_one,
        );
        timings.core_cluster = span.finish();
        uf
    };

    let (core_label, pairs) = {
        let span = Span::enter(report_glue::STAGE_NONCORE_CLUSTERING);
        let out = cluster::cluster_noncores(&shared, &pool, config.degree_threshold, &uf);
        timings.noncore_cluster = span.finish();
        out
    };

    let wall = wall.elapsed();
    drop(guards);

    let mut report = report_glue::base_report("ppscan", g, params)
        .with_threads(config.threads)
        .with_kernel(config.kernel.to_string())
        .with_strategy(config.strategy.to_string())
        .with_degree_threshold(config.degree_threshold);
    report.wall_nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
    if config.observe {
        report.phases = RunReport::phases_from(&collector.snapshot());
        report.counters = report_glue::counters_from(scope.snapshot());
        report_glue::push_ring_dropped(&mut report, &collector);
    } else {
        report.phases = report_glue::stage_phases(&timings);
    }

    let clustering = Clustering::from_raw(shared.roles_vec(), core_label, pairs);
    PpScanOutput {
        clustering,
        timings,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pscan::pscan;
    use ppscan_graph::gen;

    fn assert_matches_pscan(g: &CsrGraph, eps: f64, mu: usize, cfg: &PpScanConfig) {
        let p = ScanParams::new(eps, mu);
        let expected = pscan(g, p).clustering;
        let got = ppscan(g, p, cfg).clustering;
        assert_eq!(
            got, expected,
            "ppSCAN({cfg:?}) != pSCAN at eps={eps} mu={mu}"
        );
    }

    #[test]
    fn golden_example_all_kernels() {
        let g = gen::scan_paper_example();
        for kernel in Kernel::ALL.into_iter().filter(|k| k.available()) {
            let cfg = PpScanConfig::with_threads(2).kernel(kernel);
            assert_matches_pscan(&g, 0.7, 2, &cfg);
        }
    }

    #[test]
    fn structured_graphs_parameter_grid() {
        let cfg = PpScanConfig::with_threads(4);
        for g in [
            gen::complete(8),
            gen::star(10),
            gen::path(12),
            gen::cycle(9),
            gen::grid(4, 5),
            gen::clique_chain(5, 4),
        ] {
            for eps in [0.3, 0.6, 0.9] {
                for mu in [1, 2, 4] {
                    assert_matches_pscan(&g, eps, mu, &cfg);
                }
            }
        }
    }

    #[test]
    fn random_graphs_multiple_thread_counts() {
        for threads in [1usize, 2, 4] {
            let cfg = PpScanConfig::with_threads(threads);
            for seed in 0..3 {
                let g = gen::erdos_renyi(150, 900, seed);
                assert_matches_pscan(&g, 0.5, 3, &cfg);
            }
            let g = gen::roll(300, 12, 1);
            assert_matches_pscan(&g, 0.4, 4, &cfg);
        }
    }

    #[test]
    fn tiny_scheduler_threshold_forces_many_tasks() {
        // threshold 1 → one task per vertex with work: stresses barriers
        // and the lock-free phases.
        let cfg = PpScanConfig::with_threads(4).degree_threshold(1);
        let g = gen::planted_partition(3, 25, 0.6, 0.02, 5);
        assert_matches_pscan(&g, 0.5, 3, &cfg);
    }

    #[test]
    fn ablation_skipping_phase_one_is_equivalent() {
        let g = gen::planted_partition(3, 20, 0.7, 0.02, 9);
        let p = ScanParams::new(0.5, 3);
        let cfg = PpScanConfig::with_threads(2);
        let a = ppscan(&g, p, &cfg).clustering;
        let b = ppscan_ablation(&g, p, &cfg, true).clustering;
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_degenerate_graphs() {
        let cfg = PpScanConfig::with_threads(2);
        for g in [CsrGraph::empty(0), CsrGraph::empty(7), gen::path(2)] {
            let out = ppscan(&g, ScanParams::new(0.5, 2), &cfg);
            assert_eq!(out.clustering.num_vertices(), g.num_vertices());
        }
    }

    #[test]
    fn timings_cover_all_stages() {
        let g = gen::roll(200, 10, 2);
        let out = ppscan(&g, ScanParams::new(0.3, 3), &PpScanConfig::with_threads(2));
        assert!(out.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn observed_run_emits_full_report() {
        let g = gen::roll(300, 12, 4);
        let cfg = PpScanConfig::with_threads(2);
        let out = ppscan(&g, ScanParams::new(0.4, 3), &cfg);
        let r = &out.report;
        assert_eq!(r.algorithm, "ppscan");
        assert_eq!(r.threads, Some(2));
        assert_eq!(r.graph.unwrap().vertices, g.num_vertices() as u64);
        assert!(r.wall_nanos > 0);
        // All four stages present, span-sourced, with recorded tasks.
        for stage in crate::report::PPSCAN_STAGES {
            let p = r.phase(stage).unwrap_or_else(|| panic!("missing {stage}"));
            assert!(p.wall_nanos > 0, "{stage} wall time");
        }
        assert!(r.phases.iter().any(|p| p.tasks > 0));
        assert!(r.counters.compsim_invocations > 0);
        // Report phases and StageTimings come from the same spans.
        let back = crate::report::stage_timings_from(r);
        assert_eq!(back.prune, out.timings.prune);
        // Round-trips through JSON.
        let parsed = ppscan_obs::RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(&parsed, r);
    }

    #[test]
    fn autotuned_run_reports_decision_mix_and_is_exact() {
        let g = gen::roll(500, 24, 6);
        let p = ScanParams::new(0.4, 3);
        let expected = pscan(&g, p).clustering;
        let cfg = PpScanConfig::with_threads(2).kernel(Kernel::Autotuned);
        let out = ppscan(&g, p, &cfg);
        assert_eq!(out.clustering, expected);
        let c = &out.report.counters;
        assert!(c.autotune_samples > 0, "plan summary flows into the report");
        assert!(
            c.autotune_planned + c.autotune_fallback > 0,
            "every dispatch is attributed planned-or-fallback"
        );
        if c.autotune_buckets > 0 {
            assert_eq!(
                c.autotune_buckets,
                c.autotune_wins_merge
                    + c.autotune_wins_gallop
                    + c.autotune_wins_block
                    + c.autotune_wins_fesia
                    + c.autotune_wins_shuffle,
                "win mix partitions the planned buckets"
            );
        }
        // The report (with its new counters) round-trips through JSON.
        let parsed = ppscan_obs::RunReport::parse(&out.report.to_json_string()).unwrap();
        assert_eq!(&parsed, &out.report);
        // Reusing the precomp across runs answers identically.
        let shared_pre = Arc::new(crate::precomp::build_kernel_precomp(
            &g,
            p,
            Kernel::Autotuned,
            &AutotuneConfig::default(),
        ));
        let cfg2 = cfg.clone().precomp(Some(shared_pre));
        assert_eq!(ppscan(&g, p, &cfg2).clustering, expected);
    }

    #[test]
    fn deterministic_strategy_is_reproducible_for_autotuned() {
        // Seeded sampling + fixed bucket order: two SequentialDeterministic
        // runs agree exactly — clustering and sample counters alike (the
        // measured winners may differ between runs, but every candidate
        // kernel is exact, so outputs cannot).
        let g = gen::roll(400, 16, 9);
        let p = ScanParams::new(0.5, 3);
        let cfg = PpScanConfig::with_threads(1)
            .kernel(Kernel::Autotuned)
            .strategy(ppscan_sched::ExecutionStrategy::SequentialDeterministic);
        let a = ppscan(&g, p, &cfg);
        let b = ppscan(&g, p, &cfg);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(
            a.report.counters.autotune_samples,
            b.report.counters.autotune_samples
        );
        assert_eq!(
            a.report.counters.compsim_invocations > 0,
            b.report.counters.compsim_invocations > 0
        );
    }

    #[test]
    fn unobserved_run_still_reports_stage_walls() {
        let g = gen::roll(150, 10, 5);
        let cfg = PpScanConfig::with_threads(2).observe(false);
        let out = ppscan(&g, ScanParams::new(0.4, 3), &cfg);
        assert_eq!(out.report.counters.compsim_invocations, 0);
        for stage in crate::report::PPSCAN_STAGES {
            assert!(out.report.phase(stage).unwrap().wall_nanos > 0);
        }
    }
}
