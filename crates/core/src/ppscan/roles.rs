//! Role computing (paper Algorithm 3): similarity pruning, core checking
//! and core consolidating, each a barrier-separated parallel phase.

use super::shared::Shared;
use crate::result::Role;
use ppscan_graph::VertexId;
use ppscan_intersect::Similarity;
use ppscan_sched::WorkerPool;

/// Phase 1 — `PruneSim(u)` for every vertex in parallel.
///
/// Applies the degree-only similarity-predicate pruning to every
/// out-slot of `u` (each directed slot is written exclusively by its
/// source vertex: no conflicts) and initializes `role[u]` from the local
/// `sd`/`ed` bounds when they already decide it.
pub(crate) fn prune_sim(shared: &Shared<'_>, pool: &WorkerPool, degree_threshold: u64) {
    let g = shared.g;
    let n = g.num_vertices();
    let mu = shared.params.mu as i64;
    pool.run_weighted(
        n,
        degree_threshold,
        |u| g.degree(u) as u64,
        |range| {
            for u in range {
                let d_u = g.degree(u);
                let mut sd = 0i64;
                let mut ed = d_u as i64;
                for eo in g.neighbor_range(u) {
                    let v = g.edge_dst(eo);
                    let label = shared.params.epsilon.prune_by_degree(d_u, g.degree(v));
                    match label {
                        Similarity::Sim => {
                            shared.sim.set(eo, label);
                            sd += 1;
                        }
                        Similarity::NSim => {
                            shared.sim.set(eo, label);
                            ed -= 1;
                        }
                        Similarity::Unknown => {}
                    }
                }
                if sd >= mu {
                    shared.set_role(u, Role::Core);
                } else if ed < mu {
                    shared.set_role(u, Role::NonCore);
                }
                // Otherwise the role stays Unknown for the next phases.
            }
        },
    );
}

/// Phases 2 and 3 — `CheckCore(u)` / `ConsolidateCore(u)` for every
/// still-unknown vertex in parallel.
///
/// With `only_greater = true` this is the core-checking phase: `u` only
/// computes edges `(u, v)` with `u < v`, so every similarity is computed
/// at most once across all threads (Theorem 4.1) at the price of some
/// roles staying unknown. With `only_greater = false` it is the
/// consolidating phase, which finishes those roles; Theorem 4.1's
/// argument shows no edge is computed twice there either.
pub(crate) fn check_core(
    shared: &Shared<'_>,
    pool: &WorkerPool,
    degree_threshold: u64,
    only_greater: bool,
) {
    let g = shared.g;
    let n = g.num_vertices();
    pool.run_weighted(
        n,
        degree_threshold,
        // Algorithm 5: only vertices still requiring computation carry
        // weight.
        |u| {
            if shared.role_unknown(u) {
                g.degree(u) as u64
            } else {
                0
            }
        },
        |range| {
            // Per-task scratch reused across the range's vertices: the
            // slots the counting loop saw as Unknown.
            let mut pending: Vec<usize> = Vec::new();
            for u in range {
                if shared.role_unknown(u) {
                    check_core_vertex(shared, u, only_greater, &mut pending);
                }
            }
        },
    );
}

/// Algorithm 3 lines 21–33 for one vertex.
///
/// `pending` is caller-provided scratch (cleared here) listing the edge
/// slots the first loop saw as `Unknown`. The second loop walks exactly
/// those slots and **re-reads** each one: a label published by a
/// concurrent thread between the two loops is *counted* rather than
/// skipped. (The pre-fix code skipped every already-known slot in the
/// second loop, so a label that became known between the loops was never
/// folded into `sd`/`ed` and the final role decision could be wrong —
/// the consolidation race.) With the re-read, every edge slot of `u` is
/// counted exactly once, so after a full consolidating pass `sd == ed`
/// holds exactly.
fn check_core_vertex(
    shared: &Shared<'_>,
    u: VertexId,
    only_greater: bool,
    pending: &mut Vec<usize>,
) {
    let g = shared.g;
    let mu = shared.params.mu as i64;
    let mut sd = 0i64;
    let mut ed = g.degree(u) as i64;
    pending.clear();

    // First loop (lines 22–30): initialize the local bounds from labels
    // already decided by pruning, neighbors, or earlier phases; remember
    // the undecided slots.
    for eo in g.neighbor_range(u) {
        match shared.sim.get(eo) {
            Similarity::Sim => {
                sd += 1;
                if sd >= mu {
                    shared.set_role(u, Role::Core);
                    return;
                }
            }
            Similarity::NSim => {
                ed -= 1;
                if ed < mu {
                    shared.set_role(u, Role::NonCore);
                    return;
                }
            }
            Similarity::Unknown => pending.push(eo),
        }
    }

    // The racy window: between the counting loop above and the settling
    // loop below, concurrent threads may publish labels for the slots we
    // saw as Unknown. Under the adversarial strategy, dwell here.
    if !pending.is_empty() {
        shared.adversarial_pause(u);
    }
    shared.between_loops(u);

    // Second loop (lines 31–33): settle every slot the first loop left
    // open — computing it ourselves, or counting the label a concurrent
    // thread published in the meantime. During core checking
    // (`only_greater`) the `u < v` constraint still bounds what *we*
    // compute, but freshly-published labels are counted regardless of
    // direction: they are final, and ignoring them is exactly the race.
    for &eo in pending.iter() {
        let v = g.edge_dst(eo);
        let label = match shared.sim.get(eo) {
            Similarity::Unknown => {
                if only_greater && v <= u {
                    continue;
                }
                shared.comp_sim_both(u, v, eo)
            }
            published => {
                // Reaching this arm means the slot was `Unknown` in the
                // counting loop but carries a label now: another actor
                // published it inside the consolidation window. Under
                // the sequential reference schedule no concurrent
                // writer exists (the test-only hook plays one when
                // installed), so the window must be observably empty —
                // see DESIGN.md §9.4 for the structural proof.
                if shared.strict_invariants && !shared.has_between_hook() {
                    panic!(
                        "consolidation window must be empty under the sequential \
                         reference schedule: slot {eo} of vertex {u} changed \
                         between the counting and settling loops"
                    );
                }
                published
            }
        };
        match label {
            Similarity::Sim => {
                sd += 1;
                if sd >= mu {
                    shared.set_role(u, Role::Core);
                    return;
                }
            }
            Similarity::NSim => {
                ed -= 1;
                if ed < mu {
                    shared.set_role(u, Role::NonCore);
                    return;
                }
            }
            Similarity::Unknown => unreachable!("kernel always decides"),
        }
    }

    // All edges of u accounted: the bounds are exact and must decide —
    // unless the u < v constraint skipped edges, in which case the role
    // stays unknown for the consolidating phase.
    if !only_greater {
        // Every slot was counted exactly once (first loop or pending
        // walk), so the bounds coincide: sd == ed == |similar edges|.
        // Under the deterministic reference schedule this is promoted to
        // a hard assert — any violation is a counting bug, not schedule
        // noise.
        if shared.strict_invariants {
            assert_eq!(sd, ed, "exact bounds must coincide for vertex {u}");
        } else {
            debug_assert_eq!(sd, ed, "exact bounds must coincide");
        }
        shared.set_role(u, if sd >= mu { Role::Core } else { Role::NonCore });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScanParams;
    use crate::ppscan::shared::Shared;
    use crate::result::Role;
    use crate::verify;
    use ppscan_graph::gen;
    use ppscan_intersect::Kernel;
    use ppscan_sched::WorkerPool;

    /// Runs only the role-computing step and returns the roles.
    fn roles_of(g: &ppscan_graph::CsrGraph, eps: f64, mu: usize, threads: usize) -> Vec<Role> {
        let params = ScanParams::new(eps, mu);
        let shared = Shared::new(
            g,
            params,
            Kernel::MergeEarly,
            ppscan_sched::ExecutionStrategy::Parallel,
        );
        let pool = WorkerPool::new(threads);
        prune_sim(&shared, &pool, 64);
        check_core(&shared, &pool, 64, true);
        check_core(&shared, &pool, 64, false);
        shared.roles_vec()
    }

    #[test]
    fn all_roles_decided_after_consolidation() {
        // Theorem 4.2: roles complete — roles_vec panics otherwise.
        let g = gen::planted_partition(3, 20, 0.6, 0.04, 3);
        let roles = roles_of(&g, 0.5, 3, 4);
        assert_eq!(roles.len(), g.num_vertices());
    }

    #[test]
    fn roles_match_reference_on_grid() {
        let g = gen::roll(200, 10, 11);
        for eps in [0.2, 0.5, 0.8] {
            for mu in [1usize, 3, 6] {
                let expect = verify::reference_clustering(&g, ScanParams::new(eps, mu)).roles;
                for threads in [1usize, 4] {
                    assert_eq!(
                        roles_of(&g, eps, mu, threads),
                        expect,
                        "eps={eps} mu={mu} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_alone_decides_extremes() {
        // ε = 0.1 on a clique: every edge is degree-pruned Sim, so the
        // pruning phase alone fixes every role to Core.
        let g = gen::complete(8);
        let params = ScanParams::new(0.1, 2);
        let shared = Shared::new(
            &g,
            params,
            Kernel::MergeEarly,
            ppscan_sched::ExecutionStrategy::Parallel,
        );
        let pool = WorkerPool::new(2);
        prune_sim(&shared, &pool, 64);
        for u in g.vertices() {
            assert!(shared.is_core(u), "vertex {u} not decided by pruning");
        }
    }

    #[test]
    fn check_core_skips_decided_vertices() {
        // After pruning decided everything, the check/consolidate phases
        // must not invoke a single intersection.
        use ppscan_intersect::counters::CounterScope;
        let g = gen::complete(10);
        let params = ScanParams::new(0.1, 2);
        let shared = Shared::new(
            &g,
            params,
            Kernel::MergeEarly,
            ppscan_sched::ExecutionStrategy::Parallel,
        );
        let pool = WorkerPool::new(2);
        prune_sim(&shared, &pool, 64);
        let scope = CounterScope::new();
        let (delta, _) = scope.measure(|| {
            check_core(&shared, &pool, 64, true);
            check_core(&shared, &pool, 64, false);
        });
        assert_eq!(delta.compsim_invocations, 0);
    }

    #[test]
    fn label_published_in_consolidation_window_is_counted() {
        // Deterministic schedule-injection regression for the
        // consolidation race: a concurrent thread publishes a similarity
        // label in the window between `check_core_vertex`'s counting loop
        // and its settling loop. The pre-fix settling loop skipped every
        // already-known slot, so the published label was never folded
        // into `sd`/`ed`: on this graph (K5, ε = 0.5, µ = 4, every edge
        // similar, so vertex 0 is exactly-borderline Core) that left
        // `sd = 3 ≠ ed = 4` — a wrong NonCore role, caught by the
        // `sd == ed` invariant. The fixed loop re-reads the slot and
        // counts the published label, deciding Core.
        use ppscan_sched::ExecutionStrategy;
        let g = gen::complete(5);
        let params = ScanParams::new(0.5, 4);
        let mut shared = Shared::new(&g, params, Kernel::MergeEarly, ExecutionStrategy::Parallel);
        let eo = g.edge_offset(0, 1).unwrap();
        let rev = g.edge_offset(1, 0).unwrap();
        shared.between_loops_hook = Some(Box::new(move |sim, u| {
            if u == 0 {
                // The "concurrent thread": CompSim(1, 0) publishing both
                // directed slots, exactly inside the racy window.
                sim.set(eo, ppscan_intersect::Similarity::Sim);
                sim.set(rev, ppscan_intersect::Similarity::Sim);
            }
        }));
        let mut pending = Vec::new();
        check_core_vertex(&shared, 0, /*only_greater=*/ false, &mut pending);
        assert!(
            shared.is_core(0),
            "borderline core vertex must count the label published in the window"
        );
    }

    #[test]
    fn consolidation_window_sweep_counts_any_published_slot() {
        // Exhaustive sweep of the publication point: for *every* neighbor
        // slot of the borderline vertex, a simulated concurrent thread
        // publishes that slot's label inside the consolidation window.
        // The settling loop must fold the published label into the
        // bounds regardless of which slot raced — on K5 with ε = 0.5,
        // µ = 4 the decision is Core every time. The same scenario is
        // checked over *all* interleavings (not just the hook-injected
        // one) by `ppscan-check`'s `simstore-publish` and
        // `pending-slot-invariant` scenarios.
        use ppscan_sched::ExecutionStrategy;
        let g = gen::complete(5);
        let slots: Vec<usize> = g.neighbor_range(0).collect();
        for (i, &eo) in slots.iter().enumerate() {
            let params = ScanParams::new(0.5, 4);
            let mut shared =
                Shared::new(&g, params, Kernel::MergeEarly, ExecutionStrategy::Parallel);
            let v = g.edge_dst(eo);
            let rev = g.edge_offset(v, 0).unwrap();
            shared.between_loops_hook = Some(Box::new(move |sim, u| {
                if u == 0 {
                    sim.set(eo, ppscan_intersect::Similarity::Sim);
                    sim.set(rev, ppscan_intersect::Similarity::Sim);
                }
            }));
            let mut pending = Vec::new();
            check_core_vertex(&shared, 0, /*only_greater=*/ false, &mut pending);
            assert!(
                shared.is_core(0),
                "slot {i} (edge offset {eo}): label published in the window must be counted"
            );
        }
    }

    #[test]
    fn modeled_task_order_sweep_matches_reference() {
        // `ExecutionStrategy::Modeled` runs the real phase pipeline on
        // the caller thread in an oracle-chosen task order. Sweeping
        // rotation permutations asserts the role computation is
        // insensitive to task order — the single-threaded counterpart of
        // what `ppscan-check` proves over true interleavings.
        use ppscan_sched::{modeled, ExecutionStrategy};
        let g = gen::planted_partition(2, 12, 0.7, 0.08, 11);
        let expect = verify::reference_clustering(&g, ScanParams::new(0.5, 3)).roles;
        let tasks_seen = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for shift in 0..6usize {
            let seen = tasks_seen.clone();
            let roles = modeled::with_oracle(
                move |n| {
                    seen.fetch_max(n, std::sync::atomic::Ordering::Relaxed);
                    (0..n).map(|i| (i + shift) % n.max(1)).collect()
                },
                || {
                    let shared = Shared::new(
                        &g,
                        ScanParams::new(0.5, 3),
                        Kernel::MergeEarly,
                        ExecutionStrategy::Modeled,
                    );
                    let pool = WorkerPool::with_strategy(2, ExecutionStrategy::Modeled);
                    // Low degree threshold so the phases split into
                    // several tasks and the rotation actually permutes.
                    prune_sim(&shared, &pool, 8);
                    check_core(&shared, &pool, 8, true);
                    check_core(&shared, &pool, 8, false);
                    shared.roles_vec()
                },
            );
            assert_eq!(roles, expect, "shift={shift}");
        }
        assert!(
            tasks_seen.load(std::sync::atomic::Ordering::Relaxed) > 1,
            "sweep must exercise a multi-task phase, otherwise rotations are vacuous"
        );
    }
}
