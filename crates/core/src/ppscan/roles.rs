//! Role computing (paper Algorithm 3): similarity pruning, core checking
//! and core consolidating, each a barrier-separated parallel phase.

use super::shared::Shared;
use crate::result::Role;
use ppscan_graph::VertexId;
use ppscan_intersect::Similarity;
use ppscan_sched::WorkerPool;

/// Phase 1 — `PruneSim(u)` for every vertex in parallel.
///
/// Applies the degree-only similarity-predicate pruning to every
/// out-slot of `u` (each directed slot is written exclusively by its
/// source vertex: no conflicts) and initializes `role[u]` from the local
/// `sd`/`ed` bounds when they already decide it.
pub(crate) fn prune_sim(shared: &Shared<'_>, pool: &WorkerPool, degree_threshold: u64) {
    let g = shared.g;
    let n = g.num_vertices();
    let mu = shared.params.mu as i64;
    pool.run_weighted(
        n,
        degree_threshold,
        |u| g.degree(u) as u64,
        |range| {
            for u in range {
                let d_u = g.degree(u);
                let mut sd = 0i64;
                let mut ed = d_u as i64;
                for eo in g.neighbor_range(u) {
                    let v = g.edge_dst(eo);
                    let label = shared.params.epsilon.prune_by_degree(d_u, g.degree(v));
                    match label {
                        Similarity::Sim => {
                            shared.sim.set(eo, label);
                            sd += 1;
                        }
                        Similarity::NSim => {
                            shared.sim.set(eo, label);
                            ed -= 1;
                        }
                        Similarity::Unknown => {}
                    }
                }
                if sd >= mu {
                    shared.set_role(u, Role::Core);
                } else if ed < mu {
                    shared.set_role(u, Role::NonCore);
                }
                // Otherwise the role stays Unknown for the next phases.
            }
        },
    );
}

/// Phases 2 and 3 — `CheckCore(u)` / `ConsolidateCore(u)` for every
/// still-unknown vertex in parallel.
///
/// With `only_greater = true` this is the core-checking phase: `u` only
/// computes edges `(u, v)` with `u < v`, so every similarity is computed
/// at most once across all threads (Theorem 4.1) at the price of some
/// roles staying unknown. With `only_greater = false` it is the
/// consolidating phase, which finishes those roles; Theorem 4.1's
/// argument shows no edge is computed twice there either.
pub(crate) fn check_core(
    shared: &Shared<'_>,
    pool: &WorkerPool,
    degree_threshold: u64,
    only_greater: bool,
) {
    let g = shared.g;
    let n = g.num_vertices();
    pool.run_weighted(
        n,
        degree_threshold,
        // Algorithm 5: only vertices still requiring computation carry
        // weight.
        |u| {
            if shared.role_unknown(u) {
                g.degree(u) as u64
            } else {
                0
            }
        },
        |range| {
            for u in range {
                if shared.role_unknown(u) {
                    check_core_vertex(shared, u, only_greater);
                }
            }
        },
    );
}

/// Algorithm 3 lines 21–33 for one vertex.
fn check_core_vertex(shared: &Shared<'_>, u: VertexId, only_greater: bool) {
    let g = shared.g;
    let mu = shared.params.mu as i64;
    let mut sd = 0i64;
    let mut ed = g.degree(u) as i64;

    // First loop (lines 22–30): initialize the local bounds from labels
    // already decided by pruning, neighbors, or earlier phases.
    for eo in g.neighbor_range(u) {
        match shared.sim.get(eo) {
            Similarity::Sim => {
                sd += 1;
                if sd >= mu {
                    shared.set_role(u, Role::Core);
                    return;
                }
            }
            Similarity::NSim => {
                ed -= 1;
                if ed < mu {
                    shared.set_role(u, Role::NonCore);
                    return;
                }
            }
            Similarity::Unknown => {}
        }
    }

    // Second loop (lines 31–33): compute the remaining unknown labels —
    // only the u < v ones during core checking.
    for eo in g.neighbor_range(u) {
        let v = g.edge_dst(eo);
        if only_greater && v <= u {
            continue;
        }
        if shared.sim.get(eo) != Similarity::Unknown {
            continue;
        }
        let label = shared.comp_sim_both(u, v, eo);
        match label {
            Similarity::Sim => {
                sd += 1;
                if sd >= mu {
                    shared.set_role(u, Role::Core);
                    return;
                }
            }
            Similarity::NSim => {
                ed -= 1;
                if ed < mu {
                    shared.set_role(u, Role::NonCore);
                    return;
                }
            }
            Similarity::Unknown => unreachable!("kernel always decides"),
        }
    }

    // All edges of u accounted: the bounds are exact and must decide —
    // unless the u < v constraint skipped edges, in which case the role
    // stays unknown for the consolidating phase.
    if !only_greater {
        // ed == sd here (every edge known), so sd < mu ⇒ NonCore.
        debug_assert_eq!(sd, ed, "exact bounds must coincide");
        shared.set_role(u, if sd >= mu { Role::Core } else { Role::NonCore });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScanParams;
    use crate::ppscan::shared::Shared;
    use crate::result::Role;
    use crate::verify;
    use ppscan_graph::gen;
    use ppscan_intersect::Kernel;
    use ppscan_sched::WorkerPool;

    /// Runs only the role-computing step and returns the roles.
    fn roles_of(g: &ppscan_graph::CsrGraph, eps: f64, mu: usize, threads: usize) -> Vec<Role> {
        let params = ScanParams::new(eps, mu);
        let shared = Shared::new(g, params, Kernel::MergeEarly);
        let pool = WorkerPool::new(threads);
        prune_sim(&shared, &pool, 64);
        check_core(&shared, &pool, 64, true);
        check_core(&shared, &pool, 64, false);
        shared.roles_vec()
    }

    #[test]
    fn all_roles_decided_after_consolidation() {
        // Theorem 4.2: roles complete — roles_vec panics otherwise.
        let g = gen::planted_partition(3, 20, 0.6, 0.04, 3);
        let roles = roles_of(&g, 0.5, 3, 4);
        assert_eq!(roles.len(), g.num_vertices());
    }

    #[test]
    fn roles_match_reference_on_grid() {
        let g = gen::roll(200, 10, 11);
        for eps in [0.2, 0.5, 0.8] {
            for mu in [1usize, 3, 6] {
                let expect = verify::reference_clustering(&g, ScanParams::new(eps, mu)).roles;
                for threads in [1usize, 4] {
                    assert_eq!(
                        roles_of(&g, eps, mu, threads),
                        expect,
                        "eps={eps} mu={mu} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_alone_decides_extremes() {
        // ε = 0.1 on a clique: every edge is degree-pruned Sim, so the
        // pruning phase alone fixes every role to Core.
        let g = gen::complete(8);
        let params = ScanParams::new(0.1, 2);
        let shared = Shared::new(&g, params, Kernel::MergeEarly);
        let pool = WorkerPool::new(2);
        prune_sim(&shared, &pool, 64);
        for u in g.vertices() {
            assert!(shared.is_core(u), "vertex {u} not decided by pruning");
        }
    }

    #[test]
    fn check_core_skips_decided_vertices() {
        // After pruning decided everything, the check/consolidate phases
        // must not invoke a single intersection.
        use ppscan_intersect::counters;
        let g = gen::complete(10);
        let params = ScanParams::new(0.1, 2);
        let shared = Shared::new(&g, params, Kernel::MergeEarly);
        let pool = WorkerPool::new(2);
        prune_sim(&shared, &pool, 64);
        let before = counters::snapshot();
        check_core(&shared, &pool, 64, true);
        check_core(&shared, &pool, 64, false);
        let delta = counters::snapshot().since(&before);
        assert_eq!(delta.compsim_invocations, 0);
    }
}
