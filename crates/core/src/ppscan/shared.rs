//! Shared lock-free state of a ppSCAN run: the graph, parameters, kernel,
//! the atomic per-edge similarity labels and the atomic per-vertex roles.

use crate::params::ScanParams;
use crate::result::Role;
use crate::simstore::SimStore;
use ppscan_graph::rng::SplitMix64;
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::{Kernel, KernelPrecomp, PrecompCtx, Similarity};
use ppscan_sched::ExecutionStrategy;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Test-only inter-loop publication hook (see `Shared::between_loops`).
#[cfg(test)]
pub(crate) type BetweenLoopsHook = Box<dyn Fn(&crate::simstore::SimStore, VertexId) + Sync>;

/// Atomic role encoding: `0 = Unknown`, `1 = Core`, `2 = NonCore`.
const ROLE_UNKNOWN: u8 = 0;
const ROLE_CORE: u8 = 1;
const ROLE_NONCORE: u8 = 2;

pub(crate) struct Shared<'g> {
    pub g: &'g CsrGraph,
    pub params: ScanParams,
    pub kernel: Kernel,
    /// How [`Shared::comp_sim_both`] locates the reverse directed slot
    /// (defaults to the precomputed index; see [`super::ReverseLookup`]).
    pub rev_lookup: super::ReverseLookup,
    /// Per-graph kernel precomputation (FESIA hashed layouts, measured
    /// autotune plan), when the configured kernel uses one. `None` for
    /// the classic kernels — the empty [`PrecompCtx`] costs nothing on
    /// their call path.
    pub precomp: Option<Arc<KernelPrecomp>>,
    pub sim: SimStore,
    /// Under the sequential-deterministic schedule no concurrent writer
    /// exists, so per-vertex invariants (`sd == ed` after the counting
    /// pass) hold *exactly* and are promoted from `debug_assert` to hard
    /// asserts.
    pub strict_invariants: bool,
    /// `Some(seed)` under [`ExecutionStrategy::AdversarialSeeded`]:
    /// enables seeded yield injection at phase-internal racy windows (see
    /// [`Shared::adversarial_pause`]).
    yield_seed: Option<u64>,
    /// Test-only seam at the inter-loop window of `check_core_vertex`
    /// (the same program point as [`Shared::adversarial_pause`]): lets a
    /// test deterministically play the role of a concurrent thread that
    /// publishes a similarity label between the counting loop and the
    /// settling loop. This is how the consolidation-race regression test
    /// constructs the hostile interleaving without depending on OS
    /// scheduling.
    #[cfg(test)]
    pub(crate) between_loops_hook: Option<BetweenLoopsHook>,
    role: Vec<AtomicU8>,
}

impl<'g> Shared<'g> {
    pub fn new(
        g: &'g CsrGraph,
        params: ScanParams,
        kernel: Kernel,
        strategy: ExecutionStrategy,
    ) -> Self {
        let n = g.num_vertices();
        let mut role = Vec::with_capacity(n);
        role.resize_with(n, || AtomicU8::new(ROLE_UNKNOWN));
        Self {
            g,
            params,
            kernel,
            rev_lookup: super::ReverseLookup::default(),
            precomp: None,
            sim: SimStore::new(g.num_directed_edges()),
            strict_invariants: strategy == ExecutionStrategy::SequentialDeterministic,
            yield_seed: match strategy {
                ExecutionStrategy::AdversarialSeeded { seed } => Some(seed),
                _ => None,
            },
            #[cfg(test)]
            between_loops_hook: None,
            role,
        }
    }

    /// Runs the test-only inter-loop seam for vertex `u` (no-op outside
    /// tests and when no hook is installed).
    #[inline]
    pub fn between_loops(&self, u: VertexId) {
        #[cfg(test)]
        if let Some(hook) = &self.between_loops_hook {
            hook(&self.sim, u);
        }
        let _ = u;
    }

    /// Whether the test-only inter-loop hook is installed. The hook
    /// plays the role of a concurrent publisher, so the sequential
    /// empty-consolidation-window assertion (see `check_core_vertex`)
    /// must stand down while it is active.
    #[inline]
    pub fn has_between_hook(&self) -> bool {
        #[cfg(test)]
        {
            self.between_loops_hook.is_some()
        }
        #[cfg(not(test))]
        {
            false
        }
    }

    /// Seeded yield injection at a racy window, keyed by the vertex being
    /// processed. The scheduler's own yield injection only perturbs task
    /// *boundaries*; real schedule bugs live at linearization points
    /// *inside* a task body — e.g. the gap between `CheckCore`'s counting
    /// loop and its settling loop, where a concurrent thread can publish a
    /// similarity label. Under [`ExecutionStrategy::AdversarialSeeded`]
    /// this widens such windows cooperatively, so hostile interleavings
    /// are reachable even on a single-core machine (where genuine
    /// preemption inside the window is vanishingly rare); under the other
    /// strategies it is a no-op.
    #[inline]
    pub fn adversarial_pause(&self, u: VertexId) {
        if let Some(seed) = self.yield_seed {
            let yields = SplitMix64::seed_from_u64(seed ^ u as u64).gen_index(32);
            for _ in 0..yields {
                std::thread::yield_now();
            }
        }
    }

    /// Whether `u`'s role is still undecided.
    #[inline]
    pub fn role_unknown(&self, u: VertexId) -> bool {
        self.role[u as usize].load(Ordering::Relaxed) == ROLE_UNKNOWN
    }

    /// Whether `u` is a (decided) core.
    #[inline]
    pub fn is_core(&self, u: VertexId) -> bool {
        self.role[u as usize].load(Ordering::Relaxed) == ROLE_CORE
    }

    /// Whether `u` is a (decided) non-core.
    #[inline]
    pub fn is_noncore(&self, u: VertexId) -> bool {
        self.role[u as usize].load(Ordering::Relaxed) == ROLE_NONCORE
    }

    /// Publishes `u`'s role.
    #[inline]
    pub fn set_role(&self, u: VertexId, r: Role) {
        let enc = match r {
            Role::Core => ROLE_CORE,
            Role::NonCore => ROLE_NONCORE,
        };
        self.role[u as usize].store(enc, Ordering::Relaxed);
    }

    /// Extracts the final role vector.
    ///
    /// # Panics
    /// Panics if any role is still unknown — Theorem 4.2 guarantees the
    /// consolidating phase decided every vertex.
    pub fn roles_vec(&self) -> Vec<Role> {
        self.role
            .iter()
            .enumerate()
            .map(|(u, r)| match r.load(Ordering::Relaxed) {
                ROLE_CORE => Role::Core,
                ROLE_NONCORE => Role::NonCore,
                _ => panic!("vertex {u} has undecided role after consolidation"),
            })
            .collect()
    }

    /// `CompSim(u, v)` for the slot `eo = e(u, v)`: runs the configured
    /// kernel and publishes the label at **both** directed slots
    /// (similarity value reuse, §3.2.1). The reverse offset comes from
    /// the graph's precomputed reverse-edge index in O(1) by default;
    /// [`super::ReverseLookup::BinarySearch`] restores the paper's
    /// O(log d) search in `v`'s sorted neighbors for ablations.
    pub fn comp_sim_both(&self, u: VertexId, v: VertexId, eo: usize) -> Similarity {
        let label = self.comp_sim_value(u, v);
        self.sim.set(eo, label);
        let rev = match self.rev_lookup {
            super::ReverseLookup::Index => self.g.rev_offset(eo),
            super::ReverseLookup::BinarySearch => self
                .g
                .edge_offset(v, u)
                .expect("undirected graph must contain the reverse edge"),
        };
        self.sim.set(rev, label);
        label
    }

    /// `CompSim(u, v)` publishing only `e(u, v)` (used by non-core
    /// clustering, where the reverse direction is never read again).
    pub fn comp_sim_forward(&self, u: VertexId, v: VertexId, eo: usize) -> Similarity {
        let label = self.comp_sim_value(u, v);
        self.sim.set(eo, label);
        label
    }

    fn comp_sim_value(&self, u: VertexId, v: VertexId) -> Similarity {
        let (nu, nv) = (self.g.neighbors(u), self.g.neighbors(v));
        let min_cn = self.params.min_cn(nu.len(), nv.len());
        let ctx = match &self.precomp {
            Some(pre) => PrecompCtx::new(pre, u, v),
            None => PrecompCtx::NONE,
        };
        self.kernel.check_pre(ctx, nu, nv, min_cn)
    }
}
