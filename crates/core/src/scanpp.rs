//! SCAN++-style baseline (Shiokawa, Fujiwara, Onizuka — VLDB'15),
//! reimplemented.
//!
//! SCAN++ exploits the observation that a vertex and its two-hop-away
//! neighbors share much of their neighborhood: it iterates over *pivots*,
//! gathers each pivot's **DTAR** (directly two-hop-away reachable
//! vertices — vertices sharing at least one neighbor with the pivot),
//! and evaluates whole pivot+DTAR batches at once so that every edge
//! similarity is computed exactly once and shared. The ppSCAN paper's
//! related work (§3.3) notes that "maintaining DTAR comes at a high
//! cost", and its evaluation (§1) reports SCAN++ exceeding 24 hours on
//! the twitter dataset.
//!
//! Reproduction notes (DESIGN.md §3): this version keeps the measurable
//! signature of SCAN++ rather than its full bookkeeping — per-pivot DTAR
//! materialization (the maintenance cost: one two-hop scan and a
//! sort/dedup per pivot), exactly-once similarity computation via
//! reverse-slot sharing (|E| `CompSim` calls: half of SCAN's 2|E|, more
//! than pSCAN's pruned count), and no min-max pruning. Roles and
//! clusters are exact; only the traversal order differs from SCAN.

use crate::params::ScanParams;
use crate::result::{Clustering, Role, NO_CLUSTER};
use crate::simstore::SimStore;
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::{Kernel, Similarity};
use ppscan_unionfind::UnionFind;

/// Runs the SCAN++-style baseline under instrumentation, returning the
/// clustering together with its [`ppscan_obs::RunReport`].
pub fn scanpp_report(g: &CsrGraph, params: ScanParams) -> (Clustering, ppscan_obs::RunReport) {
    crate::report::instrument("scanpp", g, params, || scanpp(g, params))
}

/// Runs the SCAN++-style baseline.
pub fn scanpp(g: &CsrGraph, params: ScanParams) -> Clustering {
    let n = g.num_vertices();
    let sim = SimStore::new(g.num_directed_edges());
    let mut role: Vec<Option<Role>> = vec![None; n];
    let mut dtar_buf: Vec<VertexId> = Vec::new();

    // Pivot loop: evaluate the pivot and its DTAR as one batch.
    for pivot in 0..n as VertexId {
        if role[pivot as usize].is_some() {
            continue;
        }
        // DTAR(pivot): vertices at distance exactly ≤ 2 sharing a
        // neighbor — materialized per pivot (SCAN++'s maintenance cost).
        dtar_buf.clear();
        for &v in g.neighbors(pivot) {
            dtar_buf.extend_from_slice(g.neighbors(v));
        }
        dtar_buf.sort_unstable();
        dtar_buf.dedup();

        check_vertex(g, &params, &sim, &mut role, pivot);
        // Batch evaluation: resolve every unvisited DTAR member now,
        // sharing the similarities cached by earlier members.
        for &w in dtar_buf.iter() {
            if role[w as usize].is_none() {
                check_vertex(g, &params, &sim, &mut role, w);
            }
        }
    }

    // Exact clustering from the fully-labeled similarity store.
    let roles: Vec<Role> = role.into_iter().map(Option::unwrap).collect();
    let mut uf = UnionFind::new(n);
    for u in 0..n as VertexId {
        if roles[u as usize] != Role::Core {
            continue;
        }
        for eo in g.neighbor_range(u) {
            let v = g.edge_dst(eo);
            if u < v && roles[v as usize] == Role::Core && sim.get(eo) == Similarity::Sim {
                uf.union(u, v);
            }
        }
    }
    let mut core_label = vec![NO_CLUSTER; n];
    let mut pairs: Vec<(VertexId, u32)> = Vec::new();
    for u in 0..n as VertexId {
        if roles[u as usize] != Role::Core {
            continue;
        }
        core_label[u as usize] = uf.find_root(u);
        for eo in g.neighbor_range(u) {
            let v = g.edge_dst(eo);
            if roles[v as usize] == Role::NonCore && sim.get(eo) == Similarity::Sim {
                pairs.push((v, core_label[u as usize]));
            }
        }
    }
    Clustering::from_raw(roles, core_label, pairs)
}

/// Computes every unknown incident similarity of `u` (shared to the
/// reverse slots) and fixes `u`'s role. No min-max pruning: SCAN++
/// decides roles from complete neighborhoods.
fn check_vertex(
    g: &CsrGraph,
    params: &ScanParams,
    sim: &SimStore,
    role: &mut [Option<Role>],
    u: VertexId,
) {
    let nu = g.neighbors(u);
    let mut similar = 0usize;
    for eo in g.neighbor_range(u) {
        let v = g.edge_dst(eo);
        let label = match sim.get(eo) {
            Similarity::Unknown => {
                let nv = g.neighbors(v);
                let label = Kernel::MergeEarly.check(nu, nv, params.min_cn(nu.len(), nv.len()));
                sim.set(eo, label);
                let rev = g.rev_offset(eo);
                sim.set(rev, label);
                label
            }
            l => l,
        };
        if label == Similarity::Sim {
            similar += 1;
        }
    }
    role[u as usize] = Some(if similar >= params.mu {
        Role::Core
    } else {
        Role::NonCore
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pscan::pscan;
    use ppscan_graph::gen;

    #[test]
    fn matches_pscan() {
        for g in [
            gen::scan_paper_example(),
            gen::clique_chain(5, 3),
            gen::erdos_renyi(120, 600, 3),
            gen::roll(200, 10, 9),
        ] {
            for eps in [0.3, 0.6, 0.8] {
                for mu in [2usize, 4] {
                    let p = ScanParams::new(eps, mu);
                    assert_eq!(scanpp(&g, p), pscan(&g, p).clustering, "eps={eps} mu={mu}");
                }
            }
        }
    }

    #[test]
    fn invocations_between_pscan_and_scan() {
        use ppscan_intersect::counters::CounterScope;
        let g = gen::planted_partition(4, 25, 0.5, 0.02, 5);
        let p = ScanParams::new(0.5, 3);

        let scope = CounterScope::new();
        let (delta, _) = scope.measure(|| scanpp(&g, p));
        let spp = delta.compsim_invocations;
        let scope = CounterScope::new();
        let (delta, _) = scope.measure(|| pscan(&g, p));
        let psc = delta.compsim_invocations;

        // Exactly-once sharing: |E| invocations, which exceeds pruned
        // pSCAN and undercuts exhaustive SCAN's 2|E|.
        assert_eq!(spp, g.num_edges() as u64);
        assert!(spp >= psc, "SCAN++ ({spp}) should not beat pSCAN ({psc})");
    }

    #[test]
    fn empty_graph() {
        let c = scanpp(&CsrGraph::empty(3), ScanParams::new(0.5, 2));
        assert_eq!(c.num_cores(), 0);
        assert_eq!(c.num_vertices(), 3);
    }
}
