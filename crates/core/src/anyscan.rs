//! anySCAN-style baseline (Mai et al., ICDE'17), reimplemented.
//!
//! anySCAN processes vertex blocks in parallel, growing clusters from
//! "super-nodes" with complex per-vertex state transitions; the paper
//! (§3.3) attributes its limited performance to dynamic memory allocation
//! in the expansion phase and (§6.1) observed it running out of memory on
//! the largest graphs.
//!
//! This reimplementation preserves the *performance-relevant shape* the
//! ppSCAN evaluation compares against rather than every state-machine
//! detail of the original (whose binary is unavailable — see DESIGN.md
//! §3): vertices are processed in fixed-size blocks; each worker checks
//! cores with early termination but **without** cross-thread similarity
//! reuse (duplicate computation across directions, as anySCAN's
//! block-local processing incurs); every block allocates fresh
//! local buffers (the dynamic-allocation overhead); and cluster merging
//! funnels through a mutex-protected table rather than a lock-free
//! union-find. Output is identical to SCAN; only the cost profile
//! differs.

use crate::params::ScanParams;
use crate::result::{Clustering, Role};
use crate::simstore::SimStore;
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::{Kernel, Similarity};
use ppscan_sched::WorkerPool;
use ppscan_unionfind::UnionFind;
use std::sync::Mutex;

/// Block size (vertices per unit of scheduled work), matching anySCAN's
/// block-oriented processing.
const BLOCK: usize = 1024;

/// Runs the anySCAN-style baseline under instrumentation, returning the
/// clustering together with its [`ppscan_obs::RunReport`].
pub fn anyscan_report(
    g: &CsrGraph,
    params: ScanParams,
    threads: usize,
) -> (Clustering, ppscan_obs::RunReport) {
    let (clustering, mut report) =
        crate::report::instrument("anyscan", g, params, || anyscan(g, params, threads));
    report.threads = Some(threads as u64);
    (clustering, report)
}

/// Runs the anySCAN-style baseline.
pub fn anyscan(g: &CsrGraph, params: ScanParams, threads: usize) -> Clustering {
    let pool = WorkerPool::new(threads);
    let n = g.num_vertices();
    let sim: SimStore = SimStore::new(g.num_directed_edges());
    let mu = params.mu;

    // Parallel block phase: determine roles; collect similar core-core
    // edges and core→non-core attachments into freshly allocated
    // per-block buffers, merged under a lock.
    #[derive(Default)]
    struct Merged {
        core_edges: Vec<(VertexId, VertexId)>,
        roles: Vec<(VertexId, Role)>,
    }
    let merged: Mutex<Merged> = Mutex::new(Merged::default());

    let blocks: Vec<std::ops::Range<u32>> = (0..n)
        .step_by(BLOCK)
        .map(|b| b as u32..((b + BLOCK).min(n)) as u32)
        .collect();
    pool.run_chunks(&blocks, |range| {
        // anySCAN's allocation overhead: fresh buffers per block.
        let mut local_roles: Vec<(VertexId, Role)> = Vec::new();
        let mut local_core_edges: Vec<(VertexId, VertexId)> = Vec::new();
        for u in range {
            let nu = g.neighbors(u);
            let mut similar_slots: Vec<usize> = Vec::with_capacity(nu.len());
            let mut sd = 0usize;
            let mut ed = nu.len();
            for eo in g.neighbor_range(u) {
                // No cross-direction reuse: each endpoint computes its
                // own copy of the similarity.
                let v = g.edge_dst(eo);
                let nv = g.neighbors(v);
                let min_cn = params.min_cn(nu.len(), nv.len());
                let label = Kernel::MergeEarly.check(nu, nv, min_cn);
                sim.set(eo, label);
                if label == Similarity::Sim {
                    sd += 1;
                    similar_slots.push(eo);
                } else {
                    ed -= 1;
                }
                // Early termination on the role decision only: the
                // similar edges found so far are still recorded.
                if sd >= mu || ed < mu {
                    // anySCAN keeps scanning to find all similar edges of
                    // cores; non-cores can stop.
                    if ed < mu {
                        break;
                    }
                }
            }
            if sd >= mu {
                // A core must know all its similar edges for expansion.
                for eo in g.neighbor_range(u) {
                    if sim.get(eo) != Similarity::Unknown {
                        continue;
                    }
                    let v = g.edge_dst(eo);
                    let nv = g.neighbors(v);
                    let min_cn = params.min_cn(nu.len(), nv.len());
                    let label = Kernel::MergeEarly.check(nu, nv, min_cn);
                    sim.set(eo, label);
                    if label == Similarity::Sim {
                        similar_slots.push(eo);
                    }
                }
                local_roles.push((u, Role::Core));
                for &eo in &similar_slots {
                    let v = g.edge_dst(eo);
                    local_core_edges.push((u, v));
                }
            } else {
                local_roles.push((u, Role::NonCore));
            }
        }
        let mut m = merged.lock().unwrap();
        m.roles.extend_from_slice(&local_roles);
        m.core_edges.extend_from_slice(&local_core_edges);
    });

    // Sequential merge phase (anySCAN's summarization step).
    let m = merged.into_inner().unwrap();
    let mut roles = vec![Role::NonCore; n];
    for (u, r) in m.roles {
        roles[u as usize] = r;
    }
    let mut uf = UnionFind::new(n);
    let mut attachments: Vec<(VertexId, u32)> = Vec::new();
    for (u, v) in m.core_edges {
        match roles[v as usize] {
            Role::Core => {
                uf.union(u, v);
            }
            Role::NonCore => attachments.push((v, u)),
        }
    }
    // Resolve attachment labels to final cluster roots.
    let pairs: Vec<(VertexId, u32)> = attachments
        .into_iter()
        .map(|(v, core)| (v, uf.find_root(core)))
        .collect();
    let core_label: Vec<u32> = (0..n as VertexId)
        .map(|u| {
            if roles[u as usize] == Role::Core {
                uf.find_root(u)
            } else {
                u32::MAX
            }
        })
        .collect();
    Clustering::from_raw(roles, core_label, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pscan::pscan;
    use ppscan_graph::gen;

    #[test]
    fn matches_pscan() {
        for g in [
            gen::scan_paper_example(),
            gen::clique_chain(4, 4),
            gen::planted_partition(3, 20, 0.7, 0.03, 2),
        ] {
            for eps in [0.4, 0.7] {
                for mu in [2usize, 3] {
                    let p = ScanParams::new(eps, mu);
                    assert_eq!(
                        anyscan(&g, p, 3),
                        pscan(&g, p).clustering,
                        "eps={eps} mu={mu}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicates_work_relative_to_ppscan() {
        // anySCAN recomputes both directions: strictly more invocations
        // than pSCAN's reuse-based count on a clustered graph.
        use ppscan_intersect::counters::CounterScope;
        let g = gen::planted_partition(4, 25, 0.6, 0.02, 3);
        let p = ScanParams::new(0.4, 3);
        let scope = CounterScope::new();
        let (delta, _) = scope.measure(|| anyscan(&g, p, 2));
        let any_inv = delta.compsim_invocations;
        let scope = CounterScope::new();
        let (delta, _) = scope.measure(|| pscan(&g, p));
        let pscan_inv = delta.compsim_invocations;
        assert!(
            any_inv > pscan_inv,
            "anySCAN {any_inv} vs pSCAN {pscan_inv} invocations"
        );
    }

    #[test]
    fn empty_graph() {
        let c = anyscan(&CsrGraph::empty(3), ScanParams::new(0.5, 2), 2);
        assert_eq!(c.num_cores(), 0);
    }
}
