//! SCAN-XP style baseline (Takahashi et al., NDA'17).
//!
//! SCAN-XP parallelizes SCAN on Xeon Phi by computing **all** structural
//! similarities exhaustively — thread-level parallelism over vertices,
//! instruction-level parallelism inside each intersection — with *no
//! pruning and no early termination*. Its workload is therefore
//! independent of ε, which is exactly the behaviour Figures 2/3 show
//! (flat runtime across ε, beaten by ppSCAN everywhere).
//!
//! Reproduction notes: similarities are computed once per undirected edge
//! (`u < v`) with the exhaustive merge count; roles then follow by
//! counting similar labels, and clustering reuses ppSCAN's wait-free
//! union-find machinery (the original uses an equivalent parallel
//! clustering).

use crate::params::ScanParams;
use crate::result::{Clustering, Role};
use crate::simstore::SimStore;
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_intersect::{merge, Similarity};
use ppscan_sched::WorkerPool;
use ppscan_unionfind::ConcurrentUnionFind;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Runs SCAN-XP under instrumentation, returning the clustering together
/// with its [`ppscan_obs::RunReport`] (span-sourced phases + counters).
pub fn scanxp_report(
    g: &CsrGraph,
    params: ScanParams,
    threads: usize,
) -> (Clustering, ppscan_obs::RunReport) {
    let (clustering, mut report) =
        crate::report::instrument("scanxp", g, params, || scanxp(g, params, threads));
    report.threads = Some(threads as u64);
    (clustering, report)
}

/// Runs the SCAN-XP style exhaustive parallel baseline.
pub fn scanxp(g: &CsrGraph, params: ScanParams, threads: usize) -> Clustering {
    let pool = WorkerPool::new(threads);
    let n = g.num_vertices();
    let sim: SimStore = SimStore::new(g.num_directed_edges());

    // Exhaustive similarity computation, one pass over undirected edges.
    pool.run_weighted(
        n,
        ppscan_sched::DEFAULT_DEGREE_THRESHOLD,
        |u| g.degree(u) as u64,
        |range| {
            for u in range {
                let nu = g.neighbors(u);
                for eo in g.neighbor_range(u) {
                    let v = g.edge_dst(eo);
                    if v <= u {
                        continue;
                    }
                    let nv = g.neighbors(v);
                    let min_cn = params.min_cn(nu.len(), nv.len());
                    // No early termination: full merge count.
                    let label = if merge::count_full(nu, nv) + 2 >= min_cn {
                        Similarity::Sim
                    } else {
                        Similarity::NSim
                    };
                    sim.set(eo, label);
                    let rev = g.rev_offset(eo);
                    sim.set(rev, label);
                }
            }
        },
    );

    // Roles by counting similar neighbors.
    let roles_atomic: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    pool.run_vertices(n, |u| {
        let similar = g
            .neighbor_range(u)
            .filter(|&eo| sim.get(eo) == Similarity::Sim)
            .count();
        roles_atomic[u as usize].store(similar as u32, Ordering::Relaxed);
    });
    let roles: Vec<Role> = roles_atomic
        .iter()
        .map(|s| {
            if s.load(Ordering::Relaxed) as usize >= params.mu {
                Role::Core
            } else {
                Role::NonCore
            }
        })
        .collect();

    // Clustering: union similar core-core edges, then attach non-cores.
    let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(n);
    pool.run_vertices(n, |u| {
        if roles[u as usize] != Role::Core {
            return;
        }
        for eo in g.neighbor_range(u) {
            let v = g.edge_dst(eo);
            if u < v && roles[v as usize] == Role::Core && sim.get(eo) == Similarity::Sim {
                uf.union(u, v);
            }
        }
    });
    let pairs: Mutex<Vec<(VertexId, u32)>> = Mutex::new(Vec::new());
    pool.run_vertices(n, |u| {
        if roles[u as usize] != Role::Core {
            return;
        }
        let root = uf.find_root(u);
        let mut local = Vec::new();
        for eo in g.neighbor_range(u) {
            let v = g.edge_dst(eo);
            if roles[v as usize] == Role::NonCore && sim.get(eo) == Similarity::Sim {
                local.push((v, root));
            }
        }
        if !local.is_empty() {
            pairs.lock().unwrap().append(&mut local);
        }
    });

    let core_label: Vec<u32> = (0..n as VertexId)
        .map(|u| {
            if roles[u as usize] == Role::Core {
                uf.find_root(u)
            } else {
                u32::MAX
            }
        })
        .collect();
    Clustering::from_raw(roles, core_label, pairs.into_inner().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pscan::pscan;
    use ppscan_graph::gen;

    #[test]
    fn matches_pscan() {
        for g in [
            gen::scan_paper_example(),
            gen::clique_chain(5, 3),
            gen::erdos_renyi(100, 500, 11),
        ] {
            for eps in [0.3, 0.6, 0.8] {
                for mu in [2usize, 4] {
                    let p = ScanParams::new(eps, mu);
                    assert_eq!(
                        scanxp(&g, p, 3),
                        pscan(&g, p).clustering,
                        "eps={eps} mu={mu}"
                    );
                }
            }
        }
    }

    #[test]
    fn workload_independent_of_epsilon() {
        // SCAN-XP scans the same number of elements regardless of ε —
        // the no-pruning signature of Figures 2/3.
        use ppscan_intersect::counters::CounterScope;
        let g = gen::roll(300, 10, 4);
        let mut scanned = Vec::new();
        for eps in [0.2, 0.8] {
            let scope = CounterScope::new();
            let (delta, _) = scope.measure(|| scanxp(&g, ScanParams::new(eps, 5), 2));
            scanned.push(delta.elements_scanned);
        }
        assert_eq!(scanned[0], scanned[1]);
    }

    #[test]
    fn empty_graph() {
        let c = scanxp(&CsrGraph::empty(4), ScanParams::new(0.5, 2), 2);
        assert_eq!(c.num_cores(), 0);
    }
}
