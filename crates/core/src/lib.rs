//! # ppscan-core
//!
//! Structural graph clustering algorithms: the paper's parallel **ppSCAN**
//! contribution and every baseline its evaluation compares against.
//!
//! | Algorithm | Paper | Entry point |
//! |---|---|---|
//! | SCAN (BFS expansion, exhaustive similarities) | Xu et al., KDD'07; Algorithm 1 | [`scan::scan`] |
//! | pSCAN (min-max pruning, similarity reuse, union-find) | Chang et al., ICDE'16; Algorithm 2 | [`pscan::pscan`] |
//! | **ppSCAN** (multi-phase lock-free parallel) | this paper; Algorithms 3–5 | [`ppscan::ppscan`] |
//! | SCAN-XP style (exhaustive parallel, no pruning) | Takahashi et al., NDA'17 | [`scanxp::scanxp`] |
//! | anySCAN style (block-parallel, allocation-heavy) | Mai et al., ICDE'17 | [`anyscan::anyscan`] |
//! | SCAN++ style (pivot + DTAR batches) | Shiokawa et al., VLDB'15 | [`scanpp::scanpp`] |
//!
//! All algorithms consume a [`ppscan_graph::CsrGraph`] and
//! [`params::ScanParams`], and produce the same canonical
//! [`result::Clustering`], so they are directly differential-testable —
//! `verify::check_clustering` additionally validates any result against
//! the SCAN definitions (2.1–2.10) from first principles.
//!
//! ```
//! use ppscan_core::prelude::*;
//! use ppscan_graph::gen;
//!
//! let g = gen::scan_paper_example();
//! let params = ScanParams::new(0.7, 2);
//!
//! // Sequential baseline and the parallel contribution agree:
//! let seq = pscan::pscan(&g, params).clustering;
//! let par = ppscan::ppscan(&g, params, &PpScanConfig::with_threads(2)).clustering;
//! assert_eq!(seq, par);
//! assert_eq!(seq.num_clusters(), 2);
//! ```

pub mod anyscan;
pub mod params;
pub mod ppscan;
pub mod precomp;
pub mod pscan;
pub mod race_fixtures;
pub mod report;
pub mod result;
pub mod scan;
pub mod scanpp;
pub mod scanxp;
pub mod simstore;
pub mod stress;
pub mod timing;
pub mod verify;

/// Convenient glob import for the public API.
pub mod prelude {
    pub use crate::params::ScanParams;
    pub use crate::ppscan::{self, PpScanConfig, ReverseLookup};
    pub use crate::pscan;
    pub use crate::report;
    pub use crate::result::{Clustering, Role, UnclusteredClass};
    pub use crate::scan;
    pub use crate::scanxp;
    pub use crate::verify;
    pub use ppscan_intersect::Kernel;
    pub use ppscan_obs::{FigureReport, RunReport};
}

#[cfg(test)]
mod differential_tests;
