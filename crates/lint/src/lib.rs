//! Workspace concurrency-policy lint (std-only, no syntax tree): scans
//! `crates/*/src/**.rs` line by line and enforces three policies that
//! encode lessons from earlier PRs.
//!
//! 1. **ordering-audit** — `Ordering::` call sites must be covered by
//!    the DESIGN §9.3 memory-ordering audit. The audit table is the
//!    contract: for every file it names, *each* non-test `Ordering::`
//!    site must sit in a function the table lists. Files the table does
//!    not name may use atomics only when they appear in
//!    [`ORDERING_ALLOW`] with a recorded reason — so introducing
//!    atomics into a new file is an explicit, reviewed act (extend the
//!    audit table or the allowlist), never an accident.
//! 2. **safety-comment** — every `unsafe` keyword must be preceded (or
//!    accompanied) by a `// SAFETY:` comment or a `# Safety` doc
//!    section explaining why the contract holds.
//! 3. **global-static-atomic** — no new module-scope `static` atomics:
//!    process-global mutable state is how the PR 1 counter cross-talk
//!    bug happened. Function-local statics and `#[cfg(test)]` items are
//!    exempt; deliberate globals live in [`STATIC_ATOMIC_ALLOW`] with a
//!    reason.
//!
//! The scanner is a deliberately simple line-based pass (comment and
//! string stripping, brace-depth tracking, nearest-enclosing-`fn`
//! attribution). It is tuned to this workspace's idiom — rustfmt'd
//! code, test modules as trailing `#[cfg(test)] mod tests` blocks — and
//! prefers a clear false positive (fix: annotate or allowlist) over a
//! silent miss.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Files with `Ordering::` call sites outside the DESIGN §9.3 audit
/// table's scope, each with the reason the policy tolerates them.
/// Paths are workspace-relative. Extend this list (with a reason) or
/// the audit table itself when introducing atomics into a new file.
pub const ORDERING_ALLOW: &[(&str, &str)] = &[
    (
        "crates/unionfind/src/substrate.rs",
        "substrate shim forwards caller-chosen orderings to std/model atomics verbatim",
    ),
    (
        "crates/unionfind/src/traced.rs",
        "traced substrate forwards orderings and mirrors them into the race detector",
    ),
    (
        "crates/unionfind/src/seq.rs",
        "Cell-based sequential baseline; Ordering appears only in substrate trait impls",
    ),
    (
        "crates/obs/src/race.rs",
        "the race detector itself: orderings classify recorded edges, they are not protocol sites",
    ),
    (
        "crates/obs/src/span.rs",
        "observability counters: monotone telemetry, Relaxed by design, no payload publication",
    ),
    (
        "crates/obs/src/hist.rs",
        "lock-free histogram: monotone counter buckets, Relaxed by design",
    ),
    (
        "crates/obs/src/registry.rs",
        "metrics registry: sharded monotone counters and last-write-wins gauges",
    ),
    (
        "crates/obs/src/events.rs",
        "flight recorder ring: seqlock-style slots audited in DESIGN §12",
    ),
    (
        "crates/obs/src/propagate.rs",
        "ambient-context handoff: SeqCst publication, no lock-free protocol",
    ),
    (
        "crates/intersect/src/counters.rs",
        "kernel invocation counters: monotone telemetry, Relaxed by design",
    ),
    (
        "crates/gsindex/src/build.rs",
        "parallel index build: fetch_add work claiming behind a pool join barrier",
    ),
    (
        "crates/gsindex/src/simvalue.rs",
        "packed similarity cells: idempotent at-most-once publication, same argument as simstore.rs",
    ),
    (
        "crates/sched/src/lib.rs",
        "the worker pool: deque/condvar protocol audited in DESIGN §8, exercised under the detector",
    ),
    (
        "crates/serve/src/snapshot.rs",
        "snapshot cell pin/publish/retire protocol: modeled exhaustively by ppscan-check (snapshot-pin-publish)",
    ),
    (
        "crates/serve/src/server.rs",
        "serving loop lifecycle flags behind mutex/condvar; run under the detector in tests",
    ),
    (
        "crates/core/src/scanxp.rs",
        "scan-xp shared frontier cursor: fetch_add claiming behind a join barrier",
    ),
    (
        "crates/core/src/ppscan/cluster.rs",
        "cluster-core stage: fetch_add claiming plus unionfind calls audited in §9.3",
    ),
    (
        "crates/core/src/ppscan/shared.rs",
        "pipeline shared state: fetch_add claiming behind phase barriers",
    ),
    (
        "crates/core/src/ppscan/roles.rs",
        "role assignment: idempotent same-value stores behind phase barriers",
    ),
    (
        "crates/core/src/race_fixtures.rs",
        "deliberately mis-ordered detector fixtures; the weak orderings are the point",
    ),
    (
        "crates/check/src/scenarios.rs",
        "model-checker scenarios drive the substrate with the orderings under test",
    ),
    (
        "crates/bench/src/bin/soak.rs",
        "soak harness stop flag: single bool, Relaxed poll",
    ),
];

/// Module-scope static atomics the policy tolerates, as
/// `(file, static name, reason)`.
pub const STATIC_ATOMIC_ALLOW: &[(&str, &str, &str)] = &[
    (
        "crates/obs/src/race.rs",
        "ACTIVE",
        "the detector's own is-a-session-active latch; sessions are serialized by the GATE mutex",
    ),
    (
        "crates/obs/src/registry.rs",
        "NEXT_SHARD",
        "round-robin shard hint for counter striping; value is a pure performance hint",
    ),
];

/// One policy violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Policy id: `ordering-audit`, `safety-comment`, or
    /// `global-static-atomic`.
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The parsed §9.3 audit table: for each file it names (by basename,
/// e.g. `concurrent.rs`), the set of backticked identifiers its rows
/// mention — function names (and incidentally method names), matched
/// against the enclosing function of each `Ordering::` site.
#[derive(Debug, Default, Clone)]
pub struct AuditTable {
    pub audited: BTreeMap<String, BTreeSet<String>>,
}

impl AuditTable {
    /// True when the table claims exhaustive coverage of `basename`.
    pub fn covers_file(&self, basename: &str) -> bool {
        self.audited.contains_key(basename)
    }

    /// True when `func` in `basename` appears in some row.
    pub fn covers_site(&self, basename: &str, func: &str) -> bool {
        self.audited
            .get(basename)
            .is_some_and(|funcs| funcs.contains(func))
    }
}

/// Extracts the §9.3 audit table from DESIGN.md: rows are the `|`-lines
/// between the `### 9.3` heading and the next heading; the first
/// backticked token of a row's Site cell ending in `.rs` names the
/// file, every other ident-like backticked token in that cell is taken
/// as an audited function name.
pub fn parse_audit(design: &str) -> AuditTable {
    let mut table = AuditTable::default();
    let mut in_section = false;
    for line in design.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("###") {
            in_section = trimmed.contains("9.3");
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let site_cell = match trimmed.trim_start_matches('|').split('|').next() {
            Some(c) => c,
            None => continue,
        };
        let mut file: Option<String> = None;
        let mut rest = site_cell;
        while let Some(start) = rest.find('`') {
            let after = &rest[start + 1..];
            let Some(len) = after.find('`') else { break };
            let token = &after[..len];
            rest = &after[len + 1..];
            if token.ends_with(".rs") {
                file.get_or_insert_with(|| token.to_string());
            } else if let Some(f) = &file {
                // Keep the leading identifier of tokens like
                // `find_root`: or `parent[x]`.
                let ident: String = token
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !ident.is_empty() && !ident.chars().next().unwrap().is_numeric() {
                    table.audited.entry(f.clone()).or_default().insert(ident);
                }
            }
        }
        // A file named with no identifier tokens still marks the file
        // as audited (header rows contribute nothing: no `.rs` token).
        if let Some(f) = file {
            table.audited.entry(f).or_default();
        }
    }
    table
}

/// Strips comments and the contents of string/char literals from the
/// whole file, preserving line structure (output line i corresponds to
/// source line i), so brace counting and keyword scans don't trip on
/// them. A small state machine, not a full lexer: it tracks line and
/// block comments, plain and raw strings (including multi-line and
/// `\`-continued ones), char literals, and lifetimes.
fn strip_lines(source: &str) -> Vec<String> {
    enum S {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let b = source.as_bytes();
    let mut lines = Vec::new();
    let mut cur = String::new();
    let mut s = S::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            lines.push(std::mem::take(&mut cur));
            if matches!(s, S::LineComment) {
                s = S::Code;
            }
            i += 1;
            continue;
        }
        match s {
            S::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    s = S::LineComment;
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    s = S::BlockComment(1);
                    i += 2;
                } else if c == b'"' {
                    cur.push('"');
                    s = S::Str;
                    i += 1;
                } else if c == b'r'
                    && (i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_'))
                {
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        cur.push('"');
                        s = S::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.push('r');
                        i += 1;
                    }
                } else if c == b'\'' {
                    if b.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: skip to the close quote.
                        let mut j = i + 2;
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                        cur.push_str("' '");
                        i = j + 1;
                    } else if b.get(i + 2) == Some(&b'\'') {
                        cur.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime.
                        cur.push('\'');
                        i += 1;
                    }
                } else {
                    cur.push(c as char);
                    i += 1;
                }
            }
            S::LineComment => i += 1,
            S::BlockComment(d) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    s = if d == 1 {
                        S::Code
                    } else {
                        S::BlockComment(d - 1)
                    };
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    s = S::BlockComment(d + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            S::Str => {
                if c == b'\\' {
                    // Keep \-before-newline visible to the outer line
                    // splitter so line numbers stay aligned.
                    i += if b.get(i + 1) == Some(&b'\n') { 1 } else { 2 };
                } else if c == b'"' {
                    cur.push('"');
                    s = S::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            S::RawStr(h) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut k = 0;
                    while k < h && b.get(j) == Some(&b'#') {
                        k += 1;
                        j += 1;
                    }
                    if k == h {
                        cur.push('"');
                        s = S::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// First identifier after `pat` in `code`, if any.
fn ident_after<'a>(code: &'a str, pat: &str) -> Option<&'a str> {
    let at = code.find(pat)? + pat.len();
    let rest = code[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then_some(&rest[..end])
}

/// Lints one file's source. `rel_path` is the workspace-relative path
/// used in messages and allowlist matching.
pub fn lint_source(rel_path: &str, source: &str, audit: &AuditTable) -> Vec<Violation> {
    let basename = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let ordering_allowed = ORDERING_ALLOW.iter().any(|(f, _)| *f == rel_path);
    let lines: Vec<&str> = source.lines().collect();
    let mut code = strip_lines(source);
    code.truncate(lines.len());
    let mut violations = Vec::new();

    // Pass 1: region tracking. depth[i] = brace depth at the START of
    // line i; test_region[i] = line i sits inside a #[cfg(test)] item;
    // enclosing_fn[i] = name of the innermost function open at line i.
    let mut depth = 0i32;
    let mut depths = Vec::with_capacity(lines.len());
    let mut test_region = vec![false; lines.len()];
    let mut enclosing_fn: Vec<Option<String>> = vec![None; lines.len()];
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut test_until: Option<i32> = None;
    let mut pending_test = false;
    for (i, c) in code.iter().enumerate() {
        depths.push(depth);
        if test_until.is_some() {
            test_region[i] = true;
        }
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            pending_test = true;
            test_region[i] = true;
        }
        if let Some(name) = ident_after(c, "fn ") {
            pending_fn = Some(name.to_string());
        }
        enclosing_fn[i] = fn_stack.last().map(|(n, _)| n.clone()).or_else(|| {
            // A one-line `fn f() { ... }` or the declaration line
            // itself attributes to the declared function.
            pending_fn.clone()
        });
        for ch in c.chars() {
            match ch {
                '{' => {
                    if pending_test {
                        test_until = Some(depth);
                        pending_test = false;
                    }
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if fn_stack.last().is_some_and(|(_, d)| *d == depth) {
                        fn_stack.pop();
                    }
                    if test_until == Some(depth) {
                        test_until = None;
                    }
                }
                ';' => {
                    // A declaration ended without a body.
                    pending_fn = None;
                    pending_test = false;
                }
                _ => {}
            }
        }
    }

    // Pass 2: the three policies.
    for (i, c) in code.iter().enumerate() {
        let lineno = i + 1;

        if c.contains("Ordering::") && !test_region[i] {
            if audit.covers_file(basename) {
                let func = enclosing_fn[i].as_deref().unwrap_or("");
                if !audit.covers_site(basename, func) {
                    violations.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "ordering-audit",
                        message: format!(
                            "Ordering:: site in `{}` of audited file {basename} has no \
                             DESIGN §9.3 audit row — add one",
                            if func.is_empty() {
                                "<module scope>"
                            } else {
                                func
                            },
                        ),
                    });
                }
            } else if !ordering_allowed {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "ordering-audit",
                    message: format!(
                        "{basename} uses Ordering:: but is neither audited in DESIGN §9.3 \
                         nor allowlisted in ppscan-lint's ORDERING_ALLOW — do one or the other",
                    ),
                });
            }
        }

        if let Some(col) = find_unsafe(c) {
            let _ = col;
            if !has_safety_comment(&lines, i) {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "safety-comment",
                    message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                              section) justifying it"
                        .to_string(),
                });
            }
        }

        if depths[i] == 0 && !test_region[i] && is_static_atomic(c) {
            let name = ident_after(c, "static ").unwrap_or("?");
            let allowed = STATIC_ATOMIC_ALLOW
                .iter()
                .any(|(f, n, _)| *f == rel_path && *n == name);
            if !allowed {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "global-static-atomic",
                    message: format!(
                        "process-global static atomic `{name}` (the PR 1 counter-cross-talk \
                         class) — pass state explicitly, or allowlist it with a reason in \
                         ppscan-lint's STATIC_ATOMIC_ALLOW",
                    ),
                });
            }
        }
    }
    violations
}

/// Position of an `unsafe` keyword token in stripped code, if any.
fn find_unsafe(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(at) = code[from..].find("unsafe") {
        let at = from + at;
        let before_ok = code[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = code[at + 6..].chars().next();
        let after_ok = after.is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 6;
    }
    None
}

/// True when line `i` (containing `unsafe`) carries or is preceded by a
/// SAFETY justification: a `// SAFETY:` on the same line, or a
/// contiguous run of comment/attribute/doc lines directly above that
/// mentions `SAFETY:` or `# Safety`.
fn has_safety_comment(lines: &[&str], i: usize) -> bool {
    let marker = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if marker(lines[i]) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
            if marker(t) {
                return true;
            }
            continue;
        }
        // A contiguous run of `unsafe impl`s (Send + Sync for the same
        // type) shares one justification block above the run.
        if t.starts_with("unsafe impl") || t.starts_with("pub unsafe impl") {
            continue;
        }
        break;
    }
    false
}

/// True when stripped code declares a static of an atomic type.
fn is_static_atomic(code: &str) -> bool {
    let t = code.trim_start();
    let after = if let Some(r) = t.strip_prefix("pub static ") {
        r
    } else if let Some(r) = t.strip_prefix("static ") {
        r
    } else if let Some(r) = t.strip_prefix("pub(crate) static ") {
        r
    } else {
        return None::<()>.is_some();
    };
    // `NAME: Type` — atomic iff the type path mentions an Atomic* type.
    after
        .split_once(':')
        .is_some_and(|(_, ty)| ty.contains("Atomic"))
}

/// Recursively collects `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**.rs` file under the workspace `root`
/// against the audit table parsed from `root/DESIGN.md`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let design = std::fs::read_to_string(root.join("DESIGN.md"))?;
    let audit = parse_audit(&design);
    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates"))? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        violations.extend(lint_source(&rel, &source, &audit));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN_FIXTURE: &str = r#"
### 9.3 Memory-ordering audit (per call site)

| Site | Ordering | Verdict | Why safe (or not) | Covered by |
|---|---|---|---|---|
| `proto.rs` `find_root`: load `parent[x]` | `Relaxed` | sound | because | `scenario-a` |
| `proto.rs` `union`: link `compare_exchange` | `AcqRel`/`Relaxed` | sound | because | `scenario-a` |

### 9.4 Something else

| `other.rs` `not_in_scope` | `Relaxed` | - | - | - |
"#;

    fn audit() -> AuditTable {
        parse_audit(DESIGN_FIXTURE)
    }

    #[test]
    fn audit_table_parses_files_and_functions() {
        let a = audit();
        assert!(a.covers_file("proto.rs"));
        assert!(a.covers_site("proto.rs", "find_root"));
        assert!(a.covers_site("proto.rs", "union"));
        assert!(!a.covers_site("proto.rs", "unaudited_fn"));
        // Rows outside the 9.3 section don't count.
        assert!(!a.covers_file("other.rs"));
    }

    #[test]
    fn audited_file_with_unaudited_site_fails() {
        let src = "impl U {\n    fn find_root(&self) {\n        \
                   self.p.load(Ordering::Relaxed);\n    }\n    \
                   fn rogue(&self) {\n        self.p.load(Ordering::Relaxed);\n    }\n}\n";
        let v = lint_source("crates/x/src/proto.rs", src, &audit());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ordering-audit");
        assert_eq!(v[0].line, 6);
        assert!(v[0].message.contains("rogue"));
    }

    #[test]
    fn unaudited_unallowlisted_file_with_ordering_fails() {
        let src = "fn f(a: &AtomicU32) {\n    a.load(Ordering::Relaxed);\n}\n";
        let v = lint_source("crates/x/src/newfile.rs", src, &audit());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ordering-audit");
        assert!(v[0].message.contains("neither audited"));
        // The same site inside #[cfg(test)] is exempt.
        let test_src = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
        assert!(lint_source("crates/x/src/newfile.rs", &test_src, &audit()).is_empty());
        // And an allowlisted file passes.
        assert!(lint_source(ORDERING_ALLOW[0].0, src, &audit()).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_fails() {
        let bad = "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
        let v = lint_source("crates/x/src/a.rs", bad, &audit());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "safety-comment");

        let good = "fn f(p: *const u32) -> u32 {\n    \
                    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lint_source("crates/x/src/a.rs", good, &audit()).is_empty());

        let doc = "/// # Safety\n/// p must be valid.\npub unsafe fn f(p: *const u32) {}\n";
        assert!(lint_source("crates/x/src/a.rs", doc, &audit()).is_empty());

        // The word inside a string or comment is not an unsafe token.
        let quoted = "fn f() { let _ = \"unsafe\"; } // unsafe mentioned\n";
        assert!(lint_source("crates/x/src/a.rs", quoted, &audit()).is_empty());
    }

    #[test]
    fn module_scope_static_atomic_fails() {
        let bad = "static COUNT: AtomicU64 = AtomicU64::new(0);\n";
        let v = lint_source("crates/x/src/a.rs", bad, &audit());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "global-static-atomic");
        assert!(v[0].message.contains("COUNT"));

        // Function-local statics, non-atomic statics, and cfg(test)
        // statics are all exempt.
        let local = "fn f() {\n    static HITS: AtomicU64 = AtomicU64::new(0);\n}\n";
        assert!(lint_source("crates/x/src/a.rs", local, &audit()).is_empty());
        let nonatomic = "static NAME: &str = \"x\";\n";
        assert!(lint_source("crates/x/src/a.rs", nonatomic, &audit()).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n    \
                    static HITS: AtomicU64 = AtomicU64::new(0);\n}\n";
        assert!(lint_source("crates/x/src/a.rs", test, &audit()).is_empty());

        // Allowlisted globals pass.
        let (file, name, _) = STATIC_ATOMIC_ALLOW[0];
        let allowed = format!("static {name}: AtomicBool = AtomicBool::new(false);\n");
        assert!(lint_source(file, &allowed, &audit()).is_empty());
    }

    #[test]
    fn workspace_is_clean() {
        // The real repo must pass its own lint (same invocation as CI).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = lint_workspace(&root).expect("walk workspace");
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
