//! The `ppscan-lint` binary: lints `crates/*/src` against the
//! workspace concurrency policy (see the library docs) and exits
//! non-zero on any violation.
//!
//! ```sh
//! cargo run -p ppscan-lint            # workspace root inferred
//! cargo run -p ppscan-lint -- /path/to/repo
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Default: the workspace root two levels above this crate.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        });
    let violations = match ppscan_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ppscan-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if violations.is_empty() {
        println!("ppscan-lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("ppscan-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
