//! # ppscan-update
//!
//! Incremental re-clustering on streaming edge updates — ROADMAP item 2
//! and the prerequisite for serving live graphs.
//!
//! The GS*-Index already answers arbitrary `(ε, µ)` queries without
//! recomputation; this crate closes the remaining gap: when the *graph*
//! changes, don't rebuild, **repair**. A batch of edge edits
//! ([`GraphDelta`]) is spliced into a fresh CSR and the index is
//! maintained by localized recomputation
//! ([`OwnedGsIndex::apply_delta`]); on top of that,
//! [`IncrementalClustering`] maintains a live clustering for one fixed
//! `(ε, µ)`:
//!
//! * **Role re-derivation** only for the affected set `A = T ∪ N(T)`
//!   (edit endpoints and their neighbors) — every other vertex's
//!   σ-prefix is bit-identical, so its role cannot have changed.
//! * **Cluster repair by union-find surgery.** If no core was demoted
//!   and no previously ε-similar core-core edge disappeared, the edit
//!   can only grow/merge clusters: re-union the ε-prefixes of affected
//!   cores into the live forest (unions are idempotent). Otherwise a
//!   cluster may have *split*, which union-find cannot express — the
//!   repair falls back to a **scoped re-union**: exactly the clusters
//!   containing an affected vertex are dissolved and re-unioned from
//!   their members' (new) ε-prefixes; every other cluster is untouched.
//!   The fallback is still local: an edge between two untouched
//!   clusters would have had to change σ or an endpoint role, and both
//!   are confined to `A`.
//!
//! The [`stress`] module is the safety net: a differential sweep
//! checking `incremental(G, ΔE) ≡ from_scratch(G + ΔE)` over the
//! generator zoo × execution strategies × batch sizes, with ddmin
//! shrinking of failing deltas into a replayable corpus.

pub mod stress;

use ppscan_core::params::ScanParams;
use ppscan_core::result::{Clustering, Role, NO_CLUSTER};
use ppscan_graph::delta::{DeltaError, GraphDelta};
use ppscan_graph::{CsrGraph, VertexId};
use ppscan_gsindex::{OwnedGsIndex, UpdateStats};
use ppscan_obs::Span;
use ppscan_sched::WorkerPool;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What one [`IncrementalClustering::apply`] did, for tests and the
/// serving layer's counters.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Index-maintenance stats (applied/touched/recomputed counts).
    pub stats: UpdateStats,
    /// Whether split risk forced the scoped re-union fallback (false =
    /// pure growth path: idempotent unions only).
    pub scoped_reunion: bool,
    /// Vertices promoted to core by this batch.
    pub promoted: usize,
    /// Vertices demoted from core by this batch.
    pub demoted: usize,
    /// Cores whose union-find entry was dissolved and re-derived
    /// (scoped re-union only).
    pub reset_members: usize,
}

/// A live clustering for one fixed `(ε, µ)`, maintained under edge
/// updates without from-scratch recomputation.
pub struct IncrementalClustering {
    params: ScanParams,
    pool: WorkerPool,
    index: OwnedGsIndex,
    /// Current role per vertex (true = core at `params`).
    is_core: Vec<bool>,
    /// Union-find forest over cores; noncores stay singleton roots.
    uf: Uf,
}

impl IncrementalClustering {
    /// Builds the index over `graph` and derives the initial clustering
    /// state for `params`.
    pub fn new(graph: Arc<CsrGraph>, params: ScanParams, threads: usize) -> Self {
        Self::with_pool(graph, params, WorkerPool::new(threads))
    }

    /// [`new`](Self::new) with a caller-built pool, so the differential
    /// harness can drive every execution strategy through the repair
    /// path.
    pub fn with_pool(graph: Arc<CsrGraph>, params: ScanParams, pool: WorkerPool) -> Self {
        let index = OwnedGsIndex::build(graph, pool.threads());
        let n = index.graph().num_vertices();
        let mut s = Self {
            params,
            pool,
            index,
            is_core: vec![false; n],
            uf: Uf::new(n),
        };
        for u in 0..n as VertexId {
            s.is_core[u as usize] = s.index.index().is_core(u, params);
        }
        for u in 0..n as VertexId {
            if s.is_core[u as usize] {
                s.union_prefix(u);
            }
        }
        s
    }

    /// Unions `u` with every core in its current ε-prefix.
    fn union_prefix(&mut self, u: VertexId) {
        // `eps_prefix` borrows the index; collect before mutating `uf`.
        let cores: Vec<VertexId> = self
            .index
            .index()
            .eps_prefix(u, self.params)
            .filter(|&w| self.is_core[w as usize])
            .collect();
        for w in cores {
            self.uf.union(u, w);
        }
    }

    /// Applies one update batch: maintains the index incrementally,
    /// re-derives roles over the affected set, and repairs the cluster
    /// forest by union-find surgery (`update-clusters` span).
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<RepairOutcome, DeltaError> {
        let (new_index, stats) = self.index.apply_delta_with(delta, &self.pool)?;
        let _span = Span::enter("update-clusters");
        let p = self.params;

        // Role changes are confined to the affected set.
        let new_roles: HashMap<VertexId, bool> = stats
            .affected
            .iter()
            .map(|&a| (a, new_index.index().is_core(a, p)))
            .collect();
        let promoted: Vec<VertexId> = stats
            .affected
            .iter()
            .copied()
            .filter(|&a| new_roles[&a] && !self.is_core[a as usize])
            .collect();
        let demoted: Vec<VertexId> = stats
            .affected
            .iter()
            .copied()
            .filter(|&a| !new_roles[&a] && self.is_core[a as usize])
            .collect();

        // Split detection: did any previously-unioned ε-core-core edge
        // disappear? Only edges incident to an edit endpoint can lose σ,
        // and only affected vertices can lose core status — demotions
        // are checked directly, σ drops by walking the old ε-prefixes
        // of the edit endpoints against the new ones.
        let split_risk =
            !demoted.is_empty() || self.lost_core_edge(delta, new_index.index(), &new_roles);

        let mut reset_members = 0usize;
        if !split_risk {
            // Growth path: edits can only add/merge. Union every
            // ε-core-core edge incident to the affected set into the
            // live forest; unions are idempotent, so no "new edge"
            // detection is needed.
            for (&a, &core) in &new_roles {
                self.is_core[a as usize] = core;
            }
            for &a in &stats.affected {
                if new_roles[&a] {
                    self.swap_index_union(new_index.index(), a);
                }
            }
        } else {
            // Scoped re-union: dissolve exactly the clusters that
            // contain an affected vertex, then re-derive their unions
            // from the new ε-prefixes. Clusters with no affected member
            // kept every edge and every role — they stand as-is.
            let mut roots: HashSet<VertexId> = HashSet::new();
            for &a in &stats.affected {
                if self.is_core[a as usize] {
                    roots.insert(self.uf.find(a));
                }
            }
            let n = self.is_core.len();
            let mut members: Vec<VertexId> = Vec::new();
            for x in 0..n as VertexId {
                if self.is_core[x as usize] && roots.contains(&self.uf.find(x)) {
                    members.push(x);
                }
            }
            for &x in &members {
                self.uf.reset(x);
            }
            reset_members = members.len();

            for (&a, &core) in &new_roles {
                self.is_core[a as usize] = core;
            }
            let mut seeds = members;
            seeds.extend(promoted.iter().copied());
            for x in seeds {
                if self.is_core[x as usize] {
                    self.swap_index_union(new_index.index(), x);
                }
            }
        }

        self.index = new_index;
        Ok(RepairOutcome {
            scoped_reunion: split_risk,
            promoted: promoted.len(),
            demoted: demoted.len(),
            reset_members,
            stats,
        })
    }

    /// Unions `u` with every core in its ε-prefix **of the new index**
    /// (self.index still holds the old one while repairing).
    fn swap_index_union(&mut self, new_index: &ppscan_gsindex::GsIndex<'_>, u: VertexId) {
        let cores: Vec<VertexId> = new_index
            .eps_prefix(u, self.params)
            .filter(|&w| self.is_core[w as usize])
            .collect();
        for w in cores {
            self.uf.union(u, w);
        }
    }

    /// True if some edge that was ε-similar core-core before the batch
    /// is no longer ε-similar (with both endpoints still cores) after
    /// it. Deleted edges count; demotions are the caller's check.
    fn lost_core_edge(
        &self,
        delta: &GraphDelta,
        new_index: &ppscan_gsindex::GsIndex<'_>,
        new_roles: &HashMap<VertexId, bool>,
    ) -> bool {
        let old_index = self.index.index();
        let old_g = self.index.graph();
        let p = self.params;
        let new_core = |x: VertexId| {
            new_roles
                .get(&x)
                .copied()
                .unwrap_or(self.is_core[x as usize])
        };
        // Edit endpoints (effective against the old graph).
        let mut touched: Vec<VertexId> = delta
            .inserts()
            .iter()
            .filter(|&&(u, v)| !old_g.has_edge(u, v))
            .chain(
                delta
                    .deletes()
                    .iter()
                    .filter(|&&(u, v)| old_g.has_edge(u, v)),
            )
            .flat_map(|&(u, v)| [u, v])
            .collect();
        touched.sort_unstable();
        touched.dedup();

        for &t in &touched {
            if !self.is_core[t as usize] {
                continue; // old edge (t, ·) was never core-core
            }
            let new_prefix: Option<HashSet<VertexId>> =
                new_core(t).then(|| new_index.eps_prefix(t, p).collect());
            for &entry in old_index.neighbor_entries(t) {
                if !old_index.entry_sim(t, entry).at_least(&p.epsilon) {
                    break; // σ-descending: prefix exhausted
                }
                let w = entry.0;
                if !self.is_core[w as usize] {
                    continue;
                }
                // Old ε-core-core edge (t, w). Survives iff both still
                // cores and w is still in t's ε-prefix (deleted edges
                // drop out of the prefix automatically).
                let survives = match &new_prefix {
                    Some(prefix) => new_core(w) && prefix.contains(&w),
                    None => false,
                };
                if !survives {
                    return true;
                }
            }
        }
        false
    }

    /// Materializes the maintained clustering (output-proportional, like
    /// an index query: roles and labels are read off the live state,
    /// noncore attachments off the ε-prefixes).
    pub fn clustering(&self) -> Clustering {
        let n = self.is_core.len();
        let idx = self.index.index();
        let mut roles = vec![Role::NonCore; n];
        let mut core_label = vec![NO_CLUSTER; n];
        for u in 0..n as VertexId {
            if self.is_core[u as usize] {
                roles[u as usize] = Role::Core;
                core_label[u as usize] = self.uf.find(u);
            }
        }
        let mut pairs: Vec<(VertexId, u32)> = Vec::new();
        for u in 0..n as VertexId {
            if !self.is_core[u as usize] {
                continue;
            }
            for w in idx.eps_prefix(u, self.params) {
                if !self.is_core[w as usize] {
                    pairs.push((w, core_label[u as usize]));
                }
            }
        }
        Clustering::from_raw(roles, core_label, pairs)
    }

    /// The maintained parameters.
    pub fn params(&self) -> ScanParams {
        self.params
    }

    /// The current graph.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        self.index.graph()
    }

    /// The maintained index.
    pub fn index(&self) -> &OwnedGsIndex {
        &self.index
    }
}

/// Minimal union-find with per-vertex reset — the surgery primitive.
/// Roots are canonicalized to the smallest member id touched so far;
/// exact root identity doesn't matter ([`Clustering::from_raw`]
/// relabels), only partition equality.
#[derive(Clone, Debug)]
struct Uf {
    parent: Vec<VertexId>,
}

impl Uf {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as VertexId).collect(),
        }
    }

    /// Read-only root lookup (no compression, so `&self` suffices).
    fn find(&self, mut x: VertexId) -> VertexId {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Root lookup with path halving.
    fn find_mut(&mut self, mut x: VertexId) -> VertexId {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: VertexId, b: VertexId) {
        let (ra, rb) = (self.find_mut(a), self.find_mut(b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi as usize] = lo;
        }
    }

    /// Detaches `x` into a singleton. Only safe when every member of
    /// `x`'s tree is reset in the same pass (scoped re-union does), as
    /// stale children pointing at `x` would otherwise keep its old
    /// cluster alive.
    fn reset(&mut self, x: VertexId) {
        self.parent[x as usize] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppscan_graph::gen;
    use ppscan_gsindex::GsIndex;

    fn from_scratch(g: &CsrGraph, p: ScanParams) -> Clustering {
        GsIndex::build(g, 2).query(p)
    }

    #[test]
    fn initial_state_matches_query() {
        for g in [
            gen::scan_paper_example(),
            gen::planted_partition(3, 14, 0.6, 0.05, 4),
            gen::roll(120, 8, 9),
        ] {
            for (eps, mu) in [(0.5, 2), (0.7, 3)] {
                let p = ScanParams::new(eps, mu);
                let ic = IncrementalClustering::new(Arc::new(g.clone()), p, 2);
                assert_eq!(ic.clustering(), from_scratch(&g, p));
            }
        }
    }

    #[test]
    fn insertions_grow_clusters_without_scoped_fallback_when_safe() {
        // Two disjoint triangles; bridging them with a dense edge set
        // merges the clusters. With ε low the new edges stay similar and
        // nothing demotes, so the growth path must suffice.
        let g =
            ppscan_graph::builder::from_edges(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let p = ScanParams::new(0.3, 2);
        let mut ic = IncrementalClustering::new(Arc::new(g), p, 1);
        assert_eq!(ic.clustering().num_clusters(), 2);

        let mut delta = GraphDelta::new();
        delta.insert(2, 3).unwrap();
        delta.insert(1, 3).unwrap();
        delta.insert(2, 4).unwrap();
        let outcome = ic.apply(&delta).unwrap();
        assert_eq!(ic.clustering(), from_scratch(ic.graph(), p));
        assert!(
            !outcome.scoped_reunion,
            "pure merge must take the growth path: {outcome:?}"
        );
    }

    #[test]
    fn deletion_that_splits_a_cluster_triggers_scoped_reunion() {
        // A barbell: two K4s joined by a 4-edge bridge thick enough to
        // be ε-similar (σ(0,4) = 4/6 with the bridge in place). Deleting
        // the whole bridge splits one cluster into two.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        let bridge = [(0, 4), (0, 5), (1, 4), (1, 5)];
        edges.extend_from_slice(&bridge);
        let g = ppscan_graph::builder::from_edges(&edges);
        let p = ScanParams::new(0.5, 2);
        let mut ic = IncrementalClustering::new(Arc::new(g), p, 1);
        let before = ic.clustering();
        assert_eq!(before.num_clusters(), 1, "bridge joins the K4s: {before:?}");

        let mut delta = GraphDelta::new();
        for (u, v) in bridge {
            delta.delete(u, v).unwrap();
        }
        let outcome = ic.apply(&delta).unwrap();
        assert!(outcome.scoped_reunion, "split must hit the fallback");
        let after = ic.clustering();
        assert_eq!(after, from_scratch(ic.graph(), p));
        assert_eq!(after.num_clusters(), 2);
    }

    #[test]
    fn chained_mixed_batches_match_from_scratch() {
        use ppscan_graph::rng::SplitMix64;
        let g = gen::planted_partition(3, 12, 0.6, 0.08, 21);
        let p = ScanParams::new(0.5, 2);
        let mut ic = IncrementalClustering::new(Arc::new(g), p, 2);
        let mut rng = SplitMix64::seed_from_u64(0xc1a5);
        for step in 0..10 {
            let delta = crate::stress::random_delta(ic.graph(), 6, rng.next_u64());
            if delta.is_empty() {
                continue;
            }
            ic.apply(&delta).unwrap();
            assert_eq!(
                ic.clustering(),
                from_scratch(ic.graph(), p),
                "diverged after step {step}"
            );
        }
    }

    #[test]
    fn noop_and_invalid_batches_behave() {
        let g = gen::clique_chain(4, 2);
        let p = ScanParams::new(0.5, 2);
        let mut ic = IncrementalClustering::new(Arc::new(g), p, 1);
        let before = ic.clustering();

        // Delete-of-absent and insert-of-present are no-ops. (0,1) is a
        // clique edge; (0,5) spans the cliques and only 3–4 bridges.
        let mut noop = GraphDelta::new();
        noop.insert(0, 1).unwrap();
        noop.delete(0, 5).unwrap();
        let outcome = ic.apply(&noop).unwrap();
        assert_eq!(outcome.stats.applied_edges, 0);
        assert_eq!(ic.clustering(), before);

        // Out-of-range ids are an Err, and the state is untouched.
        let mut bad = GraphDelta::new();
        bad.insert(0, 10_000).unwrap();
        assert!(matches!(ic.apply(&bad), Err(DeltaError::OutOfRange { .. })));
        assert_eq!(ic.clustering(), before);
    }

    #[test]
    fn insertion_induced_demotion_is_handled() {
        // Inserting an edge raises degrees, which can *lower* σ of
        // neighboring edges and demote a marginal core — the subtle
        // direction of the growth/split decision. Star + one similar
        // pair, then fan out the hub.
        let p = ScanParams::new(0.6, 2);
        let g = gen::complete(4);
        let ic = IncrementalClustering::new(Arc::new(g), p, 1);
        assert_eq!(ic.clustering().num_clusters(), 1);
        // Attach many spokes to vertex 0: its degree balloons, σ(0, ·)
        // drops, and the K4 loses 0 as a core (or the whole cluster).
        let base_n = 4;
        let extra = 8;
        // Grow the vertex set by rebuilding: the delta model fixes the
        // vertex set, so start from a graph that already has the spare
        // vertices isolated.
        let mut edges: Vec<(VertexId, VertexId)> = gen::complete(4).undirected_edges().collect();
        edges.push((base_n as VertexId, base_n as VertexId + 1)); // keep them non-isolated
        let g = ppscan_graph::GraphBuilder::new()
            .extend_edges(edges)
            .ensure_vertices(base_n + extra)
            .build();
        let mut ic = IncrementalClustering::new(Arc::new(g), p, 1);
        let mut delta = GraphDelta::new();
        for s in 0..extra as VertexId {
            delta.insert(0, base_n as VertexId + s).unwrap();
        }
        ic.apply(&delta).unwrap();
        assert_eq!(ic.clustering(), from_scratch(ic.graph(), p));
    }
}
