//! Differential stress driver for the incremental update path:
//! `incremental(G, ΔE) ≡ from_scratch(G + ΔE)` swept over the generator
//! zoo × execution strategies × batch sizes × seeds. Both layers are
//! checked per case: the maintained [`OwnedGsIndex`] must answer every
//! `(ε, µ)` in the grid exactly like an index built from scratch on the
//! edited graph, and [`IncrementalClustering`]'s union-find surgery must
//! materialize the same clustering as a fresh query.
//!
//! A divergence is **shrunk** before it is reported: first the op list
//! (ddmin over insert/delete ops), then the base edge list (ddmin with
//! the surviving ops pinned), within a shared predicate budget. The
//! shrunk [`UpdateCase`] is persisted as JSON into
//! [`UpdateStressConfig::corpus_dir`] (default `target/update-corpus/`)
//! and [`replay_update_corpus`] re-runs everything found there — the
//! `replay_update_corpus_is_clean` test keeps fixed bugs self-cleaning
//! and unfixed ones loud, exactly like the core stress corpus.

use crate::IncrementalClustering;
use ppscan_core::params::ScanParams;
use ppscan_graph::delta::GraphDelta;
use ppscan_graph::rng::SplitMix64;
use ppscan_graph::{gen, CsrGraph, GraphBuilder, VertexId};
use ppscan_gsindex::{GsIndex, OwnedGsIndex};
use ppscan_obs::json::Json;
use ppscan_obs::RunReport;
use ppscan_sched::{ExecutionStrategy, WorkerPool};
use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// The generator zoo the sweep covers, by family index.
pub const ZOO: [&str; 11] = [
    "roll",
    "rmat",
    "rmat-social",
    "erdos-renyi",
    "planted-partition",
    "complete",
    "star",
    "path",
    "cycle",
    "grid",
    "clique-chain",
];

/// One insert (`true`) or delete (`false`) op, normalized `u < v`.
pub type Op = (bool, VertexId, VertexId);

/// Deterministically generates a zoo graph for `(family, seed)`, sized
/// so a from-scratch rebuild stays cheap but every structural shape
/// (hubs, bridges, grids, cliques) is represented.
pub fn zoo_graph(family: usize, seed: u64) -> CsrGraph {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed_2000);
    match family % ZOO.len() {
        0 => gen::roll(60 + rng.gen_index(60), 6, rng.next_u64()),
        1 => gen::rmat(6, 6, 0.45, 0.22, 0.22, rng.next_u64()),
        2 => gen::rmat_social(6, 6, rng.next_u64()),
        3 => {
            let n = 30 + rng.gen_index(40);
            gen::erdos_renyi(n, n * 3, rng.next_u64())
        }
        4 => gen::planted_partition(3, 10 + rng.gen_index(8), 0.6, 0.06, rng.next_u64()),
        5 => gen::complete(8 + rng.gen_index(6)),
        6 => gen::star(12 + rng.gen_index(20)),
        7 => gen::path(16 + rng.gen_index(30)),
        8 => gen::cycle(16 + rng.gen_index(30)),
        9 => gen::grid(4 + rng.gen_index(4), 4 + rng.gen_index(4)),
        _ => gen::clique_chain(4 + rng.gen_index(3), 2 + rng.gen_index(3)),
    }
}

/// How large an update batch to draw, resolved against the current edge
/// count (never below one op).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchSpec {
    /// Exactly this many ops.
    Fixed(usize),
    /// This fraction of `|E|` ops (the acceptance envelope's "1% of
    /// |E|" point).
    EdgeFraction(f64),
}

impl BatchSpec {
    /// Number of ops to draw for a graph with `num_edges` edges.
    pub fn resolve(&self, num_edges: usize) -> usize {
        match *self {
            BatchSpec::Fixed(k) => k.max(1),
            BatchSpec::EdgeFraction(f) => ((num_edges as f64 * f).round() as usize).max(1),
        }
    }

    /// Stable label for banners and corpus file names.
    pub fn label(&self) -> String {
        match *self {
            BatchSpec::Fixed(k) => format!("fixed-{k}"),
            BatchSpec::EdgeFraction(f) => format!("frac-{f}"),
        }
    }
}

/// Draws a mixed insert/delete batch of (up to) `size` distinct ops
/// against `g`: deletes of existing edges, inserts of random pairs
/// (which may already exist — exercising the no-op path is deliberate).
pub fn random_delta(g: &CsrGraph, size: usize, seed: u64) -> GraphDelta {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut delta = GraphDelta::new();
    let n = g.num_vertices();
    if n < 2 {
        return delta;
    }
    let edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
    let mut used: HashSet<(VertexId, VertexId)> = HashSet::new();
    let mut attempts = 0usize;
    while delta.len() < size && attempts < size * 20 + 50 {
        attempts += 1;
        if !edges.is_empty() && rng.gen_bool(0.5) {
            let (u, v) = edges[rng.gen_index(edges.len())];
            if used.insert((u, v)) {
                delta.delete(u, v).expect("normalized edge");
            }
        } else {
            let u = rng.gen_index(n) as VertexId;
            let v = rng.gen_index(n) as VertexId;
            if u == v {
                continue;
            }
            let (lo, hi) = (u.min(v), u.max(v));
            if used.insert((lo, hi)) {
                delta.insert(lo, hi).expect("no self-loop");
            }
        }
    }
    delta
}

/// Draws a batch like [`random_delta`] but with every endpoint confined
/// to one contiguous vertex window — the locality profile of a real
/// update stream (edits cluster around active entities rather than
/// sampling the whole graph uniformly). The window is centered by the
/// seed and sized `Θ(√size)` so it always offers far more distinct pairs
/// than the batch needs, yet stays a vanishing fraction of the graph:
/// this is the regime where localized recomputation wins.
pub fn hot_delta(g: &CsrGraph, size: usize, seed: u64) -> GraphDelta {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x407_5307);
    let mut delta = GraphDelta::new();
    let n = g.num_vertices();
    if n < 2 {
        return delta;
    }
    // ~4√size vertices ⇒ ≥ 8·size candidate pairs inside the window.
    let window = ((size as f64).sqrt() as usize * 4).clamp(16, n);
    let w0 = rng.gen_index(n - window + 1);
    let mut used: HashSet<(VertexId, VertexId)> = HashSet::new();
    let mut attempts = 0usize;
    while delta.len() < size && attempts < size * 20 + 50 {
        attempts += 1;
        let u = (w0 + rng.gen_index(window)) as VertexId;
        let v = (w0 + rng.gen_index(window)) as VertexId;
        if u == v {
            continue;
        }
        let (lo, hi) = (u.min(v), u.max(v));
        if !used.insert((lo, hi)) {
            continue;
        }
        // Deleting present edges and inserting absent ones keeps every
        // draw an effective edit, so batch size ≈ applied size.
        if g.has_edge(lo, hi) {
            delta.delete(lo, hi).expect("normalized edge");
        } else {
            delta.insert(lo, hi).expect("no self-loop");
        }
    }
    delta
}

/// What the update sweep covers. Defaults satisfy the acceptance
/// envelope: every strategy × batch sizes {1, 16, 1% of |E|} × ≥ 5 seeds
/// per generator family.
#[derive(Clone, Debug)]
pub struct UpdateStressConfig {
    /// Base seed; family `f`, seed index `i` derive from it.
    pub master_seed: u64,
    /// Seeds swept per generator family.
    pub seeds_per_generator: u64,
    /// Execution strategies driven through the repair path's pool.
    pub strategies: Vec<ExecutionStrategy>,
    /// Batch sizes.
    pub batches: Vec<BatchSpec>,
    /// (ε, µ) grid checked per batch.
    pub params: Vec<(f64, usize)>,
    /// Worker threads for both incremental and from-scratch sides.
    pub threads: usize,
    /// Sequential batches applied per (graph, strategy, batch) case —
    /// each checked against from-scratch on the evolving graph.
    pub chain: usize,
    /// Reruns when probing a schedule-dependent failure while shrinking.
    pub repeats: usize,
    /// Maximum predicate evaluations the shrinker may spend.
    pub shrink_budget: usize,
    /// Where shrunk failing cases are persisted (`None` disables).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for UpdateStressConfig {
    fn default() -> Self {
        UpdateStressConfig {
            master_seed: 0x00ed_1700,
            seeds_per_generator: 5,
            strategies: vec![
                ExecutionStrategy::Parallel,
                ExecutionStrategy::SequentialDeterministic,
                ExecutionStrategy::AdversarialSeeded { seed: 0xdead_beef },
            ],
            batches: vec![
                BatchSpec::Fixed(1),
                BatchSpec::Fixed(16),
                BatchSpec::EdgeFraction(0.01),
            ],
            params: vec![(0.4, 2), (0.65, 3)],
            threads: 2,
            chain: 1,
            repeats: 3,
            shrink_budget: 80,
            corpus_dir: Some(default_update_corpus_dir()),
        }
    }
}

/// The default failure-corpus directory: `update-corpus/` under the
/// cargo target directory (honoring `CARGO_TARGET_DIR`), separate from
/// the core stress corpus so replays stay per-subsystem.
pub fn default_update_corpus_dir() -> PathBuf {
    let target = option_env!("CARGO_TARGET_DIR").map_or_else(
        || {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        },
        PathBuf::from,
    );
    target.join("update-corpus")
}

/// A shrunk, replayable divergence between the incremental and
/// from-scratch paths.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateCase {
    /// Zoo family index (into [`ZOO`]).
    pub family: usize,
    /// Seed the base graph derived from.
    pub graph_seed: u64,
    /// Execution strategy of the incremental side's pool.
    pub strategy: ExecutionStrategy,
    /// Worker threads.
    pub threads: usize,
    /// Batch label ([`BatchSpec::label`]).
    pub batch: String,
    /// Chain step at which the divergence manifested.
    pub step: usize,
    /// Vertex count of the base graph (kept explicit: ops may reference
    /// vertices the shrunk edge list no longer mentions).
    pub num_vertices: usize,
    /// Shrunk base graph (the graph the failing delta applied *to*).
    pub edges: Vec<(VertexId, VertexId)>,
    /// Shrunk op list.
    pub ops: Vec<Op>,
    /// (ε, µ) grid the divergence was detected under.
    pub params: Vec<(f64, usize)>,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl UpdateCase {
    /// Rebuilds the embedded base graph.
    pub fn graph(&self) -> CsrGraph {
        GraphBuilder::new()
            .ensure_vertices(self.num_vertices)
            .extend_edges(self.edges.iter().copied())
            .build()
    }

    /// Rebuilds the embedded delta. Ill-formed ops (possible only in a
    /// hand-edited corpus entry) are dropped rather than panicking.
    pub fn delta(&self) -> GraphDelta {
        delta_from_ops(&self.ops)
    }

    /// Re-runs exactly this case's pinned configuration, `repeats`
    /// times. `true` if the divergence still manifests.
    pub fn reproduces(&self, repeats: usize) -> bool {
        let g = self.graph();
        let delta = self.delta();
        (0..repeats.max(1))
            .any(|_| divergence(&g, &delta, self.strategy, self.threads, &self.params).is_some())
    }

    /// Family name (defensive against out-of-range indices in edited
    /// corpus files).
    pub fn family_name(&self) -> &'static str {
        ZOO[self.family % ZOO.len()]
    }

    /// Serializes the case (corpus file format).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("family".to_string(), Json::from_u64(self.family as u64)),
            (
                "family_name".to_string(),
                Json::Str(self.family_name().to_string()),
            ),
            ("graph_seed".to_string(), Json::from_u64(self.graph_seed)),
            ("strategy".to_string(), Json::Str(self.strategy.to_string())),
            ("threads".to_string(), Json::from_u64(self.threads as u64)),
            ("batch".to_string(), Json::Str(self.batch.clone())),
            ("step".to_string(), Json::from_u64(self.step as u64)),
            (
                "num_vertices".to_string(),
                Json::from_u64(self.num_vertices as u64),
            ),
            (
                "edges".to_string(),
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|&(u, v)| {
                            Json::Arr(vec![Json::from_u64(u as u64), Json::from_u64(v as u64)])
                        })
                        .collect(),
                ),
            ),
            (
                "ops".to_string(),
                Json::Arr(
                    self.ops
                        .iter()
                        .map(|&(ins, u, v)| {
                            Json::Arr(vec![
                                Json::Str(if ins { "insert" } else { "delete" }.to_string()),
                                Json::from_u64(u as u64),
                                Json::from_u64(v as u64),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "params".to_string(),
                Json::Arr(
                    self.params
                        .iter()
                        .map(|&(eps, mu)| {
                            Json::Arr(vec![Json::Num(eps), Json::from_u64(mu as u64)])
                        })
                        .collect(),
                ),
            ),
            ("detail".to_string(), Json::Str(self.detail.clone())),
        ])
    }

    /// Deserializes a corpus entry written by [`UpdateCase::to_json`].
    pub fn from_json(json: &Json) -> Option<UpdateCase> {
        let mut edges = Vec::new();
        for e in json.get("edges")?.as_arr()? {
            let pair = e.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            edges.push((
                u32::try_from(pair[0].as_u64()?).ok()?,
                u32::try_from(pair[1].as_u64()?).ok()?,
            ));
        }
        let mut ops = Vec::new();
        for o in json.get("ops")?.as_arr()? {
            let trip = o.as_arr()?;
            if trip.len() != 3 {
                return None;
            }
            let ins = match trip[0].as_str()? {
                "insert" => true,
                "delete" => false,
                _ => return None,
            };
            ops.push((
                ins,
                u32::try_from(trip[1].as_u64()?).ok()?,
                u32::try_from(trip[2].as_u64()?).ok()?,
            ));
        }
        let mut params = Vec::new();
        for p in json.get("params")?.as_arr()? {
            let pair = p.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            params.push((pair[0].as_f64()?, usize::try_from(pair[1].as_u64()?).ok()?));
        }
        Some(UpdateCase {
            family: usize::try_from(json.get("family")?.as_u64()?).ok()?,
            graph_seed: json.get("graph_seed")?.as_u64()?,
            strategy: ExecutionStrategy::parse(json.get("strategy")?.as_str()?)?,
            threads: usize::try_from(json.get("threads")?.as_u64()?).ok()?,
            batch: json.get("batch")?.as_str()?.to_string(),
            step: usize::try_from(json.get("step")?.as_u64()?).ok()?,
            num_vertices: usize::try_from(json.get("num_vertices")?.as_u64()?).ok()?,
            edges,
            ops,
            params,
            detail: json.get("detail")?.as_str()?.to_string(),
        })
    }

    /// Corpus file name, unique per (seed, configuration).
    pub fn corpus_file_name(&self) -> String {
        let strategy = self.strategy.to_string().replace(['(', ')'], "-");
        format!(
            "case-{:016x}-{}-{}-{}-s{}-t{}.json",
            self.graph_seed,
            self.family_name(),
            strategy,
            self.batch,
            self.step,
            self.threads,
        )
    }
}

impl fmt::Display for UpdateCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "update-stress failure: family={} graph_seed={:#x} strategy={} threads={} batch={} step={}",
            self.family_name(),
            self.graph_seed,
            self.strategy,
            self.threads,
            self.batch,
            self.step,
        )?;
        writeln!(f, "detail: {}", self.detail)?;
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|&(ins, u, v)| format!("{}({u},{v})", if ins { "+" } else { "-" }))
            .collect();
        writeln!(f, "shrunk ops: [{}]", ops.join(", "))?;
        writeln!(
            f,
            "shrunk base graph ({} vertices): {:?}",
            self.num_vertices, self.edges
        )?;
        write!(f, "corpus file: {}", self.corpus_file_name())
    }
}

/// Builds a [`GraphDelta`] from an op list, dropping ill-formed ops.
fn delta_from_ops(ops: &[Op]) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for &(ins, u, v) in ops {
        let _ = if ins {
            delta.insert(u, v)
        } else {
            delta.delete(u, v)
        };
    }
    delta
}

/// The differential check itself: applies `delta` to `g` incrementally
/// (index maintenance under `strategy`'s pool, then cluster surgery per
/// parameter point) and compares every layer against a from-scratch
/// rebuild on the edited graph. `Some(detail)` on the first divergence.
pub fn divergence(
    g: &CsrGraph,
    delta: &GraphDelta,
    strategy: ExecutionStrategy,
    threads: usize,
    params: &[(f64, usize)],
) -> Option<String> {
    let graph = Arc::new(g.clone());
    let pool = WorkerPool::with_strategy(threads, strategy);
    let base = OwnedGsIndex::build(Arc::clone(&graph), threads);
    let (updated, stats) = match base.apply_delta_with(delta, &pool) {
        Ok(x) => x,
        Err(e) => return Some(format!("apply_delta failed: {e}")),
    };
    if stats.applied_edges > delta.len() {
        return Some(format!(
            "applied_edges {} exceeds batch size {}",
            stats.applied_edges,
            delta.len()
        ));
    }
    let fresh = GsIndex::build(updated.graph(), threads);
    for &(eps, mu) in params {
        let p = ScanParams::new(eps, mu);
        if updated.query(p) != fresh.query(p) {
            return Some(format!(
                "index query diverged from from-scratch rebuild at {}",
                p.label()
            ));
        }
        let mut ic = IncrementalClustering::with_pool(
            Arc::clone(&graph),
            p,
            WorkerPool::with_strategy(threads, strategy),
        );
        if let Err(e) = ic.apply(delta) {
            return Some(format!("cluster repair failed at {}: {e}", p.label()));
        }
        if ic.clustering() != fresh.query(p) {
            return Some(format!(
                "incremental clustering diverged from from-scratch query at {}",
                p.label()
            ));
        }
    }
    None
}

/// Aggregate statistics of a green sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateStressStats {
    /// (family, seed) graphs swept.
    pub cases: u64,
    /// Individual (strategy, batch, step) deltas checked differentially.
    pub deltas_checked: u64,
}

/// Runs the full sweep. `Ok` carries coverage statistics; `Err` carries
/// the first divergence, already shrunk and persisted.
pub fn run_update_stress(cfg: &UpdateStressConfig) -> Result<UpdateStressStats, Box<UpdateCase>> {
    let mut stats = UpdateStressStats::default();
    for family in 0..ZOO.len() {
        for si in 0..cfg.seeds_per_generator {
            stats.deltas_checked += sweep_family_seed(cfg, family, si)?;
            stats.cases += 1;
        }
    }
    Ok(stats)
}

/// Derives the graph seed for `(family, seed index)` under a master
/// seed — the unit a failure banner pins.
pub fn graph_seed(master_seed: u64, family: usize, si: u64) -> u64 {
    master_seed ^ ((family as u64) << 32) ^ si.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Sweeps one (family, seed index): every strategy × batch spec, with
/// `cfg.chain` sequential batches per combination, each checked against
/// a from-scratch rebuild of the evolving graph.
fn sweep_family_seed(
    cfg: &UpdateStressConfig,
    family: usize,
    si: u64,
) -> Result<u64, Box<UpdateCase>> {
    let seed = graph_seed(cfg.master_seed, family, si);
    let g0 = zoo_graph(family, seed);
    let mut checked = 0u64;
    for &strategy in &cfg.strategies {
        for (bi, batch) in cfg.batches.iter().enumerate() {
            let mut current = g0.clone();
            for step in 0..cfg.chain.max(1) {
                let size = batch.resolve(current.num_edges());
                // The delta seed is independent of the strategy, so
                // every strategy faces the same batches.
                let delta_seed = seed ^ ((bi as u64) << 16) ^ ((step as u64) << 8) ^ 0xd17a;
                let delta = random_delta(&current, size, delta_seed);
                if delta.is_empty() {
                    continue;
                }
                checked += 1;
                if let Some(detail) =
                    divergence(&current, &delta, strategy, cfg.threads, &cfg.params)
                {
                    return Err(build_case(
                        cfg,
                        family,
                        seed,
                        strategy,
                        batch.label(),
                        step,
                        &current,
                        &delta,
                        detail,
                    ));
                }
                current = delta
                    .apply_to(&current)
                    .expect("delta validated by divergence check")
                    .graph;
            }
        }
    }
    Ok(checked)
}

/// Packages and shrinks a divergence: ddmin over the op list first, then
/// over the base edge list with the surviving ops pinned.
#[allow(clippy::too_many_arguments)]
fn build_case(
    cfg: &UpdateStressConfig,
    family: usize,
    seed: u64,
    strategy: ExecutionStrategy,
    batch: String,
    step: usize,
    g: &CsrGraph,
    delta: &GraphDelta,
    detail: String,
) -> Box<UpdateCase> {
    let num_vertices = g.num_vertices();
    let mut edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
    let mut ops: Vec<Op> = delta
        .inserts()
        .iter()
        .map(|&(u, v)| (true, u, v))
        .chain(delta.deletes().iter().map(|&(u, v)| (false, u, v)))
        .collect();

    let mut budget = cfg.shrink_budget;
    let repeats = cfg.repeats.max(1);
    let rebuild = |edges: &[(VertexId, VertexId)]| {
        GraphBuilder::new()
            .ensure_vertices(num_vertices)
            .extend_edges(edges.iter().copied())
            .build()
    };
    {
        let fails_ops = |ops: &[Op]| {
            let delta = delta_from_ops(ops);
            !delta.is_empty()
                && (0..repeats)
                    .any(|_| divergence(g, &delta, strategy, cfg.threads, &cfg.params).is_some())
        };
        ops = shrink_items(ops, &mut budget, &fails_ops);
    }
    {
        let ops = ops.clone();
        let fails_edges = |edges: &[(VertexId, VertexId)]| {
            let g = rebuild(edges);
            let delta = delta_from_ops(&ops);
            !delta.is_empty()
                && (0..repeats)
                    .any(|_| divergence(&g, &delta, strategy, cfg.threads, &cfg.params).is_some())
        };
        edges = shrink_items(edges, &mut budget, &fails_edges);
    }

    let case = Box::new(UpdateCase {
        family,
        graph_seed: seed,
        strategy,
        threads: cfg.threads,
        batch,
        step,
        num_vertices,
        edges,
        ops,
        params: cfg.params.clone(),
        detail,
    });
    if let Some(dir) = &cfg.corpus_dir {
        persist_case(dir, &case);
    }
    case
}

/// Writes one shrunk failure into the corpus directory. Best-effort:
/// persistence failing must not mask the differential failure itself.
fn persist_case(dir: &Path, case: &UpdateCase) {
    let path = dir.join(case.corpus_file_name());
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, case.to_json().to_pretty_string())
    };
    match write() {
        Ok(()) => eprintln!(
            "update-stress: failing case persisted to {}",
            path.display()
        ),
        Err(e) => eprintln!("update-stress: could not persist {}: {e}", path.display()),
    }
}

/// ddmin-style greedy minimization over any item list (ops or edges):
/// drop chunks while the failure reproduces, halving the chunk size down
/// to single items, within `budget` predicate evaluations.
fn shrink_items<T: Clone>(
    mut items: Vec<T>,
    budget: &mut usize,
    fails: &dyn Fn(&[T]) -> bool,
) -> Vec<T> {
    if items.is_empty() {
        return items;
    }
    let mut chunk = (items.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < items.len() && *budget > 0 {
            let mut candidate = items.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            *budget -= 1;
            if fails(&candidate) {
                items = candidate;
            } else {
                i = end;
            }
        }
        if chunk == 1 || *budget == 0 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    items
}

/// Loads every corpus entry under `dir` and re-runs it. Returns
/// `(case, still_failing)` pairs; a missing directory is an empty
/// (clean) corpus, an unparseable file is a loud error.
pub fn replay_update_corpus(dir: &Path, repeats: usize) -> Result<Vec<(UpdateCase, bool)>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading corpus dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("case-"))
        })
        .collect();
    entries.sort();
    let mut out = Vec::new();
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let json = ppscan_obs::json::parse(&text)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let case = UpdateCase::from_json(&json)
            .ok_or_else(|| format!("malformed corpus entry {}", path.display()))?;
        let still_failing = case.reproduces(repeats);
        out.push((case, still_failing));
    }
    Ok(out)
}

/// Runs the sweep like [`run_update_stress`], additionally producing a
/// [`RunReport`] recording every (family, seed) case under
/// `extra["cases"]`, with the shrunk failure inline when one diverges.
pub fn run_update_stress_report(
    cfg: &UpdateStressConfig,
) -> (Result<UpdateStressStats, Box<UpdateCase>>, RunReport) {
    let wall = Instant::now();
    let mut report = RunReport::new("update-stress");
    report.push_extra("master_seed", Json::from_u64(cfg.master_seed));
    report.push_extra(
        "seeds_per_generator",
        Json::from_u64(cfg.seeds_per_generator),
    );
    report.push_extra("generators", Json::from_u64(ZOO.len() as u64));
    report.push_extra("threads", Json::from_u64(cfg.threads as u64));
    let mut cases = Vec::new();
    let mut stats = UpdateStressStats::default();
    let mut failure = None;
    'sweep: for (family, &family_name) in ZOO.iter().enumerate() {
        for si in 0..cfg.seeds_per_generator {
            let seed = graph_seed(cfg.master_seed, family, si);
            match sweep_family_seed(cfg, family, si) {
                Ok(checked) => {
                    stats.cases += 1;
                    stats.deltas_checked += checked;
                    cases.push(Json::Obj(vec![
                        ("family".to_string(), Json::Str(family_name.to_string())),
                        ("seed".to_string(), Json::from_u64(seed)),
                        ("status".to_string(), Json::Str("ok".to_string())),
                        ("deltas_checked".to_string(), Json::from_u64(checked)),
                    ]));
                }
                Err(case) => {
                    cases.push(Json::Obj(vec![
                        ("family".to_string(), Json::Str(family_name.to_string())),
                        ("seed".to_string(), Json::from_u64(seed)),
                        ("status".to_string(), Json::Str("failed".to_string())),
                        ("case".to_string(), case.to_json()),
                    ]));
                    failure = Some(case);
                    break 'sweep;
                }
            }
        }
    }
    report.push_extra("cases", Json::Arr(cases));
    report.push_extra("deltas_checked", Json::from_u64(stats.deltas_checked));
    report.wall_nanos = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (failure.map_or(Ok(stats), Err), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance sweep: every strategy × batch sizes
    /// {1, 16, 1% of |E|} × 5 seeds per generator family, incremental
    /// against from-scratch at every layer.
    #[test]
    fn differential_sweep_is_clean() {
        let cfg = UpdateStressConfig {
            corpus_dir: None,
            ..UpdateStressConfig::default()
        };
        match run_update_stress(&cfg) {
            Ok(stats) => {
                assert_eq!(stats.cases, ZOO.len() as u64 * cfg.seeds_per_generator);
                assert!(
                    stats.deltas_checked
                        >= stats.cases * (cfg.strategies.len() * cfg.batches.len()) as u64 / 2,
                    "suspiciously few deltas checked: {stats:?}"
                );
            }
            Err(case) => panic!("{case}"),
        }
    }

    #[test]
    fn replay_update_corpus_is_clean() {
        let dir = default_update_corpus_dir();
        let replayed = replay_update_corpus(&dir, 3).expect("corpus must parse");
        let failing: Vec<String> = replayed
            .iter()
            .filter(|(_, still)| *still)
            .map(|(c, _)| c.to_string())
            .collect();
        assert!(
            failing.is_empty(),
            "update corpus entries still reproduce:\n{}",
            failing.join("\n\n")
        );
    }

    #[test]
    fn case_json_roundtrips() {
        let case = UpdateCase {
            family: 4,
            graph_seed: 0xfeed_beef,
            strategy: ExecutionStrategy::AdversarialSeeded { seed: 7 },
            threads: 3,
            batch: "fixed-16".to_string(),
            step: 1,
            num_vertices: 9,
            edges: vec![(0, 1), (1, 2), (2, 8)],
            ops: vec![(true, 0, 8), (false, 1, 2)],
            params: vec![(0.4, 2), (0.65, 3)],
            detail: "synthetic".to_string(),
        };
        let text = case.to_json().to_pretty_string();
        let parsed = ppscan_obs::json::parse(&text).expect("valid json");
        assert_eq!(UpdateCase::from_json(&parsed), Some(case));
    }

    #[test]
    fn shrinker_minimizes_to_the_culprit_op() {
        // Synthetic predicate: fails iff the op (+, 0, 5) is present.
        let ops: Vec<Op> = (0..12).map(|i| (i % 2 == 0, i, i + 5)).collect();
        let mut budget = 200;
        let shrunk = shrink_items(ops, &mut budget, &|ops: &[Op]| ops.contains(&(true, 0, 5)));
        assert_eq!(shrunk, vec![(true, 0, 5)]);
    }

    #[test]
    fn batch_spec_resolution() {
        assert_eq!(BatchSpec::Fixed(16).resolve(4), 16);
        assert_eq!(BatchSpec::EdgeFraction(0.01).resolve(5000), 50);
        assert_eq!(BatchSpec::EdgeFraction(0.01).resolve(10), 1, "never zero");
        assert_eq!(BatchSpec::EdgeFraction(0.01).label(), "frac-0.01");
    }

    #[test]
    fn random_delta_is_valid_and_mixed() {
        let g = zoo_graph(4, 99);
        let delta = random_delta(&g, 32, 1234);
        assert!(!delta.is_empty());
        assert!(delta.validate(&g).is_ok());
        assert!(!delta.deletes().is_empty(), "should draw deletions");
        assert!(!delta.inserts().is_empty(), "should draw insertions");
    }

    #[test]
    fn hot_delta_stays_in_a_small_window_and_is_effective() {
        let g = zoo_graph(0, 7); // roll family — the bench's workload
        let delta = hot_delta(&g, 24, 42);
        assert!(!delta.is_empty());
        assert!(delta.validate(&g).is_ok());
        let endpoints: Vec<VertexId> = delta
            .inserts()
            .iter()
            .chain(delta.deletes().iter())
            .flat_map(|&(u, v)| [u, v])
            .collect();
        let lo = *endpoints.iter().min().unwrap();
        let hi = *endpoints.iter().max().unwrap();
        assert!(
            (hi - lo) as usize <= ((24f64.sqrt() as usize) * 4).max(16),
            "window [{lo}, {hi}] wider than the documented bound"
        );
        // Every draw targets a present edge (delete) or an absent one
        // (insert), so the whole batch is effective.
        for &(u, v) in delta.deletes() {
            assert!(g.has_edge(u, v));
        }
        for &(u, v) in delta.inserts() {
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn hot_delta_differential_across_strategies() {
        // The localized-workload analogue of the main sweep, kept small:
        // the rev-index splice and positional core-order diff both take
        // their fast paths here, so a bug in either diverges loudly.
        for family in [0usize, 3, 9] {
            let g = zoo_graph(family, 11);
            for batch in [4usize, 24] {
                let delta = hot_delta(&g, batch, 0x407 + batch as u64);
                for strategy in [
                    ExecutionStrategy::Parallel,
                    ExecutionStrategy::AdversarialSeeded { seed: 3 },
                ] {
                    if let Some(detail) =
                        divergence(&g, &delta, strategy, 2, &[(0.4, 2), (0.65, 3)])
                    {
                        panic!(
                            "hot delta diverged ({}, batch {batch}): {detail}",
                            ZOO[family]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zoo_covers_every_family_with_nontrivial_graphs() {
        for (family, &name) in ZOO.iter().enumerate() {
            let g = zoo_graph(family, 5);
            assert!(g.num_vertices() >= 8, "{name} too small");
            assert!(g.num_edges() >= 7, "{name} too sparse");
        }
    }
}
