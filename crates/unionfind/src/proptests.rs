//! Property tests: both union-find variants must produce identical
//! partitions for identical union sequences, sequentially and under
//! thread interleavings.

use crate::{ConcurrentUnionFind, UnionFind};
use proptest::prelude::*;

fn pairs(n: u32, max_ops: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_matches_sequential_single_thread(ops in pairs(64, 200)) {
        let mut seq = UnionFind::new(64);
        let conc = ConcurrentUnionFind::new(64);
        for &(u, v) in &ops {
            let a = seq.union(u, v);
            let b = conc.union(u, v);
            prop_assert_eq!(a, b, "union({}, {}) disagreed", u, v);
            prop_assert_eq!(seq.is_same_set(u, v), true);
            prop_assert_eq!(conc.is_same_set(u, v), true);
        }
        prop_assert_eq!(seq.canonical_labels(), conc.canonical_labels());
        prop_assert_eq!(seq.num_sets(), conc.num_sets());
    }

    #[test]
    fn concurrent_matches_sequential_two_threads(ops in pairs(48, 300)) {
        let conc = ConcurrentUnionFind::new(48);
        let mid = ops.len() / 2;
        std::thread::scope(|s| {
            let (left, right) = ops.split_at(mid);
            let conc_ref = &conc;
            s.spawn(move || {
                for &(u, v) in left {
                    conc_ref.union(u, v);
                }
            });
            for &(u, v) in right {
                conc.union(u, v);
            }
        });
        let mut seq = UnionFind::new(48);
        for &(u, v) in &ops {
            seq.union(u, v);
        }
        prop_assert_eq!(conc.canonical_labels(), seq.canonical_labels());
    }

    #[test]
    fn same_set_is_an_equivalence(ops in pairs(32, 100), probe in (0u32..32, 0u32..32, 0u32..32)) {
        let conc = ConcurrentUnionFind::new(32);
        for &(u, v) in &ops {
            conc.union(u, v);
        }
        let (a, b, c) = probe;
        // Reflexive, symmetric, transitive.
        prop_assert!(conc.is_same_set(a, a));
        prop_assert_eq!(conc.is_same_set(a, b), conc.is_same_set(b, a));
        if conc.is_same_set(a, b) && conc.is_same_set(b, c) {
            prop_assert!(conc.is_same_set(a, c));
        }
    }
}
