//! Randomized property tests: both union-find variants must produce
//! identical partitions for identical union sequences, sequentially and
//! under thread interleavings.
//!
//! Formerly `proptest`-based; now driven by a seeded SplitMix64 loop so
//! the crate builds with no external dependencies (the crate is a leaf,
//! so the mixer is duplicated here; see `ppscan-graph/src/rng.rs`).

use crate::{ConcurrentUnionFind, UnionFind};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn pairs(rng: &mut Rng, n: u32, max_ops: usize) -> Vec<(u32, u32)> {
    let len = rng.index(max_ops + 1);
    (0..len)
        .map(|_| (rng.index(n as usize) as u32, rng.index(n as usize) as u32))
        .collect()
}

#[test]
fn concurrent_matches_sequential_single_thread() {
    for seed in 0..64u64 {
        let mut rng = Rng(0x0f1d_0000 ^ seed);
        let ops = pairs(&mut rng, 64, 200);
        let mut seq = UnionFind::new(64);
        let conc: ConcurrentUnionFind = ConcurrentUnionFind::new(64);
        for &(u, v) in &ops {
            let a = seq.union(u, v);
            let b = conc.union(u, v);
            assert_eq!(a, b, "union({u}, {v}) disagreed at seed {seed}");
            assert!(seq.is_same_set(u, v));
            assert!(conc.is_same_set(u, v));
        }
        assert_eq!(
            seq.canonical_labels(),
            conc.canonical_labels(),
            "seed {seed}"
        );
        assert_eq!(seq.num_sets(), conc.num_sets(), "seed {seed}");
    }
}

#[test]
fn concurrent_matches_sequential_two_threads() {
    for seed in 0..64u64 {
        let mut rng = Rng(0x2f2d_0000 ^ seed);
        let ops = pairs(&mut rng, 48, 300);
        let conc: ConcurrentUnionFind = ConcurrentUnionFind::new(48);
        let mid = ops.len() / 2;
        std::thread::scope(|s| {
            let (left, right) = ops.split_at(mid);
            let conc_ref = &conc;
            s.spawn(move || {
                for &(u, v) in left {
                    conc_ref.union(u, v);
                }
            });
            for &(u, v) in right {
                conc.union(u, v);
            }
        });
        let mut seq = UnionFind::new(48);
        for &(u, v) in &ops {
            seq.union(u, v);
        }
        assert_eq!(
            conc.canonical_labels(),
            seq.canonical_labels(),
            "seed {seed}"
        );
    }
}

#[test]
fn canonical_labels_invariant_under_argument_order_and_thread_count() {
    // The partition a union sequence produces is a function of the *set*
    // of merged pairs only: `canonical_labels()` must be invariant under
    // swapping each union's arguments and under how the sequence is
    // split across threads. (ppscan-check proves the 2-thread version
    // exhaustively on a bounded scenario — `union-race-2t` — while this
    // sweeps larger random instances.)
    for seed in 0..32u64 {
        let mut rng = Rng(0x4a5b_0000 ^ seed);
        let ops = pairs(&mut rng, 40, 250);

        // Reference: sequential, original argument order.
        let mut seq = UnionFind::new(40);
        for &(u, v) in &ops {
            seq.union(u, v);
        }
        let expect = seq.canonical_labels();

        // Swapping every pair's arguments must not change the partition.
        let mut swapped = UnionFind::new(40);
        for &(u, v) in &ops {
            swapped.union(v, u);
        }
        assert_eq!(
            swapped.canonical_labels(),
            expect,
            "seed {seed}: argument order"
        );

        // Nor must the thread count executing the same multiset of
        // unions, with alternating per-pair argument swaps thrown in.
        for threads in [1usize, 2, 4] {
            let conc: ConcurrentUnionFind = ConcurrentUnionFind::new(40);
            std::thread::scope(|s| {
                for chunk in ops.chunks(ops.len() / threads + 1) {
                    let conc = &conc;
                    s.spawn(move || {
                        for (i, &(u, v)) in chunk.iter().enumerate() {
                            if i % 2 == 0 {
                                conc.union(u, v);
                            } else {
                                conc.union(v, u);
                            }
                        }
                    });
                }
            });
            assert_eq!(
                conc.canonical_labels(),
                expect,
                "seed {seed} threads {threads}"
            );
        }
    }
}

#[test]
fn same_set_is_an_equivalence() {
    for seed in 0..64u64 {
        let mut rng = Rng(0x3e3e_0000 ^ seed);
        let ops = pairs(&mut rng, 32, 100);
        let conc: ConcurrentUnionFind = ConcurrentUnionFind::new(32);
        for &(u, v) in &ops {
            conc.union(u, v);
        }
        let (a, b, c) = (
            rng.index(32) as u32,
            rng.index(32) as u32,
            rng.index(32) as u32,
        );
        // Reflexive, symmetric, transitive.
        assert!(conc.is_same_set(a, a));
        assert_eq!(conc.is_same_set(a, b), conc.is_same_set(b, a));
        if conc.is_same_set(a, b) && conc.is_same_set(b, c) {
            assert!(conc.is_same_set(a, c), "seed {seed}");
        }
    }
}
