//! Sequential union-find with union by rank and path compression —
//! near-constant amortized time per operation (inverse Ackermann).

/// Sequential disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "element count exceeds u32");
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// The paper's `FindRoot(u)`, with full path compression.
    pub fn find_root(&mut self, u: u32) -> u32 {
        let mut root = u;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Second pass: point every traversed node at the root.
        let mut cur = u;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// The paper's `Union(u, v)`; returns `true` if two sets were merged.
    pub fn union(&mut self, u: u32, v: u32) -> bool {
        let (ru, rv) = (self.find_root(u), self.find_root(v));
        if ru == rv {
            return false;
        }
        let (hi, lo) = match self.rank[ru as usize].cmp(&self.rank[rv as usize]) {
            std::cmp::Ordering::Less => (rv, ru),
            std::cmp::Ordering::Greater => (ru, rv),
            std::cmp::Ordering::Equal => {
                self.rank[ru as usize] += 1;
                (ru, rv)
            }
        };
        self.parent[lo as usize] = hi;
        self.num_sets -= 1;
        true
    }

    /// The paper's `IsSameSet(u, v)`.
    pub fn is_same_set(&mut self, u: u32, v: u32) -> bool {
        self.find_root(u) == self.find_root(v)
    }

    /// Canonical labeling: maps each element to the *minimum id* in its
    /// set — the representation both union-find variants and the
    /// differential tests compare on.
    pub fn canonical_labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut min_of_root = vec![u32::MAX; n];
        for u in 0..n as u32 {
            let r = self.find_root(u) as usize;
            min_of_root[r] = min_of_root[r].min(u);
        }
        (0..n as u32)
            .map(|u| min_of_root[self.find_root(u) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        for u in 0..5 {
            assert_eq!(uf.find_root(u), u);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert!(!uf.union(1, 2));
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.is_same_set(0, 2));
    }

    #[test]
    fn canonical_labels_are_min_ids() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 1);
        assert_eq!(uf.canonical_labels(), vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(100);
        for u in 1..100u32 {
            uf.union(u - 1, u);
        }
        let root = uf.find_root(99);
        // After compression each node points (near-)directly at the root.
        for u in 0..100u32 {
            uf.find_root(u);
            assert_eq!(uf.parent[u as usize], root);
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
