//! The atomic substrate abstraction: word-sized atomic cells as a trait.
//!
//! ppSCAN's two lock-free protocols — the concurrent union-find's parent
//! array ([`crate::ConcurrentUnionFind`]) and the similarity-label array
//! (`ppscan_core::SimStore`) — are written against these traits instead
//! of `std::sync::atomic` directly, so the *same* protocol code can run
//! on two substrates:
//!
//! * **Real** (`std::sync::atomic::AtomicU32` / `AtomicU8`): the
//!   production path. The structs default their type parameter to the
//!   std types and every trait method is an `#[inline]` delegation, so
//!   monomorphization erases the abstraction — the generated code is
//!   bit-identical to calling the std atomics directly (zero cost).
//! * **Modeled** (`ppscan_check::ModelAtomicU32` / `ModelAtomicU8`): an
//!   exhaustive interleaving model checker's shim. Every operation is a
//!   scheduling decision point, `Relaxed` loads may return stale values
//!   from a per-location store history, and the checker DFS-explores all
//!   interleavings of small bounded scenarios.
//!
//! The traits deliberately mirror the exact `std::sync::atomic` method
//! signatures (including the [`Ordering`] parameters) so the protocol
//! code states its *intended* memory ordering once and both substrates
//! see it: the real substrate executes it, the modeled substrate checks
//! it.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

/// A `u32` atomic cell: the substrate of the union-find parent array.
///
/// `Send + Sync` is required so containers of cells can be shared across
/// threads exactly like `Vec<AtomicU32>`.
pub trait AtomicCellU32: Send + Sync {
    /// A cell initialized to `v`.
    fn new(v: u32) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> u32;
    /// Atomic store.
    fn store(&self, v: u32, order: Ordering);
    /// Atomic compare-exchange; on failure returns the observed value.
    fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32>;
    /// Weak compare-exchange (may fail spuriously).
    fn compare_exchange_weak(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32>;
}

/// A `u8` atomic cell: the substrate of the similarity-label array.
pub trait AtomicCellU8: Send + Sync {
    /// A cell initialized to `v`.
    fn new(v: u8) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> u8;
    /// Atomic store.
    fn store(&self, v: u8, order: Ordering);
}

impl AtomicCellU32 for AtomicU32 {
    #[inline(always)]
    fn new(v: u32) -> Self {
        AtomicU32::new(v)
    }

    #[inline(always)]
    fn load(&self, order: Ordering) -> u32 {
        AtomicU32::load(self, order)
    }

    #[inline(always)]
    fn store(&self, v: u32, order: Ordering) {
        AtomicU32::store(self, v, order)
    }

    #[inline(always)]
    fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32> {
        AtomicU32::compare_exchange(self, current, new, success, failure)
    }

    #[inline(always)]
    fn compare_exchange_weak(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32> {
        AtomicU32::compare_exchange_weak(self, current, new, success, failure)
    }
}

impl AtomicCellU8 for AtomicU8 {
    #[inline(always)]
    fn new(v: u8) -> Self {
        AtomicU8::new(v)
    }

    #[inline(always)]
    fn load(&self, order: Ordering) -> u8 {
        AtomicU8::load(self, order)
    }

    #[inline(always)]
    fn store(&self, v: u8, order: Ordering) {
        AtomicU8::store(self, v, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The traits must be callable through generics with the std types —
    /// this is the exact shape the protocol structs rely on.
    fn exercise<A: AtomicCellU32>() {
        let c = A::new(7);
        assert_eq!(c.load(Ordering::Relaxed), 7);
        c.store(9, Ordering::Relaxed);
        assert_eq!(
            c.compare_exchange(9, 11, Ordering::AcqRel, Ordering::Relaxed),
            Ok(9)
        );
        assert_eq!(
            c.compare_exchange(9, 12, Ordering::AcqRel, Ordering::Relaxed),
            Err(11)
        );
        // Weak CAS may fail spuriously; retry like real call sites do.
        while c
            .compare_exchange_weak(11, 13, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {}
        assert_eq!(c.load(Ordering::Relaxed), 13);
    }

    #[test]
    fn std_substrate_roundtrip() {
        exercise::<AtomicU32>();
        let b = <AtomicU8 as AtomicCellU8>::new(1);
        b.store(2, Ordering::Relaxed);
        assert_eq!(AtomicCellU8::load(&b, Ordering::Relaxed), 2);
    }
}
