//! # ppscan-unionfind
//!
//! Disjoint-set (union-find) structures for SCAN-family core clustering.
//!
//! * [`seq::UnionFind`] — classic sequential union by rank with full path
//!   compression; used by the sequential pSCAN baseline (its Lemma 3.5
//!   replaces BFS cluster expansion with disjoint-set unions).
//! * [`concurrent::ConcurrentUnionFind`] — a lock-free concurrent
//!   union-find in the style of Anderson & Woll \[STOC'91\], the structure
//!   ppSCAN's thread-safe core clustering adopts (§4.1 "wait-free
//!   union-find implementations"): `parent` is an array of atomics, links
//!   are installed with CAS at roots (ordered by id, so every set's root
//!   is its minimum-id member — giving deterministic final forests
//!   regardless of interleaving), and finds apply lock-free path halving.
//!
//! Both expose the operations the paper names in Definition 3.6:
//! `find_root`, `union`, `is_same_set`.
//!
//! [`concurrent::ConcurrentUnionFind`] is generic over its atomic
//! substrate ([`substrate::AtomicCellU32`], default [`std::sync::atomic::
//! AtomicU32`]): production code monomorphizes to the real atomics at
//! zero cost, while the `ppscan-check` crate instantiates the same
//! protocol over model atomics and exhaustively explores interleavings.

pub mod concurrent;
pub mod seq;
pub mod substrate;
pub mod traced;

pub use concurrent::ConcurrentUnionFind;
pub use seq::UnionFind;
pub use substrate::{AtomicCellU32, AtomicCellU8};
pub use traced::{TracedAtomicU32, TracedAtomicU8};

#[cfg(test)]
mod proptests;
