//! Lock-free concurrent union-find (Anderson & Woll style).
//!
//! `parent` is an array of `AtomicU32`. Links are only ever installed at
//! a *root*, by CAS, and always point a higher-id root at a lower-id
//! root. That id-ordering rule gives three properties ppSCAN relies on:
//!
//! 1. **No cycles:** parent pointers strictly decrease along any path, so
//!    the structure is always a forest regardless of interleaving.
//! 2. **Lock-freedom:** a failed CAS means another thread installed a
//!    link at that root — global progress was made.
//! 3. **Determinism:** the final forest partitions are a function of the
//!    *set* of unions performed, not their order, and each set's root is
//!    its minimum id. ppSCAN's cluster-id initialization (Algorithm 4,
//!    `InitClusterId`) exploits exactly this.
//!
//! `find` uses lock-free path halving (CAS grandparent over parent;
//! failure is benign and simply skipped).
//!
//! # Memory ordering
//!
//! All loads/stores are `Relaxed` and the CAS is `AcqRel`: the only
//! shared state is the parent array itself — no payload is published
//! *through* a parent pointer — so the algorithm's correctness rests on
//! CAS atomicity and the monotone id-ordering argument, not on
//! cross-variable happens-before edges. The callers in `ppscan-core`
//! place rayon barriers between the clustering phases, which provide the
//! synchronization for reading final results. Every `Ordering::` choice
//! in this file is audited per call site in DESIGN.md §9.3 and checked
//! exhaustively (including weak-memory stale `Relaxed` reads) by the
//! `ppscan-check` interleaving model checker.
//!
//! # Atomic substrate
//!
//! The struct is generic over its atomic cell type
//! ([`crate::substrate::AtomicCellU32`], defaulting to the real
//! [`AtomicU32`]) so the *identical* protocol code runs both in
//! production (monomorphized to std atomics, zero cost) and under the
//! `ppscan-check` model checker's `ModelAtomicU32` shim, where every
//! operation is a scheduling decision point.

use crate::substrate::AtomicCellU32;
use std::sync::atomic::{AtomicU32, Ordering};

/// Concurrent disjoint-set forest over `0..n`; all operations take
/// `&self` and are safe to call from many threads.
pub struct ConcurrentUnionFind<A: AtomicCellU32 = AtomicU32> {
    parent: Vec<A>,
}

impl<A: AtomicCellU32> ConcurrentUnionFind<A> {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "element count exceeds u32");
        Self {
            parent: (0..n as u32).map(A::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The paper's `FindRoot(u)` with lock-free path halving.
    pub fn find_root(&self, u: u32) -> u32 {
        let mut x = u;
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if gp != p {
                // Path halving: best-effort re-point x at its grandparent.
                let _ = self.parent[x as usize].compare_exchange_weak(
                    p,
                    gp,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            x = gp;
        }
    }

    /// The paper's `Union(u, v)`; returns `true` if this call merged two
    /// previously-disjoint sets (at most one concurrent caller observes
    /// `true` per merge).
    pub fn union(&self, u: u32, v: u32) -> bool {
        let (mut u, mut v) = (u, v);
        loop {
            u = self.find_root(u);
            v = self.find_root(v);
            if u == v {
                return false;
            }
            // Link the higher-id root under the lower-id root.
            let (hi, lo) = if u > v { (u, v) } else { (v, u) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                // hi stopped being a root; retry from the new roots.
                Err(_) => continue,
            }
        }
    }

    /// The paper's `IsSameSet(u, v)`.
    ///
    /// Precise when quiescent. Under concurrent unions a `true` is always
    /// permanent (sets never split); a `false` may be stale — exactly the
    /// semantics ppSCAN's union-find pruning needs, where a stale `false`
    /// only costs one redundant similarity computation.
    pub fn is_same_set(&self, u: u32, v: u32) -> bool {
        let mut u = u;
        let mut v = v;
        loop {
            u = self.find_root(u);
            v = self.find_root(v);
            if u == v {
                return true;
            }
            // If u is still a root, the two were genuinely distinct at
            // this instant (linearization point: the load below).
            if self.parent[u as usize].load(Ordering::Relaxed) == u {
                return false;
            }
        }
    }

    /// Canonical labeling: each element mapped to the minimum id of its
    /// set. Call only when no unions are in flight.
    pub fn canonical_labels(&self) -> Vec<u32> {
        // Id-ordered linking makes every root the minimum id of its set.
        (0..self.len() as u32).map(|u| self.find_root(u)).collect()
    }

    /// Number of disjoint sets (quiescent only).
    pub fn num_sets(&self) -> usize {
        (0..self.len() as u32)
            .filter(|&u| self.parent[u as usize].load(Ordering::Relaxed) == u)
            .count()
    }

    /// The current parent pointer of `u` (diagnostic; racy snapshot).
    pub fn parent_of(&self, u: u32) -> u32 {
        self.parent[u as usize].load(Ordering::Relaxed)
    }

    /// Checks the structural invariant that makes the forest safe under
    /// *any* interleaving: every parent pointer satisfies
    /// `parent[x] <= x` (links only ever point a higher id at a lower
    /// id), which implies acyclicity. Returns the first violating vertex.
    ///
    /// Used by the `ppscan-check` scenarios as a per-schedule invariant
    /// and safe to call mid-run (each check is a single racy load; the
    /// invariant is per-cell, so a racy snapshot still must satisfy it).
    pub fn validate_forest(&self) -> Result<(), u32> {
        for u in 0..self.len() as u32 {
            if self.parent[u as usize].load(Ordering::Relaxed) > u {
                return Err(u);
            }
        }
        Ok(())
    }
}

impl<A: AtomicCellU32> std::fmt::Debug for ConcurrentUnionFind<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConcurrentUnionFind(len = {})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(6);
        assert!(uf.union(4, 2));
        assert!(uf.union(2, 5));
        assert!(!uf.union(5, 4));
        assert!(uf.union(0, 1));
        assert!(uf.is_same_set(4, 5));
        assert!(!uf.is_same_set(0, 2));
        assert_eq!(uf.num_sets(), 3); // {0,1} {2,4,5} {3}
        assert_eq!(uf.canonical_labels(), vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn roots_are_min_ids() {
        let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(10);
        uf.union(9, 7);
        uf.union(7, 3);
        uf.union(3, 8);
        assert_eq!(uf.find_root(9), 3);
        assert_eq!(uf.find_root(8), 3);
    }

    #[test]
    fn concurrent_unions_converge() {
        // Many threads union random pairs; the final partition must equal
        // the sequential result over the same pair set.
        use std::sync::Arc;
        let n = 2000u32;
        let pairs: Vec<(u32, u32)> = (0..4000)
            .map(|k: u64| {
                let x = k
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((x >> 13) % n as u64) as u32, ((x >> 37) % n as u64) as u32)
            })
            .collect();

        let uf: Arc<ConcurrentUnionFind> = Arc::new(ConcurrentUnionFind::new(n as usize));
        std::thread::scope(|s| {
            for chunk in pairs.chunks(500) {
                let uf = Arc::clone(&uf);
                s.spawn(move || {
                    for &(u, v) in chunk {
                        uf.union(u, v);
                    }
                });
            }
        });

        let mut seq = crate::seq::UnionFind::new(n as usize);
        for &(u, v) in &pairs {
            seq.union(u, v);
        }
        assert_eq!(uf.canonical_labels(), seq.canonical_labels());
    }

    #[test]
    fn exactly_one_winner_per_merge() {
        // Two threads race to union the same pair; exactly one sees true.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for _ in 0..50 {
            let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(2);
            let wins = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        if uf.union(0, 1) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(0);
        assert!(uf.is_empty());
        let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(1);
        assert_eq!(uf.find_root(0), 0);
        assert!(!uf.union(0, 0));
    }
}
