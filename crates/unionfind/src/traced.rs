//! The traced atomic substrate: real std atomics that additionally
//! report every synchronizing operation to the `ppscan_obs::race`
//! happens-before detector.
//!
//! This is the third substrate of the trait pair in [`crate::substrate`]
//! (after the real and modeled ones): protocol code monomorphized over
//! [`TracedAtomicU32`] / [`TracedAtomicU8`] executes on genuine
//! hardware atomics — real `Parallel` threads, real weak-memory
//! hardware — while the detector builds the happens-before relation
//! from the *declared* orderings at each call site. When no
//! [`ppscan_obs::race::DetectionSession`] is active, each operation
//! costs one extra relaxed flag load.
//!
//! A release-or-stronger store/RMW joins the thread's vector clock into
//! the cell's release clock; an acquire-or-stronger load/RMW joins the
//! cell's release clock into the thread's. `Relaxed` operations record
//! provenance only — no edge — which is exactly what lets the detector
//! catch protocols that publish payloads through insufficiently ordered
//! flags.

use crate::substrate::{AtomicCellU32, AtomicCellU8};
use ppscan_obs::race;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

/// A `u32` cell on the traced substrate.
pub struct TracedAtomicU32 {
    inner: AtomicU32,
}

impl TracedAtomicU32 {
    #[inline]
    fn loc(&self) -> usize {
        &self.inner as *const AtomicU32 as usize
    }
}

impl AtomicCellU32 for TracedAtomicU32 {
    fn new(v: u32) -> Self {
        TracedAtomicU32 {
            inner: AtomicU32::new(v),
        }
    }

    fn load(&self, order: Ordering) -> u32 {
        let v = self.inner.load(order);
        race::sync_load(self.loc(), "TracedAtomicU32::load", order);
        v
    }

    fn store(&self, v: u32, order: Ordering) {
        race::sync_store(self.loc(), "TracedAtomicU32::store", order);
        self.inner.store(v, order);
    }

    fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32> {
        let r = self.inner.compare_exchange(current, new, success, failure);
        match r {
            Ok(_) => race::sync_rmw(
                self.loc(),
                "TracedAtomicU32::compare_exchange",
                success,
                true,
            ),
            Err(_) => race::sync_load(self.loc(), "TracedAtomicU32::compare_exchange", failure),
        }
        r
    }

    fn compare_exchange_weak(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32> {
        let r = self
            .inner
            .compare_exchange_weak(current, new, success, failure);
        match r {
            Ok(_) => race::sync_rmw(
                self.loc(),
                "TracedAtomicU32::compare_exchange_weak",
                success,
                true,
            ),
            Err(_) => race::sync_load(
                self.loc(),
                "TracedAtomicU32::compare_exchange_weak",
                failure,
            ),
        }
        r
    }
}

/// A `u8` cell on the traced substrate.
pub struct TracedAtomicU8 {
    inner: AtomicU8,
}

impl TracedAtomicU8 {
    #[inline]
    fn loc(&self) -> usize {
        &self.inner as *const AtomicU8 as usize
    }
}

impl AtomicCellU8 for TracedAtomicU8 {
    fn new(v: u8) -> Self {
        TracedAtomicU8 {
            inner: AtomicU8::new(v),
        }
    }

    fn load(&self, order: Ordering) -> u8 {
        let v = self.inner.load(order);
        race::sync_load(self.loc(), "TracedAtomicU8::load", order);
        v
    }

    fn store(&self, v: u8, order: Ordering) {
        race::sync_store(self.loc(), "TracedAtomicU8::store", order);
        self.inner.store(v, order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentUnionFind;
    use ppscan_obs::race::DetectionSession;

    #[test]
    fn traced_union_find_behaves_like_real() {
        let uf: ConcurrentUnionFind<TracedAtomicU32> = ConcurrentUnionFind::new(6);
        assert!(uf.union(4, 2));
        assert!(uf.union(2, 5));
        assert!(!uf.union(5, 4));
        assert!(uf.is_same_set(4, 5));
        assert_eq!(uf.canonical_labels(), vec![0, 1, 2, 3, 2, 2]);
    }

    #[test]
    fn traced_union_find_is_clean_under_detection() {
        let session = DetectionSession::begin();
        let uf: ConcurrentUnionFind<TracedAtomicU32> = ConcurrentUnionFind::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let uf = &uf;
                s.spawn(move || {
                    for i in 0..15 {
                        uf.union(t * 16 + i, t * 16 + i + 1);
                    }
                });
            }
        });
        assert_eq!(uf.canonical_labels()[63], 48);
        let races = session.finish();
        assert!(races.is_empty(), "clean protocol reported {races:?}");
    }
}
