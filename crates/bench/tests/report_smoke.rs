//! Every bench binary's `--report <path>` must produce a parseable
//! [`FigureReport`] on a tiny graph, `run_all --report-dir` must fan the
//! flag out to one report per figure, and `report_check` must accept a
//! self-baseline and reject corrupt input.

use ppscan_obs::FigureReport;
use std::path::PathBuf;
use std::process::Command;

/// Tiny-graph flags shared by every smoke invocation: ~10³ edges, the
/// reduced `--quick` grid, a single dataset for the dataset-driven bins.
const TINY: [&str; 5] = ["--scale", "0.01", "--quick", "--datasets", "orkut"];

fn tmp_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("report-smoke");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Runs one bench binary with `--report` and parses what it wrote.
fn check_bin(name: &str, exe: &str) -> FigureReport {
    let path = tmp_dir().join(format!("{name}.json"));
    let output = Command::new(exe)
        .args(TINY)
        .arg("--report")
        .arg(&path)
        .output()
        .unwrap_or_else(|e| panic!("launching {name}: {e}"));
    assert!(
        output.status.success(),
        "{name} failed ({}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} wrote no report at {}: {e}", path.display()));
    let report =
        FigureReport::parse(&text).unwrap_or_else(|e| panic!("{name} report does not parse: {e}"));
    assert_eq!(report.figure, name, "report must identify its figure");
    assert!(report.table.is_some(), "{name} must attach its table");
    report
}

macro_rules! report_smoke {
    ($($name:ident),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                let report = check_bin(
                    stringify!($name),
                    env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
                );
                // Every figure except fig8 (whose kernels may be
                // unavailable on the host) records at least one run.
                if stringify!($name) != "fig8_roll" {
                    assert!(!report.runs.is_empty(), "no runs recorded");
                }
            }
        )+
    };
}

report_smoke!(
    table1,
    table2,
    fig1_breakdown,
    fig2_compare,
    fig3_compare,
    fig4_invocations,
    fig5_simd,
    fig6_scalability,
    fig7_robustness,
    fig8_roll,
    ablation_edorder,
    ablation_twophase,
    ablation_sched,
    parameter_exploration,
    obs_overhead,
    serve_bench,
    soak,
    autotune_bench,
);

#[test]
fn autotuned_runs_carry_decision_mix() {
    // Deep-check the autotuner figure: every `config=autotuned` run must
    // record the measured plan's decision mix, and the win counts must
    // partition exactly the planned buckets.
    let report = check_bin("autotune_bench", env!("CARGO_BIN_EXE_autotune_bench"));
    let autotuned: Vec<_> = report
        .runs
        .iter()
        .filter(|r| {
            r.extra
                .iter()
                .any(|(k, v)| k == "config" && v.as_str() == Some("autotuned"))
        })
        .collect();
    assert!(!autotuned.is_empty(), "no autotuned runs recorded");
    for run in autotuned {
        let c = &run.counters;
        assert!(c.autotune_samples > 0, "plan sampled no pairs");
        assert!(
            c.autotune_planned + c.autotune_fallback > 0,
            "no dispatches"
        );
        let wins = c.autotune_wins_merge
            + c.autotune_wins_gallop
            + c.autotune_wins_block
            + c.autotune_wins_fesia
            + c.autotune_wins_shuffle;
        assert_eq!(wins, c.autotune_buckets, "win mix must partition buckets");
    }
}

#[test]
fn ppscan_runs_carry_span_phases_and_counters() {
    // Deep-check one figure: fig6's runs are span-sourced ppSCAN reports.
    let report = check_bin("fig6_scalability", env!("CARGO_BIN_EXE_fig6_scalability"));
    for run in &report.runs {
        assert_eq!(run.algorithm, "ppscan");
        assert!(run.wall_nanos > 0);
        assert_eq!(run.phases.len(), 4, "four span-sourced stages");
        assert!(run.counters.compsim_invocations > 0);
        assert!(run.phases.iter().any(|p| p.tasks > 0));
    }
}

#[test]
fn run_all_report_dir_emits_one_report_per_figure() {
    let dir = tmp_dir().join("run-all");
    let output = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(TINY)
        .arg("--report-dir")
        .arg(&dir)
        .output()
        .expect("launching run_all");
    assert!(
        output.status.success(),
        "run_all failed ({}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("report dir") {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let report =
            FigureReport::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        assert_eq!(report.figure, stem);
        count += 1;
    }
    assert_eq!(count, 18, "one report per figure binary");
}

#[test]
fn report_check_accepts_self_baseline_and_rejects_garbage() {
    // table1's statistics are deterministic for a fixed seed + scale, so
    // a fresh run must diff clean against itself.
    let a = tmp_dir().join("table1-baseline.json");
    let b = tmp_dir().join("table1-current.json");
    for path in [&a, &b] {
        let output = Command::new(env!("CARGO_BIN_EXE_table1"))
            .args(TINY)
            .arg("--report")
            .arg(path)
            .output()
            .expect("launching table1");
        assert!(output.status.success());
    }
    let ok = Command::new(env!("CARGO_BIN_EXE_report_check"))
        .arg(&b)
        .arg("--baseline")
        .arg(&a)
        .output()
        .expect("launching report_check");
    assert!(
        ok.status.success(),
        "self-baseline diff must be clean:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );

    let garbage = tmp_dir().join("garbage.json");
    std::fs::write(&garbage, "{\"schema\": 1, \"not\": \"a report\"").unwrap();
    let bad = Command::new(env!("CARGO_BIN_EXE_report_check"))
        .arg(&garbage)
        .output()
        .expect("launching report_check");
    assert!(!bad.status.success(), "garbage must be rejected");
}

#[test]
fn report_check_fails_on_embedded_races() {
    use ppscan_obs::race::{RaceAccess, RaceReport, RACE_REPORT_VERSION};
    let access = |thread: u64, write: bool, site: &str| RaceAccess {
        thread,
        clock: 1,
        write,
        site: site.to_string(),
        recent_ops: Vec::new(),
        vector_clock: vec![1, 1],
    };
    let mut run = ppscan_obs::RunReport::new("stress");
    run.races.push(RaceReport {
        version: RACE_REPORT_VERSION,
        location: "claim-payload".to_string(),
        kind: "write-write".to_string(),
        first: access(1, true, "fixture::install"),
        second: access(2, true, "fixture::install"),
    });
    let path = tmp_dir().join("racy-run.json");
    run.write_to_file(&path).expect("write racy run report");
    let out = Command::new(env!("CARGO_BIN_EXE_report_check"))
        .arg(&path)
        .output()
        .expect("launching report_check");
    assert!(
        !out.status.success(),
        "a report embedding races must fail the check"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("claim-payload") && stderr.contains("write-write"),
        "race kind and location must be surfaced:\n{stderr}"
    );

    // The same report with the race removed passes: the gate, not the
    // round trip, is what rejected it.
    let mut clean = run;
    clean.races.clear();
    let clean_path = tmp_dir().join("clean-run.json");
    clean.write_to_file(&clean_path).expect("write clean run");
    let ok = Command::new(env!("CARGO_BIN_EXE_report_check"))
        .arg(&clean_path)
        .output()
        .expect("launching report_check");
    assert!(
        ok.status.success(),
        "race-free run report must pass:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );
}
