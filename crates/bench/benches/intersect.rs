//! Microbenchmarks for the set-intersection kernels (§5, §6.2.2): merge
//! vs galloping vs pivot scalar/AVX2/AVX-512, across array sizes, overlap
//! densities and early-termination regimes.
//!
//! The paper's claim to verify: the pivot-based vectorized kernel beats
//! the merge kernel by up to ~4× on intersection-heavy regimes (long
//! arrays, small ε ⇒ low `min_cn` that is *not* trivially reached), with
//! AVX-512 ahead of AVX2.
//!
//! Plain `harness = false` binary (no criterion in the hermetic build).

use ppscan_bench::Table;
use ppscan_graph::rng::SplitMix64;
use ppscan_intersect::Kernel;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Sorted random array of `len` ids drawn from `0..universe`.
fn sorted_ids(len: usize, universe: u32, rng: &mut SplitMix64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len * 2)
        .map(|_| rng.gen_index(universe as usize) as u32)
        .collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

fn kernels() -> Vec<Kernel> {
    Kernel::ALL.into_iter().filter(|k| k.available()).collect()
}

/// Best wall-clock per check over a few thousand repetitions.
fn time_check(k: Kernel, a: &[u32], b: &[u32], min_cn: u64) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let iters = 2000;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(k.check(black_box(a), black_box(b), min_cn));
        }
        best = best.min(t0.elapsed() / iters);
    }
    best
}

fn nanos(d: Duration) -> String {
    format!("{}", d.as_nanos())
}

fn main() {
    let mut table = Table::new(&["regime", "len", "kernel", "ns/check"]);

    // Dense overlap (~50% match rate), decisions require deep scans.
    let mut rng = SplitMix64::seed_from_u64(1);
    for len in [64usize, 512, 4096] {
        let a = sorted_ids(len, (len * 2) as u32, &mut rng);
        let b = sorted_ids(len, (len * 2) as u32, &mut rng);
        // min_cn high enough to forbid trivial Sim, low enough to need a
        // real scan: half of the expected overlap.
        let min_cn = (len / 4) as u64;
        for k in kernels() {
            let d = time_check(k, &a, &b, min_cn);
            table.row(vec![
                "dense".into(),
                len.to_string(),
                k.name().into(),
                nanos(d),
            ]);
        }
    }

    // Sparse overlap with early NSim termination: the `du`/`dv` bounds
    // collapse quickly — the regime pruning creates at large ε.
    let mut rng = SplitMix64::seed_from_u64(2);
    for len in [512usize, 4096] {
        let a: Vec<u32> = sorted_ids(len, len as u32 * 4, &mut rng);
        let b: Vec<u32> = a.iter().map(|&x| x + len as u32 * 8).collect();
        let min_cn = (len / 2) as u64;
        for k in kernels() {
            let d = time_check(k, &a, &b, min_cn);
            table.row(vec![
                "early-nsim".into(),
                len.to_string(),
                k.name().into(),
                nanos(d),
            ]);
        }
    }

    // Skewed sizes (degree-16384 hub vs small spoke): where galloping
    // should shine and the pivot kernels must stay competitive.
    let mut rng = SplitMix64::seed_from_u64(3);
    let big = sorted_ids(16_384, 80_000, &mut rng);
    for small_len in [16usize, 128] {
        let small = sorted_ids(small_len, 80_000, &mut rng);
        let min_cn = 4u64;
        for k in kernels() {
            let d = time_check(k, &small, &big, min_cn);
            table.row(vec![
                "skewed".into(),
                small_len.to_string(),
                k.name().into(),
                nanos(d),
            ]);
        }
    }

    table.print(false);
}
