//! Criterion microbenchmarks for the set-intersection kernels (§5,
//! §6.2.2): merge vs galloping vs pivot scalar/AVX2/AVX-512, across array
//! sizes, overlap densities and early-termination regimes.
//!
//! The paper's claim to verify: the pivot-based vectorized kernel beats
//! the merge kernel by up to ~4× on intersection-heavy regimes (long
//! arrays, small ε ⇒ low `min_cn` that is *not* trivially reached), with
//! AVX-512 ahead of AVX2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppscan_intersect::Kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Sorted random array of `len` ids drawn from `0..universe`.
fn sorted_ids(len: usize, universe: u32, rng: &mut StdRng) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len * 2).map(|_| rng.gen_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

fn kernels() -> Vec<Kernel> {
    Kernel::ALL.into_iter().filter(|k| k.available()).collect()
}

/// Dense overlap (~50% match rate), decisions require deep scans.
fn bench_dense_overlap(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("intersect/dense");
    for len in [64usize, 512, 4096] {
        let a = sorted_ids(len, (len * 2) as u32, &mut rng);
        let b = sorted_ids(len, (len * 2) as u32, &mut rng);
        // min_cn high enough to forbid trivial Sim, low enough to need
        // a real scan: half of the expected overlap.
        let min_cn = (len / 4) as u64;
        group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
        for k in kernels() {
            group.bench_with_input(BenchmarkId::new(k.name(), len), &len, |bch, _| {
                bch.iter(|| black_box(k.check(black_box(&a), black_box(&b), min_cn)));
            });
        }
    }
    group.finish();
}

/// Sparse overlap with early NSim termination: the `du`/`dv` bounds
/// collapse quickly — the regime pruning creates at large ε.
fn bench_early_termination(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("intersect/early-nsim");
    for len in [512usize, 4096] {
        // Disjoint ranges: zero matches.
        let a: Vec<u32> = sorted_ids(len, len as u32 * 4, &mut rng);
        let b: Vec<u32> = a.iter().map(|&x| x + len as u32 * 8).collect();
        let min_cn = (len / 2) as u64;
        group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
        for k in kernels() {
            group.bench_with_input(BenchmarkId::new(k.name(), len), &len, |bch, _| {
                bch.iter(|| black_box(k.check(black_box(&a), black_box(&b), min_cn)));
            });
        }
    }
    group.finish();
}

/// Skewed sizes (degree-1000 hub vs degree-32 spoke): where galloping
/// should shine and the pivot kernels must stay competitive.
fn bench_skewed_sizes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("intersect/skewed");
    let big = sorted_ids(16_384, 80_000, &mut rng);
    for small_len in [16usize, 128] {
        let small = sorted_ids(small_len, 80_000, &mut rng);
        let min_cn = 4u64;
        for k in kernels() {
            group.bench_with_input(
                BenchmarkId::new(k.name(), small_len),
                &small_len,
                |bch, _| {
                    bch.iter(|| black_box(k.check(black_box(&small), black_box(&big), min_cn)));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dense_overlap, bench_early_termination, bench_skewed_sizes
}
criterion_main!(benches);
