//! Criterion microbenchmarks for the degree-based task scheduler (§4.4):
//! chunking cost (the paper claims "negligible overhead": one add per
//! vertex) and end-to-end load balance on skewed degree distributions
//! versus naive uniform chunking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppscan_sched::{chunk_by_weight, WorkerPool, DEFAULT_DEGREE_THRESHOLD};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Power-law-ish degree array (many small, few huge).
fn skewed_degrees(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen_range(0.0001f64..1.0);
            (4.0 / r.powf(0.8)) as u64
        })
        .collect()
}

fn bench_chunking_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/chunking");
    for n in [100_000usize, 1_000_000] {
        let deg = skewed_degrees(n, 7);
        group.bench_with_input(BenchmarkId::new("chunk_by_weight", n), &n, |b, _| {
            b.iter(|| {
                black_box(chunk_by_weight(n, DEFAULT_DEGREE_THRESHOLD, |v| {
                    deg[v as usize]
                }))
            });
        });
    }
    group.finish();
}

/// Simulated vertex computation: spin proportional to degree.
fn simulate(deg: &[u64], range: std::ops::Range<u32>, sink: &AtomicU64) {
    let mut acc = 0u64;
    for v in range {
        let d = deg[v as usize];
        for i in 0..d {
            acc = acc.wrapping_add(i.wrapping_mul(0x9e3779b9));
        }
    }
    sink.fetch_add(acc, Ordering::Relaxed);
}

fn bench_load_balance(c: &mut Criterion) {
    let n = 30_000usize;
    let deg = skewed_degrees(n, 11);
    let threads = std::thread::available_parallelism().map_or(4, |m| m.get());
    let pool = WorkerPool::new(threads);
    let mut group = c.benchmark_group("sched/load-balance");
    group.sample_size(10);

    group.bench_function("degree-weighted", |b| {
        b.iter(|| {
            let sink = AtomicU64::new(0);
            pool.run_weighted(n, DEFAULT_DEGREE_THRESHOLD, |v| deg[v as usize], |r| {
                simulate(&deg, r, &sink)
            });
            black_box(sink.into_inner())
        });
    });
    group.bench_function("uniform-chunks", |b| {
        // Same task count as the weighted scheduler would produce, but
        // cut uniformly by vertex count — skew lands whole hubs in
        // single tasks with no compensation.
        let weighted_tasks = chunk_by_weight(n, DEFAULT_DEGREE_THRESHOLD, |v| deg[v as usize]);
        let per = n.div_ceil(weighted_tasks.len().max(1));
        let uniform: Vec<std::ops::Range<u32>> = (0..n)
            .step_by(per)
            .map(|s| s as u32..((s + per).min(n)) as u32)
            .collect();
        b.iter(|| {
            let sink = AtomicU64::new(0);
            pool.run_chunks(&uniform, |r| simulate(&deg, r, &sink));
            black_box(sink.into_inner())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_chunking_cost, bench_load_balance);
criterion_main!(benches);
