//! Microbenchmarks for the degree-based task scheduler (§4.4): chunking
//! cost (the paper claims "negligible overhead": one add per vertex) and
//! end-to-end load balance on skewed degree distributions versus naive
//! uniform chunking.
//!
//! Plain `harness = false` binary (no criterion in the hermetic build):
//! best-of-N wall-clock timing via `ppscan_bench::best_of`.

use ppscan_bench::{secs, Table};
use ppscan_graph::rng::SplitMix64;
use ppscan_sched::{chunk_by_weight, WorkerPool, DEFAULT_DEGREE_THRESHOLD};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn best_of(iters: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// Power-law-ish degree array (many small, few huge).
fn skewed_degrees(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r = rng.gen_f64().max(0.0001);
            (4.0 / r.powf(0.8)) as u64
        })
        .collect()
}

/// Simulated vertex computation: spin proportional to degree.
fn simulate(deg: &[u64], range: std::ops::Range<u32>, sink: &AtomicU64) {
    let mut acc = 0u64;
    for v in range {
        let d = deg[v as usize];
        for i in 0..d {
            acc = acc.wrapping_add(i.wrapping_mul(0x9e3779b9));
        }
    }
    sink.fetch_add(acc, Ordering::Relaxed);
}

fn main() {
    let mut table = Table::new(&["benchmark", "case", "best"]);

    for n in [100_000usize, 1_000_000] {
        let deg = skewed_degrees(n, 7);
        let d = best_of(5, || {
            black_box(chunk_by_weight(n, DEFAULT_DEGREE_THRESHOLD, |v| {
                deg[v as usize]
            }));
        });
        table.row(vec!["sched/chunking".into(), format!("n={n}"), secs(d)]);
    }

    let n = 30_000usize;
    let deg = skewed_degrees(n, 11);
    let threads = std::thread::available_parallelism().map_or(4, |m| m.get());
    let pool = WorkerPool::new(threads);

    let d = best_of(5, || {
        let sink = AtomicU64::new(0);
        pool.run_weighted(
            n,
            DEFAULT_DEGREE_THRESHOLD,
            |v| deg[v as usize],
            |r| simulate(&deg, r, &sink),
        );
        black_box(sink.into_inner());
    });
    table.row(vec![
        "sched/load-balance".into(),
        "degree-weighted".into(),
        secs(d),
    ]);

    // Same task count as the weighted scheduler would produce, but cut
    // uniformly by vertex count — skew lands whole hubs in single tasks
    // with no compensation.
    let weighted_tasks = chunk_by_weight(n, DEFAULT_DEGREE_THRESHOLD, |v| deg[v as usize]);
    let per = n.div_ceil(weighted_tasks.len().max(1));
    let uniform: Vec<std::ops::Range<u32>> = (0..n)
        .step_by(per)
        .map(|s| s as u32..((s + per).min(n)) as u32)
        .collect();
    let d = best_of(5, || {
        let sink = AtomicU64::new(0);
        pool.run_chunks(&uniform, |r| simulate(&deg, r, &sink));
        black_box(sink.into_inner());
    });
    table.row(vec![
        "sched/load-balance".into(),
        "uniform-chunks".into(),
        secs(d),
    ]);

    table.print(false);
}
