//! Criterion microbenchmarks for the union-find structures: sequential
//! (pSCAN's) vs wait-free concurrent (ppSCAN's), single-threaded overhead
//! and multi-threaded throughput — quantifying the §6.3 observation that
//! "core and non-core clustering involves concurrent lock-free operations
//! on union-find-sets, [whose] overhead increases with the number of
//! threads".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppscan_unionfind::{ConcurrentUnionFind, UnionFind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_pairs(n: u32, ops: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

fn bench_single_thread(c: &mut Criterion) {
    let n = 100_000u32;
    let pairs = random_pairs(n, 200_000, 3);
    let mut group = c.benchmark_group("unionfind/single-thread");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(n as usize);
            for &(u, v) in &pairs {
                black_box(uf.union(u, v));
            }
        });
    });
    group.bench_function("concurrent(1 thread)", |b| {
        b.iter(|| {
            let uf = ConcurrentUnionFind::new(n as usize);
            for &(u, v) in &pairs {
                black_box(uf.union(u, v));
            }
        });
    });
    group.finish();
}

fn bench_multi_thread(c: &mut Criterion) {
    let n = 100_000u32;
    let pairs = random_pairs(n, 200_000, 5);
    let mut group = c.benchmark_group("unionfind/concurrent");
    group.sample_size(20);
    group.throughput(Throughput::Elements(pairs.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let uf = ConcurrentUnionFind::new(n as usize);
                    let per = pairs.len().div_ceil(threads);
                    std::thread::scope(|s| {
                        for chunk in pairs.chunks(per) {
                            let uf = &uf;
                            s.spawn(move || {
                                for &(u, v) in chunk {
                                    black_box(uf.union(u, v));
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_multi_thread);
criterion_main!(benches);
