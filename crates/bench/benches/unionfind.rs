//! Microbenchmarks for the union-find structures: sequential (pSCAN's)
//! vs wait-free concurrent (ppSCAN's), single-threaded overhead and
//! multi-threaded throughput — quantifying the §6.3 observation that
//! "core and non-core clustering involves concurrent lock-free operations
//! on union-find-sets, [whose] overhead increases with the number of
//! threads".
//!
//! Plain `harness = false` binary (no criterion in the hermetic build).

use ppscan_bench::{secs, Table};
use ppscan_graph::rng::SplitMix64;
use ppscan_unionfind::{ConcurrentUnionFind, UnionFind};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn random_pairs(n: u32, ops: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            (
                rng.gen_index(n as usize) as u32,
                rng.gen_index(n as usize) as u32,
            )
        })
        .collect()
}

fn best_of(iters: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

fn main() {
    let n = 100_000u32;
    let mut table = Table::new(&["benchmark", "case", "best"]);

    let pairs = random_pairs(n, 200_000, 3);
    let d = best_of(5, || {
        let mut uf = UnionFind::new(n as usize);
        for &(u, v) in &pairs {
            black_box(uf.union(u, v));
        }
    });
    table.row(vec![
        "unionfind/single-thread".into(),
        "sequential".into(),
        secs(d),
    ]);
    let d = best_of(5, || {
        let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(n as usize);
        for &(u, v) in &pairs {
            black_box(uf.union(u, v));
        }
    });
    table.row(vec![
        "unionfind/single-thread".into(),
        "concurrent(1 thread)".into(),
        secs(d),
    ]);

    let pairs = random_pairs(n, 200_000, 5);
    for threads in [1usize, 2, 4] {
        let d = best_of(5, || {
            let uf: ConcurrentUnionFind = ConcurrentUnionFind::new(n as usize);
            let per = pairs.len().div_ceil(threads);
            std::thread::scope(|s| {
                for chunk in pairs.chunks(per) {
                    let uf = &uf;
                    s.spawn(move || {
                        for &(u, v) in chunk {
                            black_box(uf.union(u, v));
                        }
                    });
                }
            });
        });
        table.row(vec![
            "unionfind/concurrent".into(),
            format!("threads={threads}"),
            secs(d),
        ]);
    }

    table.print(false);
}
