//! Criterion microbenchmarks for the GS*-Index: construction cost (the
//! exhaustive similarity pass the ppSCAN paper criticizes, §3.3) versus
//! per-query cost (output-proportional), and the ppSCAN recomputation it
//! competes with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppscan_core::params::ScanParams;
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_gsindex::GsIndex;
use ppscan_graph::gen;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("gsindex/build");
    group.sample_size(10);
    for n in [2_000usize, 10_000] {
        let g = gen::roll(n, 16, 3);
        group.bench_with_input(BenchmarkId::new("roll-d16", n), &n, |b, _| {
            b.iter(|| black_box(GsIndex::build(&g, 2)));
        });
    }
    group.finish();
}

fn bench_query_vs_recompute(c: &mut Criterion) {
    let g = gen::roll(10_000, 16, 3);
    let index = GsIndex::build(&g, 2);
    let cfg = PpScanConfig::with_threads(2);
    let mut group = c.benchmark_group("gsindex/answer");
    group.sample_size(20);
    for eps10 in [2u32, 5, 8] {
        let p = ScanParams::new(eps10 as f64 / 10.0, 5);
        group.bench_with_input(BenchmarkId::new("index-query", eps10), &p, |b, &p| {
            b.iter(|| black_box(index.query(p)));
        });
        group.bench_with_input(BenchmarkId::new("ppscan-recompute", eps10), &p, |b, &p| {
            b.iter(|| black_box(ppscan(&g, p, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query_vs_recompute);
criterion_main!(benches);
