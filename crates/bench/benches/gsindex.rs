//! Microbenchmarks for the GS*-Index: construction cost (the exhaustive
//! similarity pass the ppSCAN paper criticizes, §3.3) versus per-query
//! cost (output-proportional), and the ppSCAN recomputation it competes
//! with.
//!
//! Plain `harness = false` binary (no criterion in the hermetic build).

use ppscan_bench::{best_of, secs, Table};
use ppscan_core::params::ScanParams;
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_graph::gen;
use ppscan_gsindex::GsIndex;
use std::hint::black_box;

fn main() {
    let mut table = Table::new(&["benchmark", "case", "best"]);

    for n in [2_000usize, 10_000] {
        let g = gen::roll(n, 16, 3);
        let (d, _) = best_of(|| black_box(GsIndex::build(&g, 2)));
        table.row(vec![
            "gsindex/build".into(),
            format!("roll-d16 n={n}"),
            secs(d),
        ]);
    }

    let g = gen::roll(10_000, 16, 3);
    let index = GsIndex::build(&g, 2);
    let cfg = PpScanConfig::with_threads(2);
    for eps10 in [2u32, 5, 8] {
        let p = ScanParams::new(eps10 as f64 / 10.0, 5);
        let (d, _) = best_of(|| black_box(index.query(p)));
        table.row(vec![
            "gsindex/answer".into(),
            format!("index-query eps=0.{eps10}"),
            secs(d),
        ]);
        let (d, _) = best_of(|| black_box(ppscan(&g, p, &cfg)));
        table.row(vec![
            "gsindex/answer".into(),
            format!("ppscan-recompute eps=0.{eps10}"),
            secs(d),
        ]);
    }

    table.print(false);
}
