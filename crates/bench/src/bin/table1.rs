//! Table 1 — real-world graph statistics, regenerated for the synthetic
//! stand-in suite next to the paper's original numbers.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin table1 -- [--scale 1.0] [--csv]
//! ```

use ppscan_bench::{HarnessArgs, Table};
use ppscan_graph::stats::GraphStats;
use ppscan_obs::RunReport;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = ppscan_bench::figure_report("table1", &args);
    let mut table = Table::new(&[
        "Name",
        "|V|",
        "|E|",
        "d",
        "max d",
        "paper |V|",
        "paper |E|",
        "paper d",
        "paper max d",
    ]);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        let s = GraphStats::of(&g);
        let (pv, pe, pd, pm) = d.paper_stats();
        report.runs.push(
            RunReport::new("stats")
                .with_dataset(d.name())
                .with_graph(s.num_vertices as u64, s.num_edges as u64),
        );
        table.row(vec![
            d.name().into(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
            pv.to_string(),
            pe.to_string(),
            format!("{pd:.1}"),
            pm.to_string(),
        ]);
    }
    println!("\nTable 1: real-world graph statistics (stand-ins vs paper)");
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
