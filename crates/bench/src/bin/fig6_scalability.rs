//! Figure 6 — scalability with the number of threads: per-stage time
//! breakdown of ppSCAN's four stages at ε = 0.2, µ = 5, sweeping the
//! thread count.
//!
//! The paper sweeps 1–256 threads on a 64-core KNL. Default here sweeps
//! `--threads 1,2,4,8`; self-speedups are only meaningful up to the
//! physical core count of the host (EXPERIMENTS.md records the caveat
//! for the 1-core CI machine).
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig6_scalability -- \
//!     [--scale 1.0] [--threads 1,2,4,8,16]
//! ```

use ppscan_bench::{secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_core::report::stage_timings_from;
use ppscan_obs::RunReport;
use std::time::Duration;

fn main() {
    let mut args = HarnessArgs::parse();
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] {
        args.eps_list = vec![0.2]; // the figure fixes eps = 0.2
    }
    let eps = args.eps_list[0];

    let mut table = Table::new(&[
        "dataset",
        "threads",
        "prune",
        "check",
        "core-cl",
        "noncore-cl",
        "total",
        "self-speedup",
    ]);
    let mut report = ppscan_bench::figure_report("fig6_scalability", &args);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        let mut t1: Option<Duration> = None;
        for &threads in &args.threads {
            let cfg = PpScanConfig::with_threads(threads);
            let p = args.params(eps);
            // Best-of-RUNS per stage (stages measured within one run);
            // the span-sourced run report is the source of truth, and the
            // printed stage times are re-derived from it.
            let mut best_total = Duration::MAX;
            let mut best: Option<RunReport> = None;
            for _ in 0..ppscan_bench::RUNS {
                let o = ppscan(&g, p, &cfg);
                if o.timings.total() < best_total {
                    best_total = o.timings.total();
                    best = Some(o.report);
                }
            }
            let mut best_report = best.unwrap();
            best_report.dataset = Some(d.name().into());
            let stages = stage_timings_from(&best_report);
            let base = *t1.get_or_insert(best_total);
            table.row(vec![
                d.name().into(),
                threads.to_string(),
                secs(stages.prune),
                secs(stages.check_core),
                secs(stages.core_cluster),
                secs(stages.noncore_cluster),
                secs(best_total),
                format!(
                    "{:.2}x",
                    base.as_secs_f64() / best_total.as_secs_f64().max(1e-9)
                ),
            ]);
            report.runs.push(best_report);
        }
    }
    println!(
        "\nFigure 6: ppSCAN per-stage scalability (eps = {eps}, mu = {})",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
