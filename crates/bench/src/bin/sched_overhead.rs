//! Scheduler-stack comparison: the pre-optimization execution stack
//! (shared-queue dispatch with threads spawned per phase, binary-search
//! reverse-edge lookup, fixed block kernel) against the optimized
//! default (persistent work-stealing pool, precomputed reverse-edge
//! index, adaptive kernel dispatch), end-to-end on the ROLL suite.
//!
//! Each row runs the identical clustering problem under both stacks and
//! reports the speedup; the emitted [`FigureReport`] carries both
//! `RunReport`s (tagged `config=old` / `config=new` in `extra`) so the
//! phase timings and steal counters behind every ratio are preserved.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin sched_overhead -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of_n, secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig, ReverseLookup};
use ppscan_intersect::Kernel;
use ppscan_obs::json::Json;
use ppscan_sched::SchedulerKind;

fn main() {
    let mut args = HarnessArgs::parse();
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] {
        args.eps_list = vec![0.2]; // scheduling stress shows at small eps
    }
    let eps = args.eps_list[0];
    let budget = (1_000_000.0 * args.scale) as usize;
    eprintln!("generating ROLL suite with |E| ≈ {budget} …");
    let mut suite = ppscan_graph::datasets::roll_suite(budget);
    if args.quick {
        suite.truncate(1);
    }
    for (name, g) in &suite {
        eprintln!(
            "  {name}: {} vertices, {} edges",
            g.num_vertices(),
            g.num_edges()
        );
    }

    let mut report = ppscan_bench::figure_report("sched_overhead", &args);
    let mut table = Table::new(&["graph", "threads", "old (s)", "new (s)", "speedup"]);
    for (name, g) in &suite {
        let p = args.params(eps);
        for &threads in &args.threads {
            // The stack this PR replaced: per-dispatch thread spawning
            // over a shared queue cursor, O(log d) reverse lookups, and
            // the fixed auto-selected block kernel.
            let old_cfg = PpScanConfig::with_threads(threads)
                .scheduler(SchedulerKind::SharedQueue)
                .reverse_lookup(ReverseLookup::BinarySearch)
                .kernel(Kernel::auto());
            // The optimized stack is simply the defaults.
            let new_cfg = PpScanConfig::with_threads(threads);

            // Interleave the two stacks run by run so slow drift in
            // machine load hits both arms of the comparison equally.
            let mut t_old = std::time::Duration::MAX;
            let mut t_new = std::time::Duration::MAX;
            let mut out_old = None;
            let mut out_new = None;
            for _ in 0..args.runs {
                let (t, o) = best_of_n(1, || ppscan(g, p, &old_cfg));
                if t < t_old {
                    t_old = t;
                }
                out_old = Some(o);
                let (t, o) = best_of_n(1, || ppscan(g, p, &new_cfg));
                if t < t_new {
                    t_new = t;
                }
                out_new = Some(o);
            }
            let (out_old, out_new) = (out_old.unwrap(), out_new.unwrap());
            assert_eq!(
                out_old.clustering, out_new.clustering,
                "scheduler stacks disagree on {name} at {threads} threads"
            );

            for (tag, out) in [("old", out_old), ("new", out_new)] {
                let mut r = out.report;
                r.dataset = Some(name.clone());
                r.extra.push(("config".into(), Json::Str(tag.into())));
                report.runs.push(r);
            }
            table.row(vec![
                name.clone(),
                threads.to_string(),
                secs(t_old),
                secs(t_new),
                format!(
                    "{:.2}x",
                    t_old.as_secs_f64() / t_new.as_secs_f64().max(1e-9)
                ),
            ]);
        }
    }
    println!(
        "\nScheduler stack: shared-queue + binary-search + block vs \
         work-stealing + reverse index + adaptive (eps = {eps}, mu = {})",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
