//! Ablation (§4.1) — "For removing the ed[u]-based priority queue, we
//! show its effect experimentally on the workload reduction is
//! negligible": pSCAN with and without the dynamic non-increasing-ed
//! vertex order, comparing `CompSim` invocation counts and runtime.
//! ppSCAN drops the order entirely because the queue would serialize the
//! parallel phases.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin ablation_edorder -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of, secs, HarnessArgs, Table};
use ppscan_core::pscan::pscan_with_order;
use ppscan_intersect::counters::CounterScope;

fn main() {
    let args = HarnessArgs::parse();
    let mut table = Table::new(&[
        "dataset",
        "eps",
        "inv (ordered)",
        "inv (plain)",
        "overhead",
        "t ordered",
        "t plain",
    ]);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            let scope = CounterScope::new();
            let (d_ord, (t_ord, _)) = scope.measure(|| best_of(|| pscan_with_order(&g, p, true)));
            let scope = CounterScope::new();
            let (d_plain, (t_plain, _)) =
                scope.measure(|| best_of(|| pscan_with_order(&g, p, false)));
            // best_of runs RUNS times; normalize the counters per run.
            let inv_ord = d_ord.compsim_invocations / ppscan_bench::RUNS as u64;
            let inv_plain = d_plain.compsim_invocations / ppscan_bench::RUNS as u64;
            table.row(vec![
                d.name().into(),
                format!("{eps:.1}"),
                inv_ord.to_string(),
                inv_plain.to_string(),
                format!(
                    "{:+.1}%",
                    (inv_plain as f64 / inv_ord.max(1) as f64 - 1.0) * 100.0
                ),
                secs(t_ord),
                secs(t_plain),
            ]);
        }
    }
    println!(
        "\nAblation §4.1: pSCAN with vs without the dynamic ed-order priority \
         queue (mu = {}). 'overhead' = extra invocations without the order.",
        args.mu
    );
    table.print(args.csv);
}
