//! Ablation (§4.1) — "For removing the ed[u]-based priority queue, we
//! show its effect experimentally on the workload reduction is
//! negligible": pSCAN with and without the dynamic non-increasing-ed
//! vertex order, comparing `CompSim` invocation counts and runtime.
//! ppSCAN drops the order entirely because the queue would serialize the
//! parallel phases.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin ablation_edorder -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of, secs, HarnessArgs, Table};
use ppscan_core::pscan::pscan_with_order;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = ppscan_bench::figure_report("ablation_edorder", &args);
    let mut table = Table::new(&[
        "dataset",
        "eps",
        "inv (ordered)",
        "inv (plain)",
        "overhead",
        "t ordered",
        "t plain",
    ]);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            // Each driver run carries its own per-run counters in its
            // report — no shared scope, no divide-by-RUNS normalization.
            let (t_ord, out_ord) = best_of(|| pscan_with_order(&g, p, true));
            let (t_plain, out_plain) = best_of(|| pscan_with_order(&g, p, false));
            let inv_ord = out_ord.report.counters.compsim_invocations;
            let inv_plain = out_plain.report.counters.compsim_invocations;
            for (mut r, variant) in [(out_ord.report, "ordered"), (out_plain.report, "plain")] {
                r.dataset = Some(d.name().into());
                r.push_extra("ed_order", ppscan_obs::json::Json::Str(variant.to_string()));
                report.runs.push(r);
            }
            table.row(vec![
                d.name().into(),
                format!("{eps:.1}"),
                inv_ord.to_string(),
                inv_plain.to_string(),
                format!(
                    "{:+.1}%",
                    (inv_plain as f64 / inv_ord.max(1) as f64 - 1.0) * 100.0
                ),
                secs(t_ord),
                secs(t_plain),
            ]);
        }
    }
    println!(
        "\nAblation §4.1: pSCAN with vs without the dynamic ed-order priority \
         queue (mu = {}). 'overhead' = extra invocations without the order.",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
