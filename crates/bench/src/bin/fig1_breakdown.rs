//! Figure 1 — time breakdown of SCAN and pSCAN into *similarity
//! evaluation*, *workload-reduction computation* and *other*, across
//! ε ∈ {0.2, 0.4, 0.6, 0.8} at µ = 5.
//!
//! The paper's two observations should reproduce: (1) similarity
//! evaluation dominates both algorithms, and (2) pSCAN's
//! workload-reduction bookkeeping is cheap relative to the similarity
//! time it saves.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig1_breakdown -- [--scale 0.5]
//! ```

use ppscan_bench::{secs, HarnessArgs, Table};
use ppscan_core::report::{PHASE_OTHER, PHASE_SIMILARITY_EVALUATION, PHASE_WORKLOAD_REDUCTION};
use ppscan_core::{pscan, scan};
use ppscan_graph::datasets::Dataset;
use ppscan_obs::RunReport;
use std::time::Duration;

/// Wall time of one breakdown phase, from the run's report.
fn phase_secs(r: &RunReport, name: &str) -> Duration {
    Duration::from_nanos(r.phase(name).map_or(0, |p| p.wall_nanos))
}

fn main() {
    let mut args = HarnessArgs::parse();
    if !args.quick && args.scale == 1.0 {
        args.scale = 0.5; // SCAN's 2Σd² workload: keep the default tame
    }
    // Figure 1 uses livejournal, orkut and twitter.
    if args.datasets == Dataset::TABLE1.to_vec() {
        args.datasets = vec![Dataset::LiveJournalS, Dataset::OrkutS, Dataset::TwitterS];
    }

    let mut table = Table::new(&[
        "dataset",
        "algo",
        "eps",
        "similarity",
        "workload-red",
        "other",
        "total",
    ]);
    let mut report = ppscan_bench::figure_report("fig1_breakdown", &args);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            let scan_out = scan::scan(&g, p);
            let pscan_out = pscan::pscan(&g, p);
            // Cells come from the unified run reports, not the stopwatch
            // structs — what lands in `--report` is what is printed.
            for (algo, mut r) in [("SCAN", scan_out.report), ("pSCAN", pscan_out.report)] {
                r.dataset = Some(d.name().into());
                let sim = phase_secs(&r, PHASE_SIMILARITY_EVALUATION);
                let workload = phase_secs(&r, PHASE_WORKLOAD_REDUCTION);
                let other = phase_secs(&r, PHASE_OTHER);
                table.row(vec![
                    d.name().into(),
                    algo.into(),
                    format!("{eps:.1}"),
                    secs(sim),
                    secs(workload),
                    secs(other),
                    secs(sim + workload + other),
                ]);
                report.runs.push(r);
            }
        }
    }
    println!(
        "\nFigure 1: SCAN vs pSCAN time breakdown (mu = {})",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
