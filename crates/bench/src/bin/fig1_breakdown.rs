//! Figure 1 — time breakdown of SCAN and pSCAN into *similarity
//! evaluation*, *workload-reduction computation* and *other*, across
//! ε ∈ {0.2, 0.4, 0.6, 0.8} at µ = 5.
//!
//! The paper's two observations should reproduce: (1) similarity
//! evaluation dominates both algorithms, and (2) pSCAN's
//! workload-reduction bookkeeping is cheap relative to the similarity
//! time it saves.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig1_breakdown -- [--scale 0.5]
//! ```

use ppscan_bench::{secs, HarnessArgs, Table};
use ppscan_core::{pscan, scan};
use ppscan_graph::datasets::Dataset;

fn main() {
    let mut args = HarnessArgs::parse();
    if !args.quick && args.scale == 1.0 {
        args.scale = 0.5; // SCAN's 2Σd² workload: keep the default tame
    }
    // Figure 1 uses livejournal, orkut and twitter.
    if args.datasets == Dataset::TABLE1.to_vec() {
        args.datasets = vec![Dataset::LiveJournalS, Dataset::OrkutS, Dataset::TwitterS];
    }

    let mut table = Table::new(&[
        "dataset",
        "algo",
        "eps",
        "similarity",
        "workload-red",
        "other",
        "total",
    ]);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            let scan_out = scan::scan(&g, p);
            let pscan_out = pscan::pscan(&g, p);
            for (algo, b) in [("SCAN", scan_out.breakdown), ("pSCAN", pscan_out.breakdown)] {
                table.row(vec![
                    d.name().into(),
                    algo.into(),
                    format!("{eps:.1}"),
                    secs(b.similarity_evaluation),
                    secs(b.workload_reduction),
                    secs(b.other),
                    secs(b.total()),
                ]);
            }
        }
    }
    println!(
        "\nFigure 1: SCAN vs pSCAN time breakdown (mu = {})",
        args.mu
    );
    table.print(args.csv);
}
