//! Measured-autotuner comparison: the fixed-ratio [`Kernel::Adaptive`]
//! dispatch against [`Kernel::Autotuned`] — the per-bucket plan measured
//! on sampled real pairs at precomp time — end-to-end on the ROLL suite.
//!
//! The autotuned arm's [`KernelPrecomp`] (FESIA layouts + measured plan)
//! is built once per cell *outside* the timed region, the same
//! amortization argument as GS*-Index construction: the plan is a
//! per-graph artifact reused by every later run. Each row interleaves
//! the two arms run by run and scores the cell as the **median of the
//! paired per-iteration ratios**: the two arms of one iteration run
//! back to back (seconds apart), so slow host-speed drift — which can
//! swing absolute times by 2× across minutes on shared machines —
//! cancels inside each pair instead of corrupting a ratio of
//! independently-taken minima. The clusterings are asserted identical.
//!
//! The emitted [`FigureReport`] carries both `RunReport`s per cell
//! (tagged `config=adaptive` / `config=autotuned` in `extra`); the
//! autotuned runs' counters record the plan's decision mix —
//! `autotune_samples`, `autotune_buckets`, the per-family
//! `autotune_wins_*`, and the planned/fallback dispatch split — which
//! `report_check --check-runs` gates against the committed baseline.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin autotune_bench -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of_n, secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_core::precomp::build_kernel_precomp;
use ppscan_intersect::{AutotuneConfig, Kernel};
use ppscan_obs::json::Json;
use std::sync::Arc;

fn main() {
    let mut args = HarnessArgs::parse();
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] {
        // Kernel dispatch shows at small eps, where most intersection
        // work survives pruning; one larger eps keeps the
        // mostly-pruned regime honest.
        args.eps_list = vec![0.2, 0.6];
    }
    let budget = (1_000_000.0 * args.scale) as usize;
    eprintln!("generating ROLL suite with |E| ≈ {budget} …");
    let mut suite = ppscan_graph::datasets::roll_suite(budget);
    if args.quick {
        suite.truncate(1);
    } else {
        // The Table 1 stand-ins (fig5's workload) join the suite: the
        // skewed R-MAT graphs are where the fixed 32× rule errs most —
        // hub pairs with *large* short lists sit in the galloping regime
        // but want the streaming block kernel.
        suite.extend(
            ppscan_bench::load_datasets(&args)
                .into_iter()
                .map(|(d, g)| (d.name().to_string(), g)),
        );
    }
    for (name, g) in &suite {
        eprintln!(
            "  {name}: {} vertices, {} edges",
            g.num_vertices(),
            g.num_edges()
        );
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut report = ppscan_bench::figure_report("autotune_bench", &args);
    let mut table = Table::new(&[
        "graph",
        "eps",
        "adaptive (s)",
        "autotuned (s)",
        "speedup",
        "planned %",
        "wins m/g/b/f/s",
    ]);
    for (name, g) in &suite {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            eprintln!("--- cell {name} eps {eps} ---");
            // Built once per (graph, params) cell, outside the timed
            // region — the per-graph artifact every run reuses.
            let pre = Arc::new(build_kernel_precomp(
                g,
                p,
                Kernel::Autotuned,
                &AutotuneConfig::default(),
            ));
            let adaptive_cfg = PpScanConfig::with_threads(threads).kernel(Kernel::Adaptive);
            let autotuned_cfg = PpScanConfig::with_threads(threads)
                .kernel(Kernel::Autotuned)
                .precomp(Some(Arc::clone(&pre)));

            let mut t_adp = std::time::Duration::MAX;
            let mut t_aut = std::time::Duration::MAX;
            let mut ratios = Vec::with_capacity(args.runs);
            let mut out_adp = None;
            let mut out_aut = None;
            for _ in 0..args.runs {
                let (ta, o) = best_of_n(1, || ppscan(g, p, &adaptive_cfg));
                if ta < t_adp {
                    t_adp = ta;
                }
                out_adp = Some(o);
                let (tu, o) = best_of_n(1, || ppscan(g, p, &autotuned_cfg));
                if tu < t_aut {
                    t_aut = tu;
                }
                out_aut = Some(o);
                ratios.push(ta.as_secs_f64() / tu.as_secs_f64().max(1e-9));
            }
            ratios.sort_by(|a, b| a.total_cmp(b));
            let speedup = ratios[ratios.len() / 2];
            let (out_adp, out_aut) = (out_adp.unwrap(), out_aut.unwrap());
            assert_eq!(
                out_adp.clustering, out_aut.clustering,
                "kernel dispatch strategies disagree on {name} at eps {eps}"
            );
            let planned = out_aut.report.counters.autotune_planned;
            let fallback = out_aut.report.counters.autotune_fallback;
            let planned_pct = 100.0 * planned as f64 / (planned + fallback).max(1) as f64;
            let c = &out_aut.report.counters;
            let wins = format!(
                "{}/{}/{}/{}/{}",
                c.autotune_wins_merge,
                c.autotune_wins_gallop,
                c.autotune_wins_block,
                c.autotune_wins_fesia,
                c.autotune_wins_shuffle
            );

            for (tag, out) in [("adaptive", out_adp), ("autotuned", out_aut)] {
                let mut r = out.report;
                r.dataset = Some(name.clone());
                r.extra.push(("config".into(), Json::Str(tag.into())));
                if tag == "autotuned" {
                    r.extra
                        .push(("paired_speedup_median".into(), Json::Num(speedup)));
                }
                report.runs.push(r);
            }
            table.row(vec![
                name.clone(),
                format!("{eps:.1}"),
                secs(t_adp),
                secs(t_aut),
                format!("{speedup:.2}x"),
                format!("{planned_pct:.0}"),
                wins,
            ]);
        }
    }
    println!(
        "\nKernel dispatch: fixed-ratio adaptive vs measured per-bucket \
         autotuned plan (mu = {}, precomp amortized)",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
