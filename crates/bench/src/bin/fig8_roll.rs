//! Figure 8 — robustness on synthetic ROLL graphs: runtime and
//! self-speedup (over 1 thread) across ε for fixed |E| and average degree
//! d ∈ {40, 80, 120, 160}, on both kernel paths (AVX2 "CPU" and AVX-512
//! "KNL").
//!
//! Expected shape per the paper: higher-degree graphs take longer at
//! small ε; the curves converge as ε grows and pruning removes the core
//! checking work.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig8_roll -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of, secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_intersect::Kernel;

fn main() {
    let mut args = HarnessArgs::parse();
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] && !args.quick {
        args.eps_list = vec![0.2, 0.4, 0.6, 0.8];
    }
    let budget = (1_000_000.0 * args.scale) as usize;
    eprintln!("generating ROLL suite with |E| ≈ {budget} …");
    let suite = ppscan_graph::datasets::roll_suite(budget);
    for (name, g) in &suite {
        eprintln!(
            "  {name}: {} vertices, {} edges",
            g.num_vertices(),
            g.num_edges()
        );
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut report = ppscan_bench::figure_report("fig8_roll", &args);
    let mut combined = Table::new(&[
        "kernel",
        "graph",
        "eps",
        "t(1 thread)",
        "t(all)",
        "self-speedup",
    ]);
    for kernel in [Kernel::PivotAvx2, Kernel::PivotAvx512] {
        if !kernel.available() {
            eprintln!("skipping {kernel} (unavailable)");
            continue;
        }
        let cfg = PpScanConfig::with_threads(threads).kernel(kernel);
        let cfg1 = PpScanConfig::with_threads(1).kernel(kernel);
        let mut table = Table::new(&["graph", "eps", "t(1 thread)", "t(all)", "self-speedup"]);
        for (name, g) in &suite {
            for &eps in &args.eps_list {
                let p = args.params(eps);
                let (t1, _) = best_of(|| ppscan(g, p, &cfg1));
                let (tn, out) = best_of(|| ppscan(g, p, &cfg));
                let mut r = out.report;
                r.dataset = Some(name.clone());
                report.runs.push(r);
                let speedup = format!("{:.2}x", t1.as_secs_f64() / tn.as_secs_f64().max(1e-9));
                table.row(vec![
                    name.clone(),
                    format!("{eps:.1}"),
                    secs(t1),
                    secs(tn),
                    speedup.clone(),
                ]);
                combined.row(vec![
                    kernel.to_string(),
                    name.clone(),
                    format!("{eps:.1}"),
                    secs(t1),
                    secs(tn),
                    speedup,
                ]);
            }
        }
        println!(
            "\nFigure 8 ({kernel}, {threads} threads, mu = {}): ROLL graphs",
            args.mu
        );
        table.print(args.csv);
    }
    ppscan_bench::emit_report(&args, report, &combined);
}
