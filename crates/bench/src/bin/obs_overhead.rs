//! Observability overhead — the cost of the `ppscan-obs` tracing layer
//! on the ppSCAN hot path: identical runs with the span collector +
//! kernel counter scope enabled (`observe = true`, the default) versus
//! disabled, best-of-[`ppscan_bench::RUNS`] each.
//!
//! The span layer is designed to stay well under 5% on real workloads:
//! spans are per *task* (hundreds of vertices), not per vertex, and
//! counter recording is a pair of plain thread-local increments whose
//! attribution to scopes is deferred to guard drop.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin obs_overhead -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of, secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_obs::json::Json;

fn main() {
    let mut args = HarnessArgs::parse();
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] && !args.quick {
        args.eps_list = vec![0.2, 0.6]; // small eps = busiest hot path
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let observed_cfg = PpScanConfig::with_threads(threads);
    let unobserved_cfg = PpScanConfig::with_threads(threads).observe(false);

    let mut report = ppscan_bench::figure_report("obs_overhead", &args);
    let mut table = Table::new(&["dataset", "eps", "observed (s)", "off (s)", "overhead"]);
    let mut worst: f64 = 0.0;
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            let (t_on, out) = best_of(|| ppscan(&g, p, &observed_cfg));
            let (t_off, _) = best_of(|| ppscan(&g, p, &unobserved_cfg));
            let overhead = t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-9) - 1.0;
            worst = worst.max(overhead);
            let mut r = out.report;
            r.dataset = Some(d.name().into());
            r.push_extra("overhead_ratio", Json::Num(overhead));
            report.runs.push(r);
            table.row(vec![
                d.name().into(),
                format!("{eps:.1}"),
                secs(t_on),
                secs(t_off),
                format!("{:+.2}%", overhead * 100.0),
            ]);
        }
    }
    report
        .context
        .push(("worst_overhead_ratio".into(), Json::Num(worst)));
    println!(
        "\nObservability overhead: ppSCAN with tracing enabled vs disabled \
         ({threads} threads, mu = {}); worst {:+.2}%",
        args.mu,
        worst * 100.0
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
