//! Observability overhead — the cost of the `ppscan-obs` layers on the
//! ppSCAN hot path, measured as identical best-of-[`ppscan_bench::RUNS`]
//! runs in three configurations:
//!
//! * **off** — span collector + kernel counter scope disabled.
//! * **observed** — the tracing layer enabled (`observe = true`, the
//!   default).
//! * **observed+registry** — tracing *plus* the live-metrics path: pool
//!   counters ([`ppscan_sched::PoolMetrics`]) attached to the worker
//!   pool and a [`TimelineSampler`] hammering the registry with a
//!   snapshot every 10 ms for the whole measurement. This is the
//!   worst-case serving-telemetry configuration.
//!
//! Both layers are designed to stay well under 5% combined: spans are
//! per *task* (hundreds of vertices), counter recording is a pair of
//! relaxed increments on a thread-sharded cell, and snapshotting reads
//! are on the sampler thread, not the hot path. `--max-overhead <f>`
//! turns the bound into a gate (exit 1 when the worst ratio exceeds it).
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin obs_overhead -- \
//!     [--scale 1.0] [--max-overhead 0.05]
//! ```

use ppscan_bench::{secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_obs::json::Json;
use ppscan_obs::registry::{MetricsRegistry, TimelineSampler};
use ppscan_sched::PoolMetrics;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let (mut args, extras) = HarnessArgs::parse_with(&["--max-overhead"]);
    let max_overhead: Option<f64> = extras
        .iter()
        .rev()
        .find(|(f, _)| f == "--max-overhead")
        .map(|(_, v)| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad --max-overhead: {v}");
                std::process::exit(2);
            })
        });
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] && !args.quick {
        args.eps_list = vec![0.2, 0.6]; // small eps = busiest hot path
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let observed_cfg = PpScanConfig::with_threads(threads);
    let unobserved_cfg = PpScanConfig::with_threads(threads).observe(false);
    let registry = Arc::new(MetricsRegistry::new());
    let registry_cfg = PpScanConfig::with_threads(threads)
        .metrics(Some(PoolMetrics::register(&registry, "pool", threads)));

    let mut report = ppscan_bench::figure_report("obs_overhead", &args);
    let mut table = Table::new(&[
        "dataset",
        "eps",
        "off (s)",
        "observed (s)",
        "obs+reg (s)",
        "obs overhead",
        "obs+reg overhead",
    ]);
    let mut worst: f64 = 0.0;
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            // Best-of-N with the three configs *interleaved* per
            // repetition rather than run as consecutive blocks: machine
            // drift between blocks (throttling, noisy neighbours) would
            // otherwise masquerade as overhead.
            let mut t_off = Duration::MAX;
            let mut t_on = Duration::MAX;
            let mut t_reg = Duration::MAX;
            let mut out = None;
            let mut out_reg = None;
            for _ in 0..args.runs.max(1) {
                let t0 = Instant::now();
                let _ = ppscan(&g, p, &unobserved_cfg);
                t_off = t_off.min(t0.elapsed());

                let t0 = Instant::now();
                out = Some(ppscan(&g, p, &observed_cfg));
                t_on = t_on.min(t0.elapsed());

                // The sampler snapshots every instrument every 10 ms
                // for the whole measurement: registry *and* read-side
                // cost, not just recording.
                let sampler =
                    TimelineSampler::start(Arc::clone(&registry), Duration::from_millis(10));
                let t0 = Instant::now();
                out_reg = Some(ppscan(&g, p, &registry_cfg));
                t_reg = t_reg.min(t0.elapsed());
                drop(sampler);
            }
            let (out, out_reg) = (out.unwrap(), out_reg.unwrap());
            let base = t_off.as_secs_f64().max(1e-9);
            let overhead = t_on.as_secs_f64() / base - 1.0;
            let overhead_reg = t_reg.as_secs_f64() / base - 1.0;
            worst = worst.max(overhead).max(overhead_reg);
            for (mode, mut r, ratio) in [
                ("observed", out.report, overhead),
                ("observed+registry", out_reg.report, overhead_reg),
            ] {
                r.dataset = Some(d.name().into());
                r.push_extra("config", Json::Str(format!("mode={mode}")));
                r.push_extra("overhead_ratio", Json::Num(ratio));
                report.runs.push(r);
            }
            table.row(vec![
                d.name().into(),
                format!("{eps:.1}"),
                secs(t_off),
                secs(t_on),
                secs(t_reg),
                format!("{:+.2}%", overhead * 100.0),
                format!("{:+.2}%", overhead_reg * 100.0),
            ]);
        }
    }
    report
        .context
        .push(("worst_overhead_ratio".into(), Json::Num(worst)));
    println!(
        "\nObservability overhead: ppSCAN with tracing off / on / on+live \
         registry sampling ({threads} threads, mu = {}); worst {:+.2}%",
        args.mu,
        worst * 100.0
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
    if let Some(bound) = max_overhead {
        if worst > bound {
            eprintln!(
                "overhead gate FAILED: worst {:+.2}% exceeds --max-overhead {:+.2}%",
                worst * 100.0,
                bound * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "overhead gate ok: worst {:+.2}% <= {:+.2}%",
            worst * 100.0,
            bound * 100.0
        );
    }
}
