//! Validates machine-readable run reports: every input file must parse
//! as a [`FigureReport`] (or bare [`RunReport`]) and survive a serialize
//! → parse round trip unchanged. With `--baseline <path>`, additionally
//! diffs the single input figure against the committed baseline — the
//! rendered table is compared cell by cell, numeric cells within a
//! relative tolerance (`--tol`, default 0.05), everything else exactly.
//!
//! `--check-runs` moves the baseline diff to the run level: runs are
//! matched by configuration and their phase lists, major-phase shares
//! of wall time, and kernel counters must agree within `--phase-tol`
//! (absolute share, default 0.25) and `--counter-tol` (relative,
//! default 0.2). The cell-level table diff is skipped in this mode —
//! comparison tables hold wall times, which do not survive a machine
//! change; phase shares and counters do. `--p999-tol <rel>` adds a
//! one-sided tail-latency bound: a matched run's last-timeline-sample
//! `serve.latency` p999 must stay within `(1 + rel)` of the baseline's.
//!
//! `--check-timeline` asserts the soak invariants on every figure-report
//! run that carries a metrics timeline (schema 2): at least
//! `--min-snapshots` samples (default 10), `at_nanos` non-decreasing,
//! `serve.queue_depth` never above the run's `queue_bound` extra, and
//! zero watchdog trips in both the `watchdog_trips` extra and the final
//! sample's `serve.watchdog_trips` counter. A figure report with no
//! timeline-bearing run at all fails the check — an empty timeline must
//! not pass silently.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin report_check -- \
//!     target/reports/*.json
//! cargo run --release -p ppscan-bench --bin report_check -- \
//!     target/reports/table1.json --baseline crates/bench/baselines/table1_quick.json
//! cargo run --release -p ppscan-bench --bin report_check -- \
//!     target/reports/sched_overhead.json \
//!     --baseline crates/bench/baselines/sched_overhead_quick.json --check-runs
//! ```
//!
//! Every checked run — bare or inside a figure report — additionally
//! passes through an unconditional race gate: a report embedding any
//! [`RunReport::races`] entries fails the check outright, printing each
//! race's kind and location. A race report documents a detector hit; it
//! is never a passing artifact.
//!
//! Exits non-zero on the first invalid file or any baseline mismatch.

use ppscan_bench::RunDiffOptions;
use ppscan_obs::{FigureReport, RunReport};
use std::path::PathBuf;

/// The soak invariants for one timeline-bearing run; returns
/// human-readable violations (empty = pass).
fn check_timeline(r: &RunReport, min_snapshots: usize) -> Vec<String> {
    let mut errs = Vec::new();
    let who = format!(
        "{} dataset={}",
        r.algorithm,
        r.dataset.as_deref().unwrap_or("?")
    );
    if r.timeline.len() < min_snapshots {
        errs.push(format!(
            "{who}: timeline has {} samples, need >= {min_snapshots}",
            r.timeline.len()
        ));
    }
    let mut last_at = 0u64;
    for (i, s) in r.timeline.iter().enumerate() {
        if s.at_nanos < last_at {
            errs.push(format!(
                "{who}: timeline at_nanos went backwards at sample {i} \
                 ({} < {last_at})",
                s.at_nanos
            ));
        }
        last_at = s.at_nanos;
    }
    let extra = |k: &str| r.extra.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    if let Some(bound) = extra("queue_bound").and_then(|v| v.as_i64()) {
        for (i, s) in r.timeline.iter().enumerate() {
            if let Some(depth) = s.gauge("serve.queue_depth") {
                if depth > bound {
                    errs.push(format!(
                        "{who}: serve.queue_depth {depth} exceeds queue_bound \
                         {bound} at sample {i}"
                    ));
                }
            }
        }
    }
    let trips_extra = extra("watchdog_trips").and_then(|v| v.as_u64());
    if let Some(trips) = trips_extra {
        if trips > 0 {
            errs.push(format!("{who}: watchdog_trips extra is {trips}, want 0"));
        }
    }
    if let Some(trips) = r
        .timeline
        .last()
        .and_then(|s| s.counter("serve.watchdog_trips"))
    {
        if trips > 0 {
            errs.push(format!(
                "{who}: final sample counts {trips} watchdog trips, want 0"
            ));
        }
    }
    errs
}

/// The race gate: prints every race embedded in the run and returns
/// whether the run is clean.
fn check_races(r: &RunReport, path: &std::path::Path) -> bool {
    if r.races.is_empty() {
        return true;
    }
    eprintln!(
        "{}: run {} embeds {} race report(s):",
        path.display(),
        r.algorithm,
        r.races.len()
    );
    for race in &r.races {
        eprintln!(
            "  {} race on {} ({} vs {})",
            race.kind, race.location, race.first.site, race.second.site
        );
    }
    false
}

enum Parsed {
    Figure(Box<FigureReport>),
    Run(Box<RunReport>),
}

/// Parses a report file as a figure report, falling back to a bare run
/// report, and verifies the round trip in both cases.
fn load(path: &PathBuf) -> Result<Parsed, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    match FigureReport::parse(&text) {
        Ok(figure) => {
            let again = FigureReport::parse(&figure.to_json_string())
                .map_err(|e| format!("{}: round trip failed: {e}", path.display()))?;
            if again != figure {
                return Err(format!("{}: round trip not identical", path.display()));
            }
            Ok(Parsed::Figure(Box::new(figure)))
        }
        Err(figure_err) => {
            let run = RunReport::parse(&text).map_err(|run_err| {
                format!(
                    "{}: not a figure report ({figure_err}) nor a run report ({run_err})",
                    path.display()
                )
            })?;
            let again = RunReport::parse(&run.to_json_string())
                .map_err(|e| format!("{}: round trip failed: {e}", path.display()))?;
            if again != run {
                return Err(format!("{}: round trip not identical", path.display()));
            }
            Ok(Parsed::Run(Box::new(run)))
        }
    }
}

fn main() {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut baseline: Option<PathBuf> = None;
    let mut tol = 0.05f64;
    let mut check_runs = false;
    let mut timeline = false;
    let mut min_snapshots = 10usize;
    let mut run_opt = RunDiffOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        let parse = |name: &str, v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--tol" => tol = parse("--tol", value("--tol")),
            "--check-runs" => check_runs = true,
            "--counter-tol" => run_opt.counter_tol = parse("--counter-tol", value("--counter-tol")),
            "--phase-tol" => run_opt.phase_tol = parse("--phase-tol", value("--phase-tol")),
            "--p999-tol" => run_opt.p999_tol = Some(parse("--p999-tol", value("--p999-tol"))),
            "--check-timeline" => timeline = true,
            "--min-snapshots" => {
                min_snapshots = value("--min-snapshots").parse().unwrap_or_else(|_| {
                    eprintln!("bad --min-snapshots");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: report_check <report.json>... [--baseline <path>] [--tol <rel>] \
                     [--check-runs] [--counter-tol <rel>] [--phase-tol <abs>] \
                     [--p999-tol <rel>] [--check-timeline] [--min-snapshots <n>]"
                );
                std::process::exit(0);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }
    if check_runs && baseline.is_none() {
        eprintln!("--check-runs requires --baseline");
        std::process::exit(2);
    }
    if files.is_empty() {
        eprintln!("no report files given (see --help)");
        std::process::exit(2);
    }
    if baseline.is_some() && files.len() != 1 {
        eprintln!("--baseline compares exactly one report");
        std::process::exit(2);
    }

    let mut checked = Vec::new();
    for path in &files {
        match load(path) {
            Ok(Parsed::Figure(f)) => {
                println!(
                    "{}: ok (figure {}, {} runs, {} table rows)",
                    path.display(),
                    f.figure,
                    f.runs.len(),
                    f.table.as_ref().map_or(0, |t| t.rows.len())
                );
                if !f.runs.iter().all(|r| check_races(r, path)) {
                    std::process::exit(1);
                }
                if timeline {
                    let carriers: Vec<&RunReport> =
                        f.runs.iter().filter(|r| !r.timeline.is_empty()).collect();
                    if carriers.is_empty() {
                        eprintln!(
                            "{}: --check-timeline, but no run carries a timeline",
                            path.display()
                        );
                        std::process::exit(1);
                    }
                    let errs: Vec<String> = carriers
                        .iter()
                        .flat_map(|r| check_timeline(r, min_snapshots))
                        .collect();
                    if errs.is_empty() {
                        println!(
                            "  timeline ok: {} run(s), >= {min_snapshots} samples each",
                            carriers.len()
                        );
                    } else {
                        for e in &errs {
                            eprintln!("  {e}");
                        }
                        std::process::exit(1);
                    }
                }
                checked.push(f);
            }
            Ok(Parsed::Run(r)) => {
                println!(
                    "{}: ok (run report, algorithm {}, {} phases)",
                    path.display(),
                    r.algorithm,
                    r.phases.len()
                );
                if !check_races(&r, path) {
                    std::process::exit(1);
                }
                // Model-checker reports carry a scenario array; surface
                // the schedule-count summary so the CI artifact is
                // legible from the job log alone.
                if r.algorithm == "modelcheck" {
                    let extra = |k: &str| r.extra.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                    if let Some(scenarios) = extra("scenarios").and_then(|v| v.as_arr()) {
                        let schedules: u64 = scenarios
                            .iter()
                            .filter_map(|s| s.get("schedules").and_then(|v| v.as_u64()))
                            .sum();
                        let ok = extra("all_ok").and_then(|v| v.as_bool()).unwrap_or(false);
                        println!(
                            "  modelcheck: {} scenarios, {} schedules explored, all_ok={}",
                            scenarios.len(),
                            schedules,
                            ok
                        );
                        if !ok {
                            eprintln!("{}: modelcheck report flags a failure", path.display());
                            std::process::exit(1);
                        }
                    }
                }
                if timeline {
                    if r.timeline.is_empty() {
                        eprintln!(
                            "{}: --check-timeline, but the run has no timeline",
                            path.display()
                        );
                        std::process::exit(1);
                    }
                    let errs = check_timeline(&r, min_snapshots);
                    if errs.is_empty() {
                        println!("  timeline ok: {} samples", r.timeline.len());
                    } else {
                        for e in &errs {
                            eprintln!("  {e}");
                        }
                        std::process::exit(1);
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(base_path) = baseline {
        let Some(got) = checked.pop() else {
            eprintln!("--baseline requires a figure report input");
            std::process::exit(2);
        };
        let base = match load(&base_path) {
            Ok(Parsed::Figure(f)) => f,
            Ok(Parsed::Run(_)) => {
                eprintln!("{}: baseline must be a figure report", base_path.display());
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        // Run-level checking replaces the cell-level table diff: tables
        // of comparison figures hold wall times, which do not survive a
        // machine change (run shares and counters do).
        let mut diffs = if check_runs {
            let mut d = Vec::new();
            if base.figure != got.figure {
                d.push(format!(
                    "figure name: baseline {:?}, got {:?}",
                    base.figure, got.figure
                ));
            }
            d
        } else {
            ppscan_bench::diff_figures(&base, &got, tol)
        };
        if check_runs {
            diffs.extend(ppscan_bench::diff_runs(&base, &got, &run_opt));
        }
        if diffs.is_empty() {
            println!(
                "baseline match: {} vs {} (tol {tol}{})",
                base_path.display(),
                files[0].display(),
                if check_runs {
                    format!(
                        ", runs checked: counter-tol {} phase-tol {}",
                        run_opt.counter_tol, run_opt.phase_tol
                    )
                } else {
                    String::new()
                }
            );
        } else {
            eprintln!("baseline mismatch vs {}:", base_path.display());
            for d in &diffs {
                eprintln!("  {d}");
            }
            std::process::exit(1);
        }
    }
}
