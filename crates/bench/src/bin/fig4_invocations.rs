//! Figure 4 — set-intersection invocation reduction: the number of
//! `CompSim` invocations of pSCAN and ppSCAN, normalized by |E|, across
//! datasets and ε. The paper's claim: ppSCAN's multi-phase decomposition
//! conducts a similar amount of (pruned) work to sequential pSCAN.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig4_invocations -- [--scale 1.0]
//! ```

use ppscan_bench::{HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_core::pscan;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = ppscan_bench::figure_report("fig4_invocations", &args);
    let cfg =
        PpScanConfig::with_threads(std::thread::available_parallelism().map_or(4, |n| n.get()));
    let mut table = Table::new(&[
        "dataset",
        "eps",
        "pSCAN inv",
        "ppSCAN inv",
        "pSCAN norm",
        "ppSCAN norm",
    ]);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        let edges = g.num_edges() as f64;
        for &eps in &args.eps_list {
            let p = args.params(eps);
            // Invocation counts come straight from each driver's run
            // report — the counter scope lives inside the driver now.
            let mut pscan_report = pscan::pscan(&g, p).report;
            let pscan_inv = pscan_report.counters.compsim_invocations;
            let mut ppscan_report = ppscan(&g, p, &cfg).report;
            let ppscan_inv = ppscan_report.counters.compsim_invocations;
            pscan_report.dataset = Some(d.name().into());
            ppscan_report.dataset = Some(d.name().into());
            report.runs.push(pscan_report);
            report.runs.push(ppscan_report);
            table.row(vec![
                d.name().into(),
                format!("{eps:.1}"),
                pscan_inv.to_string(),
                ppscan_inv.to_string(),
                format!("{:.3}", pscan_inv as f64 / edges),
                format!("{:.3}", ppscan_inv as f64 / edges),
            ]);
        }
    }
    println!(
        "\nFigure 4: set-intersection invocation reduction (mu = {}), \
         normalized by |E|",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
