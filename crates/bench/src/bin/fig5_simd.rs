//! Figure 5 — set-intersection vectorization improvement: speedup of the
//! core-checking stage with the pivot-based vectorized kernel (ppSCAN)
//! over the non-vectorized merge kernel (ppSCAN-NO), on both the AVX2
//! ("CPU") and AVX-512 ("KNL") paths.
//!
//! Expected shape per the paper: larger speedups at small ε (more
//! intersection work survives pruning), decaying toward 1× as ε grows;
//! AVX-512 ≥ AVX2.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig5_simd -- [--scale 1.0]
//! ```

use ppscan_bench::{HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_intersect::Kernel;
use std::time::Duration;

/// Best-of-RUNS time of the core-checking stage (the stage that contains
/// the vast majority of set intersections — §6.2.2), plus the best run's
/// report.
fn core_checking_time(
    g: &ppscan_graph::CsrGraph,
    p: ppscan_core::params::ScanParams,
    cfg: &PpScanConfig,
) -> (Duration, ppscan_obs::RunReport) {
    let mut best = Duration::MAX;
    let mut best_report = None;
    for _ in 0..ppscan_bench::RUNS {
        let o = ppscan(g, p, cfg);
        if o.timings.check_core < best {
            best = o.timings.check_core;
            best_report = Some(o.report);
        }
    }
    (best, best_report.unwrap())
}

fn main() {
    let args = HarnessArgs::parse();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let baseline_cfg = PpScanConfig::with_threads(threads).kernel(Kernel::MergeEarly);

    let mut header = vec![
        "dataset".to_string(),
        "eps".to_string(),
        "ppSCAN-NO (s)".to_string(),
    ];
    let mut isa_cfgs = Vec::new();
    // The paper's Algorithm 6 pivot kernels (CPU = AVX2, KNL = AVX-512)
    // plus this reproduction's extensions: the block kernel (see
    // ppscan_intersect::simd_block for why the pivot kernels only pay off
    // on in-order cores like KNL's) and the hash-family kernels
    // (FESIA-style bitmap pruning and the shuffling small-set kernel).
    for kernel in [
        Kernel::PivotAvx2,
        Kernel::PivotAvx512,
        Kernel::BlockAvx2,
        Kernel::BlockAvx512,
        Kernel::Fesia,
        Kernel::Shuffling,
    ] {
        if kernel.available() {
            header.push(format!("{kernel} speedup"));
            isa_cfgs.push(PpScanConfig::with_threads(threads).kernel(kernel));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    let mut report = ppscan_bench::figure_report("fig5_simd", &args);

    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            let (base, base_report) = core_checking_time(&g, p, &baseline_cfg);
            let mut push_run = |mut r: ppscan_obs::RunReport| {
                r.dataset = Some(d.name().into());
                report.runs.push(r);
            };
            push_run(base_report);
            let mut row = vec![
                d.name().to_string(),
                format!("{eps:.1}"),
                format!("{:.3}", base.as_secs_f64()),
            ];
            for cfg in &isa_cfgs {
                let (t, kernel_report) = core_checking_time(&g, p, cfg);
                push_run(kernel_report);
                row.push(format!(
                    "{:.2}x",
                    base.as_secs_f64() / t.as_secs_f64().max(1e-9)
                ));
            }
            table.row(row);
        }
    }
    println!(
        "\nFigure 5: core-checking speedup of vectorized pivot kernels over \
         ppSCAN-NO (merge), mu = {}",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
