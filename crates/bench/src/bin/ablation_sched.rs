//! Ablation (§4.4) — degree-based dynamic task scheduling: ppSCAN
//! runtime across scheduler degree-sum thresholds, from one-task-per-
//! vertex (threshold 1) through the paper's tuned 32768 up to a single
//! task (∞, no parallelism within a phase). The paper tuned the
//! threshold "by multiplying (originally 1) by 2 until the workload is
//! not balanced or the task queue maintaining cost is negligible".
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin ablation_sched -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of, secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};

const THRESHOLDS: [u64; 7] = [1, 64, 1024, 8192, 32_768, 262_144, u64::MAX];

fn main() {
    let mut args = HarnessArgs::parse();
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] {
        args.eps_list = vec![0.2]; // scheduling stress shows at small eps
    }
    let eps = args.eps_list[0];
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let mut report = ppscan_bench::figure_report("ablation_sched", &args);
    let mut table = Table::new(&["dataset", "threshold", "time (s)", "vs 32768"]);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        let p = args.params(eps);
        let mut tuned = None;
        let mut rows = Vec::new();
        for &threshold in &THRESHOLDS {
            let cfg = PpScanConfig::with_threads(threads).degree_threshold(threshold);
            let (t, out) = best_of(|| ppscan(&g, p, &cfg));
            let mut r = out.report;
            r.dataset = Some(d.name().into());
            report.runs.push(r);
            if threshold == 32_768 {
                tuned = Some(t);
            }
            rows.push((threshold, t));
        }
        let tuned = tuned.unwrap();
        for (threshold, t) in rows {
            let label = if threshold == u64::MAX {
                "inf".to_string()
            } else {
                threshold.to_string()
            };
            table.row(vec![
                d.name().into(),
                label,
                secs(t),
                format!(
                    "{:+.1}%",
                    (t.as_secs_f64() / tuned.as_secs_f64() - 1.0) * 100.0
                ),
            ]);
        }
    }
    println!(
        "\nAblation §4.4: scheduler degree-sum threshold sweep \
         (eps = {eps}, mu = {}, {threads} threads)",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
