//! Ablation (§4.3) — the two-phase core clustering: phase one unions
//! along already-known similar edges *before* any intersections, so phase
//! two's `IsSameSet` union-find pruning can skip them. This binary runs
//! ppSCAN with and without phase one and compares core-clustering
//! invocations and stage time.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin ablation_twophase -- [--scale 1.0]
//! ```

use ppscan_bench::{secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan_ablation, PpScanConfig};
use ppscan_obs::json::Json;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = ppscan_bench::figure_report("ablation_twophase", &args);
    let cfg =
        PpScanConfig::with_threads(std::thread::available_parallelism().map_or(4, |n| n.get()));
    let mut table = Table::new(&[
        "dataset",
        "eps",
        "inv (2-phase)",
        "inv (1-phase)",
        "saved",
        "t 2-phase",
        "t 1-phase",
    ]);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let p = args.params(eps);
            // Per-run counters come from each run's own report; pick the
            // best run by core-clustering stage time.
            let mut run = |skip: bool| {
                let mut best = std::time::Duration::MAX;
                let mut best_report = None;
                for _ in 0..ppscan_bench::RUNS {
                    let o = ppscan_ablation(&g, p, &cfg, skip);
                    if o.timings.core_cluster < best {
                        best = o.timings.core_cluster;
                        best_report = Some(o.report);
                    }
                }
                let mut r = best_report.unwrap();
                let inv = r.counters.compsim_invocations;
                r.dataset = Some(d.name().into());
                r.push_extra("skip_phase_one", Json::Bool(skip));
                report.runs.push(r);
                (inv, best)
            };
            let (inv2, t2) = run(false);
            let (inv1, t1) = run(true);
            table.row(vec![
                d.name().into(),
                format!("{eps:.1}"),
                inv2.to_string(),
                inv1.to_string(),
                format!("{:.1}%", (1.0 - inv2 as f64 / inv1.max(1) as f64) * 100.0),
                secs(t2),
                secs(t1),
            ]);
        }
    }
    println!(
        "\nAblation §4.3: two-phase vs single-phase core clustering (mu = {}). \
         Invocation counts cover the whole run; 'saved' is the total-\
         invocation reduction from phase one's free unions.",
        args.mu
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
