//! Table 2 — synthetic ROLL graph statistics: fixed edge budget, average
//! degree d ∈ {40, 80, 120, 160} (the paper uses |E| = 10⁹; default here
//! is 10⁶ × `--scale`).
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin table2 -- [--scale 1.0] [--csv]
//! ```

use ppscan_bench::{HarnessArgs, Table};
use ppscan_graph::datasets::roll_suite;
use ppscan_graph::stats::GraphStats;
use ppscan_obs::RunReport;

fn main() {
    let args = HarnessArgs::parse();
    let budget = (1_000_000.0 * args.scale) as usize;
    let mut report = ppscan_bench::figure_report("table2", &args);
    let mut table = Table::new(&["Name", "|V|", "|E|", "d", "max d"]);
    for (name, g) in roll_suite(budget) {
        let s = GraphStats::of(&g);
        report.runs.push(
            RunReport::new("stats")
                .with_dataset(name.clone())
                .with_graph(s.num_vertices as u64, s.num_edges as u64),
        );
        table.row(vec![
            name,
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
        ]);
    }
    println!("\nTable 2: synthetic ROLL graph statistics (edge budget {budget})");
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
