//! Standalone entry point for the differential stress sweep, so CI and
//! the nightly workflow can run it at configurable size and keep the
//! resulting `RunReport` (seed log, config counts, embedded
//! [`ppscan_obs::race::RaceReport`]s) as an artifact.
//!
//! `--race-detection` wraps every case in a
//! [`ppscan_obs::race::DetectionSession`]: the pool's fork/join edges
//! and the traced atomics in the code under test feed the FastTrack
//! happens-before detector, and any detected race lands in the report's
//! `races` array — which `report_check` rejects unconditionally, so a
//! clean sweep is a gate, not a log line.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin stress_sweep -- \
//!     [--cases N] [--seed S] [--race-detection] [--report <path>]
//! ```

use ppscan_core::stress::{run_stress_report, StressConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = StressConfig::default();
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--cases" => {
                cfg.cases = value("--cases").parse().unwrap_or_else(|e| {
                    eprintln!("bad --cases: {e}");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                cfg.master_seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("bad --seed: {e}");
                    std::process::exit(2);
                })
            }
            "--race-detection" => cfg.race_detection = true,
            "--report" => report_path = Some(PathBuf::from(value("--report"))),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let (result, report) = run_stress_report(&cfg);
    if let Some(path) = &report_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        report.write_to_file(path).unwrap_or_else(|e| {
            eprintln!("cannot write report to {}: {e}", path.display());
            std::process::exit(2);
        });
        println!("report: {}", path.display());
    }
    if !report.races.is_empty() {
        for race in &report.races {
            eprintln!(
                "{} race on {} ({} vs {})",
                race.kind, race.location, race.first.site, race.second.site
            );
        }
        eprintln!("stress_sweep: {} race(s) detected", report.races.len());
        std::process::exit(1);
    }
    match result {
        Ok(stats) => {
            println!(
                "stress_sweep: {} cases, {} configs checked, race detection {}",
                stats.cases,
                stats.configs_checked,
                if cfg.race_detection { "on" } else { "off" }
            );
        }
        Err(failure) => {
            eprintln!("{failure}");
            std::process::exit(1);
        }
    }
}
