//! Figure 7 — robustness across parameters: ppSCAN runtime over the full
//! µ ∈ {2, 5, 10, 15} × ε ∈ {0.1 … 0.9} grid on each dataset.
//!
//! Expected shape per the paper: similar trends for all µ; at ε = 0.1 the
//! large-µ runs get slightly slower (less pruning); webbase-like graphs
//! run longer at µ = 2 (many cores → more clustering work).
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig7_robustness -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of, secs, HarnessArgs, Table};
use ppscan_core::params::ScanParams;
use ppscan_core::ppscan::{ppscan, PpScanConfig};

const MUS: [usize; 4] = [2, 5, 10, 15];

fn main() {
    let mut args = HarnessArgs::parse();
    if args.eps_list == [0.2, 0.4, 0.6, 0.8] && !args.quick {
        args.eps_list = (1..=9).map(|k| k as f64 / 10.0).collect();
    }
    let cfg =
        PpScanConfig::with_threads(std::thread::available_parallelism().map_or(4, |n| n.get()));

    let mut header = vec!["dataset".to_string(), "eps".to_string()];
    header.extend(MUS.iter().map(|mu| format!("mu={mu} (s)")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let mut report = ppscan_bench::figure_report("fig7_robustness", &args);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        for &eps in &args.eps_list {
            let mut row = vec![d.name().to_string(), format!("{eps:.1}")];
            for &mu in &MUS {
                let p = ScanParams::new(eps, mu);
                let (t, out) = best_of(|| ppscan(&g, p, &cfg));
                let mut r = out.report;
                r.dataset = Some(d.name().into());
                report.runs.push(r);
                row.push(secs(t));
            }
            table.row(row);
        }
    }
    println!("\nFigure 7: ppSCAN robustness across (eps, mu)");
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
