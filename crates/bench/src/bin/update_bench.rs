//! Incremental index maintenance vs from-scratch rebuild — the
//! streaming-update benchmark backing `crates/update`. Each cell applies
//! one [`GraphDelta`] batch to a prebuilt GS*-Index over ROLL-d40 twice:
//! through [`OwnedGsIndex::apply_delta_with`] (localized recomputation)
//! and by splicing the graph then rebuilding the index from scratch —
//! both sides pay the CSR splice, so the comparison isolates the index
//! work. The batch sizes sweep the streaming regime — single edits,
//! small batches, and 1% of `|E|` at once — under two workloads:
//! `hot` (endpoints confined to a small vertex window, the locality
//! profile of a real update stream) and `uniform` (endpoints sampled
//! over the whole graph). Uniform 1%-of-`|E|` batches touch nearly every
//! vertex on a hub-heavy ROLL graph — recomputation is inherently
//! global there, so the `--min-speedup` gate covers the `hot` cells;
//! the uniform rows are reported alongside as the locality cliff.
//!
//! The run reports are diffable across machines with `report_check
//! --check-runs`: the phase list ([`PHASE_ORDER`], captured from one
//! [`IncrementalClustering::apply`]) is structural with wall shares
//! zeroed, and the `config` extra pins the *deterministic* update stats
//! (applied / touched / recomputed counts) into the run identity — a
//! touched-set derivation change shows up as a missing + extra run, not
//! as timing noise.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin update_bench -- \
//!     [--quick] [--scale S] [--threads 1,2] [--runs N] \
//!     [--min-speedup X] [--report FILE]
//! ```
//!
//! `--min-speedup X` exits non-zero unless every `hot` cell's
//! incremental apply beats the from-scratch rebuild by at least `X`×
//! (the acceptance gate runs this at `--runs 9 --min-speedup 5`).

use ppscan_bench::{best_of_n, emit_report, figure_report, HarnessArgs, Table};
use ppscan_core::params::ScanParams;
use ppscan_graph::datasets::roll_suite;
use ppscan_graph::delta::GraphDelta;
use ppscan_graph::CsrGraph;
use ppscan_gsindex::OwnedGsIndex;
use ppscan_obs::json::Json;
use ppscan_obs::report::PhaseMetrics;
use ppscan_obs::{Collector, RunReport};
use ppscan_sched::WorkerPool;
use ppscan_update::stress::{hot_delta, random_delta, BatchSpec};
use ppscan_update::IncrementalClustering;
use std::sync::Arc;

/// Edge budget for the ROLL suite at `--scale 1.0` (the bench uses the
/// ROLL-d40 entry, the paper's streaming-favourite degree).
const EDGE_BUDGET: f64 = 1_000_000.0;

/// Delta seed base; each batch spec draws its own delta so the cells
/// are independent but reproducible.
const DELTA_SEED: u64 = 0x00ed_beac_0000;

/// `(ε, µ)` for the cluster-repair phase capture.
const EPS: f64 = 0.4;
const MU: usize = 3;

/// Canonical phase order for the emitted reports. All three are
/// machine-dependent wall times, so their shares are zeroed — the
/// regression surface is the phase *list* plus the deterministic update
/// stats pinned into each run's `config` identity.
const PHASE_ORDER: [&str; 3] = ["update-sim", "update-roles", "update-clusters"];

fn normalize_phases(stages: Vec<PhaseMetrics>) -> Vec<PhaseMetrics> {
    PHASE_ORDER
        .iter()
        .map(|&name| {
            let mut p = stages
                .iter()
                .find(|p| p.name == name)
                .cloned()
                .unwrap_or_else(|| PhaseMetrics {
                    name: name.to_string(),
                    ..PhaseMetrics::default()
                });
            p.wall_nanos = 0;
            p
        })
        .collect()
}

fn main() {
    let (args, extras) = HarnessArgs::parse_with(&["--min-speedup"]);
    let min_speedup: f64 = extras
        .iter()
        .rev()
        .find(|(f, _)| f == "--min-speedup")
        .map(|(_, v)| v.parse().expect("bad --min-speedup"))
        .unwrap_or(0.0);
    let batches = [
        BatchSpec::Fixed(1),
        BatchSpec::Fixed(16),
        BatchSpec::EdgeFraction(0.01),
    ];

    let budget = (EDGE_BUDGET * args.scale) as usize;
    let (name, graph) = roll_suite(budget).into_iter().next().expect("suite entry");
    let graph = Arc::new(graph);
    eprintln!(
        "{name}: {} vertices, {} edges (scale {})",
        graph.num_vertices(),
        graph.num_edges(),
        args.scale
    );
    // The base index is what a live server would already hold; building
    // it is load, not measurement.
    let base = OwnedGsIndex::build(Arc::clone(&graph), *args.threads.iter().max().unwrap());

    type DeltaDraw = fn(&CsrGraph, usize, u64) -> GraphDelta;
    let workloads: [(&str, DeltaDraw); 2] = [("hot", hot_delta), ("uniform", random_delta)];

    let mut report = figure_report("update_bench", &args);
    let mut table = Table::new(&[
        "dataset",
        "workload",
        "batch",
        "|delta|",
        "threads",
        "applied",
        "touched",
        "recomputed",
        "incr (ms)",
        "scratch (ms)",
        "speedup",
    ]);
    let mut worst: Option<f64> = None;

    for (wi, &(workload, draw)) in workloads.iter().enumerate() {
        for (bi, spec) in batches.iter().enumerate() {
            let size = spec.resolve(graph.num_edges());
            let delta = draw(&graph, size, DELTA_SEED + (wi * batches.len() + bi) as u64);
            for &threads in &args.threads {
                let pool = WorkerPool::new(threads);

                // Incremental: repair the prebuilt index under the batch
                // (CSR splice + localized index recomputation).
                let (incr, (_updated, stats)) = best_of_n(args.runs, || {
                    base.apply_delta_with(&delta, &pool).expect("valid delta")
                });

                // From-scratch: splice the same batch, rebuild the index
                // over the edited graph. Paying the splice on both sides
                // keeps the comparison about the index work.
                let (scratch, _) = best_of_n(args.runs, || {
                    let applied = delta.apply_to(&graph).expect("valid delta");
                    OwnedGsIndex::build(Arc::new(applied.graph), threads)
                });

                // Phase capture: one cluster repair over the same batch.
                // The live clustering is set up untimed (it is server
                // state, like the base index) and only `apply` runs
                // traced.
                let mut inc = IncrementalClustering::with_pool(
                    Arc::clone(&graph),
                    ScanParams::new(EPS, MU),
                    WorkerPool::new(threads),
                );
                let collector = Collector::new();
                let guard = collector.activate();
                let outcome = inc.apply(&delta).expect("valid delta");
                drop(guard);
                assert_eq!(outcome.stats, stats, "repair saw the same update");

                let speedup = scratch.as_secs_f64() / incr.as_secs_f64().max(1e-12);
                if workload == "hot" {
                    worst = Some(worst.map_or(speedup, |w: f64| w.min(speedup)));
                }

                let mut run = RunReport::new("update")
                    .with_dataset(name.as_str())
                    .with_threads(threads)
                    .with_strategy("parallel")
                    .with_params(EPS, MU as u64)
                    .with_graph(graph.num_vertices() as u64, graph.num_edges() as u64);
                run.wall_nanos = incr.as_nanos() as u64;
                run.phases = normalize_phases(RunReport::phases_from(&collector.snapshot()));
                run.push_extra(
                    "config",
                    Json::Str(format!(
                        "workload={workload},batch={},size={size},applied={},touched={},recomputed={}",
                        spec.label(),
                        stats.applied_edges,
                        stats.touched_vertices,
                        stats.recomputed_edges,
                    )),
                );
                run.push_extra("speedup", Json::Num(speedup));
                run.push_extra("scratch_nanos", Json::from_u64(scratch.as_nanos() as u64));
                report.runs.push(run);

                table.row(vec![
                    name.clone(),
                    workload.to_string(),
                    spec.label(),
                    size.to_string(),
                    threads.to_string(),
                    stats.applied_edges.to_string(),
                    stats.touched_vertices.to_string(),
                    stats.recomputed_edges.to_string(),
                    format!("{:.3}", incr.as_secs_f64() * 1e3),
                    format!("{:.3}", scratch.as_secs_f64() * 1e3),
                    format!("{speedup:.1}x"),
                ]);
            }
        }
    }

    println!(
        "\nIncremental index maintenance vs from-scratch rebuild on {name} \
         (best of {} runs per cell, batches {{1, 16, 1% of |E|}}, \
         hot + uniform workloads)",
        args.runs
    );
    table.print(args.csv);
    emit_report(&args, report, &table);

    if min_speedup > 0.0 {
        let worst = worst.expect("at least one hot cell");
        if worst < min_speedup {
            eprintln!(
                "FAIL: worst hot-cell speedup {worst:.2}x below the \
                 --min-speedup {min_speedup}x gate"
            );
            std::process::exit(1);
        }
        eprintln!("speedup gate ok: worst hot cell {worst:.2}x >= {min_speedup}x");
    }
}
