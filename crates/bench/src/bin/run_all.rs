//! Runs the complete evaluation suite — every table, figure and ablation
//! — by spawning each harness binary in sequence, forwarding the common
//! flags. Writes everything it prints to stdout; use
//! `cargo run --release -p ppscan-bench --bin run_all -- --scale 0.25`
//! for a faster pass, or `--quick` for a smoke run.

use std::process::Command;

const BINS: [&str; 11] = [
    "table1",
    "table2",
    "fig1_breakdown",
    "fig2_compare",
    "fig3_compare",
    "fig4_invocations",
    "fig5_simd",
    "fig6_scalability",
    "fig7_robustness",
    "fig8_roll",
    "ablation_edorder",
];
const EXTRA_BINS: [&str; 3] = [
    "ablation_twophase",
    "ablation_sched",
    "parameter_exploration",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in BINS.iter().chain(EXTRA_BINS.iter()) {
        println!("\n================ {bin} ================");
        let status = Command::new(exe_dir.join(bin))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} FAILED: {status}");
            failures.push(*bin);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
