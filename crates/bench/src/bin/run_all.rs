//! Runs the complete evaluation suite — every table, figure and ablation
//! — by spawning each harness binary in sequence, forwarding the common
//! flags. Writes everything it prints to stdout; use
//! `cargo run --release -p ppscan-bench --bin run_all -- --scale 0.25`
//! for a faster pass, or `--quick` for a smoke run.
//!
//! `--report-dir <dir>` (intercepted, not forwarded) makes every child
//! binary emit its machine-readable report as `<dir>/<bin>.json` via the
//! common `--report` flag, then validates that each written file parses
//! back as a `FigureReport`. Diff them against committed baselines with
//! the `report_check` binary.

use std::path::PathBuf;
use std::process::Command;

const BINS: [&str; 11] = [
    "table1",
    "table2",
    "fig1_breakdown",
    "fig2_compare",
    "fig3_compare",
    "fig4_invocations",
    "fig5_simd",
    "fig6_scalability",
    "fig7_robustness",
    "fig8_roll",
    "ablation_edorder",
];
const EXTRA_BINS: [&str; 7] = [
    "ablation_twophase",
    "ablation_sched",
    "parameter_exploration",
    "obs_overhead",
    "serve_bench",
    "soak",
    "autotune_bench",
];

fn main() {
    let mut forwarded: Vec<String> = Vec::new();
    let mut report_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--report-dir" {
            let dir = args.next().unwrap_or_else(|| {
                eprintln!("missing value for --report-dir");
                std::process::exit(2);
            });
            report_dir = Some(PathBuf::from(dir));
        } else {
            forwarded.push(arg);
        }
    }
    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create report dir {}: {e}", dir.display());
            std::process::exit(2);
        });
    }
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in BINS.iter().chain(EXTRA_BINS.iter()) {
        println!("\n================ {bin} ================");
        let mut cmd = Command::new(exe_dir.join(bin));
        cmd.args(&forwarded);
        let report_path = report_dir.as_ref().map(|d| d.join(format!("{bin}.json")));
        if let Some(path) = &report_path {
            cmd.arg("--report").arg(path);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} FAILED: {status}");
            failures.push(*bin);
            continue;
        }
        // A child that exited green must also have produced a loadable
        // report when one was requested.
        if let Some(path) = &report_path {
            let check = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| ppscan_obs::FigureReport::parse(&text));
            if let Err(e) = check {
                eprintln!("{bin} report invalid at {}: {e}", path.display());
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
        if let Some(dir) = &report_dir {
            println!("reports in {}", dir.display());
        }
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
