//! Extension experiment — index-based vs recomputation-based parameter
//! exploration (paper §3.3): the ppSCAN paper argues GS*-Index's
//! exhaustive construction is "prohibitively expensive" and positions
//! fast recomputation (ppSCAN) as the better way to explore parameters.
//! This harness quantifies the trade-off: index build cost, per-query
//! cost from the index, per-query cost of a fresh ppSCAN run, and the
//! break-even query count.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin parameter_exploration -- [--scale 1.0]
//! ```

use ppscan_bench::{best_of, secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_gsindex::GsIndex;
use std::time::{Duration, Instant};

fn main() {
    let args = HarnessArgs::parse();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let cfg = PpScanConfig::with_threads(threads);

    let mut table = Table::new(&[
        "dataset",
        "index build",
        "avg query (index)",
        "avg query (ppSCAN)",
        "break-even #queries",
    ]);
    // The paper's evaluation grid: ε ∈ {0.1..0.9} × µ ∈ {2,5,10,15}.
    let grid: Vec<(f64, usize)> = (1..=9)
        .flat_map(|e| [2usize, 5, 10, 15].map(|mu| (e as f64 / 10.0, mu)))
        .collect();

    let mut report = ppscan_bench::figure_report("parameter_exploration", &args);
    for (d, g) in ppscan_bench::load_datasets(&args) {
        let t0 = Instant::now();
        let index = GsIndex::build(&g, threads);
        let build = t0.elapsed();

        let mut idx_total = Duration::ZERO;
        let mut pp_total = Duration::ZERO;
        for &(eps, mu) in &grid {
            let p = ppscan_core::params::ScanParams::new(eps, mu);
            let (tq, idx_result) = best_of(|| index.query(p));
            idx_total += tq;
            let (tr, pp_result) = best_of(|| ppscan(&g, p, &cfg));
            pp_total += tr;
            let mut r = pp_result.report.clone();
            r.dataset = Some(d.name().into());
            report.runs.push(r);
            assert_eq!(
                idx_result,
                pp_result.clustering,
                "{}: index and ppSCAN disagree at eps={eps} mu={mu}",
                d.name()
            );
        }
        let idx_avg = idx_total / grid.len() as u32;
        let pp_avg = pp_total / grid.len() as u32;
        let break_even = if pp_avg > idx_avg {
            format!(
                "{:.1}",
                build.as_secs_f64() / (pp_avg - idx_avg).as_secs_f64()
            )
        } else {
            "never".into()
        };
        table.row(vec![
            d.name().into(),
            secs(build),
            format!("{:.6}", idx_avg.as_secs_f64()),
            format!("{:.6}", pp_avg.as_secs_f64()),
            break_even,
        ]);
    }
    println!(
        "\nParameter exploration: GS*-Index vs ppSCAN recomputation over a \
         {}-point (eps, mu) grid (results verified equal)",
        36
    );
    table.print(args.csv);
    ppscan_bench::emit_report(&args, report, &table);
}
