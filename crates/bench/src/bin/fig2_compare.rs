//! Figure 2 — comparison with existing algorithms on the "CPU server"
//! configuration: ppSCAN uses the AVX2 pivot kernel.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig2_compare -- [--scale 0.5]
//! ```

use ppscan_intersect::Kernel;

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    ppscan_bench::compare::run(
        "fig2_compare",
        "Figure 2",
        "CPU/AVX2",
        Kernel::PivotAvx2,
        threads,
    );
}
