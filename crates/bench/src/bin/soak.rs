//! Soak harness — runs a [`ppscan_serve::Server`] under closed-loop
//! load with live index rebuilds for a wall-clock budget, sampling the
//! server's live [`MetricsRegistry`](ppscan_obs::registry::MetricsRegistry)
//! into a timeline the emitted run report embeds (`RunReport::timeline`,
//! schema 2). The stall watchdog runs for the whole soak; a single trip
//! fails the run.
//!
//! Closed-loop clients bound the queue by construction: with `C`
//! clients at most `C` queries are ever outstanding, so the timeline's
//! `serve.queue_depth` must stay ≤ `C` in every sample — `report_check
//! --check-timeline` asserts exactly that via the `queue_bound` extra.
//!
//! With `--update-rate R` (batches/sec, default 0 = off) an updater
//! thread streams [`GraphDelta`](ppscan_graph::delta::GraphDelta)
//! batches through [`Server::update`] while the load runs — the graph
//! evolves live under the queries. A shadow copy of the evolving graph
//! is kept in lockstep with the published snapshot (updates and
//! rebuilds both run under the shadow lock), so every delta is drawn
//! against exactly the graph the server will apply it to and rebuilds
//! rebuild the *evolved* graph rather than reverting it. The
//! zero-watchdog-trip gate covers the update path too.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin soak -- \
//!     [--quick] [--scale S] [--budget-secs 60] [--clients 4] \
//!     [--batch 32] [--sample-millis 250] [--rebuild-millis 500] \
//!     [--slow-query-millis 50] [--watchdog-secs 5] \
//!     [--update-rate 0] [--update-batch 8] [--report FILE]
//! ```
//!
//! Exits non-zero if the watchdog tripped or the timeline came back
//! with fewer than [`MIN_SNAPSHOTS`] samples.

use ppscan_bench::{emit_report, figure_report, load_datasets, HarnessArgs, Table};
use ppscan_obs::events::WatchdogConfig;
use ppscan_obs::json::Json;
use ppscan_obs::registry::TimelineSampler;
use ppscan_obs::report::PhaseMetrics;
use ppscan_obs::{Collector, RunReport, Span};
use ppscan_serve::{ServeConfig, Server};
use ppscan_update::stress::random_delta;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker threads in the server's query pool (fixed, like serve_bench,
/// so soak runs are comparable across flag sets).
const POOL_THREADS: usize = 2;

/// A soak that cannot produce this many samples is too short to say
/// anything about steady state.
const MIN_SNAPSHOTS: usize = 10;

/// Canonical phase order (mirrors serve_bench): dispatch phases carry
/// zero wall share, `serve-load` is normalized to the whole soak wall.
const PHASE_ORDER: [&str; 3] = ["serve-load", "serve-batch", "serve-query"];

/// Seed base for the streamed update batches (each batch bumps it, so
/// a soak's delta sequence is reproducible given the batch count).
const UPDATE_SEED: u64 = 0x0a50_a50a_0001;

/// Same deterministic (ε, µ) mix as serve_bench.
fn query_mix(client: usize, q: usize) -> (f64, usize) {
    const EPS: [f64; 5] = [0.2, 0.35, 0.5, 0.65, 0.8];
    (EPS[(client + q) % EPS.len()], 1 + (client * 3 + q) % 6)
}

fn normalize_phases(stages: Vec<PhaseMetrics>, wall_nanos: u64) -> Vec<PhaseMetrics> {
    PHASE_ORDER
        .iter()
        .map(|&name| {
            let mut p = stages
                .iter()
                .find(|p| p.name == name)
                .cloned()
                .unwrap_or_else(|| PhaseMetrics {
                    name: name.to_string(),
                    ..PhaseMetrics::default()
                });
            p.wall_nanos = if name == "serve-load" { wall_nanos } else { 0 };
            p
        })
        .collect()
}

fn main() {
    let (mut args, extras) = HarnessArgs::parse_with(&[
        "--budget-secs",
        "--clients",
        "--batch",
        "--sample-millis",
        "--rebuild-millis",
        "--slow-query-millis",
        "--watchdog-secs",
        "--update-rate",
        "--update-batch",
    ]);
    let extra = |name: &str, default: u64| -> u64 {
        extras
            .iter()
            .rev()
            .find(|(f, _)| f == name)
            .map_or(default, |(_, v)| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("bad {name}: {v}");
                    std::process::exit(2);
                })
            })
    };
    let mut budget_secs = extra("--budget-secs", 60);
    if args.quick {
        budget_secs = budget_secs.min(5);
    }
    let clients = extra("--clients", 4).max(1) as usize;
    let batch = extra("--batch", 32).max(1) as usize;
    let sample_millis = extra("--sample-millis", 250).max(1);
    let rebuild_millis = extra("--rebuild-millis", 500).max(1);
    let slow_query_millis = extra("--slow-query-millis", 50);
    let watchdog_secs = extra("--watchdog-secs", 5).max(1);
    let update_rate = extra("--update-rate", 0);
    let update_batch = extra("--update-batch", 8).max(1) as usize;
    // One graph is the point of a soak (steady state, not a sweep).
    args.datasets.truncate(1);

    let mut report = figure_report("soak", &args);
    report
        .context
        .push(("budget_secs".into(), Json::from_u64(budget_secs)));
    let mut table = Table::new(&[
        "dataset",
        "clients",
        "budget (s)",
        "queries",
        "q/s",
        "p50 (us)",
        "p99 (us)",
        "p999 (us)",
        "swaps",
        "updates",
        "trips",
        "samples",
    ]);

    let mut failed = false;
    for (d, g) in load_datasets(&args) {
        let graph = Arc::new(g);
        let collector = Collector::new();
        let obs_guard = collector.activate();

        let t0 = Instant::now();
        let server = {
            let _span = Span::enter("serve-load");
            Server::start(
                Arc::clone(&graph),
                ServeConfig {
                    threads: POOL_THREADS,
                    max_batch: batch,
                    slow_query_nanos: slow_query_millis * 1_000_000,
                    watchdog: Some(WatchdogConfig {
                        deadline: Duration::from_secs(watchdog_secs),
                        ..WatchdogConfig::default()
                    }),
                    ..ServeConfig::default()
                },
            )
        };
        let sampler = TimelineSampler::start(
            Arc::clone(server.metrics()),
            Duration::from_millis(sample_millis),
        );

        let stop = AtomicBool::new(false);
        // The updater and rebuilder both run under this lock, so the
        // shadow graph and the published snapshot advance in lockstep:
        // every delta is drawn against exactly the graph the server
        // will apply it to, and rebuilds rebuild the evolved graph.
        let shadow = Mutex::new(Arc::clone(&graph));
        let (swaps, update_batches) = std::thread::scope(|scope| {
            for c in 0..clients {
                let (server, stop) = (&server, &stop);
                scope.spawn(move || {
                    let mut q = 0usize;
                    while !stop.load(Relaxed) {
                        let (eps, mu) = query_mix(c, q);
                        let response = server.query(eps, mu);
                        assert!(response.result.is_ok(), "valid params must succeed");
                        q += 1;
                    }
                });
            }
            let rebuilder = {
                let (server, stop, shadow) = (&server, &stop, &shadow);
                scope.spawn(move || {
                    let mut swaps = 0u64;
                    while !stop.load(Relaxed) {
                        std::thread::sleep(Duration::from_millis(rebuild_millis));
                        if stop.load(Relaxed) {
                            break;
                        }
                        let live = shadow.lock().expect("shadow lock");
                        server.rebuild(Arc::clone(&live));
                        drop(live);
                        swaps += 1;
                    }
                    swaps
                })
            };
            let updater = (update_rate > 0).then(|| {
                let (server, stop, shadow) = (&server, &stop, &shadow);
                scope.spawn(move || {
                    let interval = Duration::from_nanos(1_000_000_000 / update_rate);
                    let mut batches = 0u64;
                    while !stop.load(Relaxed) {
                        std::thread::sleep(interval);
                        if stop.load(Relaxed) {
                            break;
                        }
                        let mut live = shadow.lock().expect("shadow lock");
                        let delta = random_delta(&live, update_batch, UPDATE_SEED + batches);
                        let applied = delta.apply_to(&live).expect("delta drawn from live graph");
                        server
                            .update(&delta)
                            .expect("published snapshot tracks the shadow graph");
                        *live = Arc::new(applied.graph);
                        drop(live);
                        batches += 1;
                    }
                    batches
                })
            });
            std::thread::sleep(Duration::from_secs(budget_secs));
            stop.store(true, Relaxed);
            (
                rebuilder.join().expect("rebuilder thread"),
                updater.map_or(0, |u| u.join().expect("updater thread")),
            )
        });
        let wall_nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let timeline = sampler.stop();

        let queries = server.queries_served();
        let trips = server.watchdog_trips();
        let hist = server.latency();
        let (p50, p99, p999) = (
            hist.quantile(0.50),
            hist.quantile(0.99),
            hist.quantile(0.999),
        );
        let qps = queries as f64 / (wall_nanos as f64 / 1e9).max(1e-9);
        let latency_json = hist.to_json();

        if trips > 0 {
            eprintln!(
                "SOAK FAILURE on {}: watchdog tripped {trips}x; last dump:\n{}",
                d.name(),
                server.watchdog_dump().unwrap_or_default()
            );
            failed = true;
        }
        if timeline.len() < MIN_SNAPSHOTS {
            eprintln!(
                "SOAK FAILURE on {}: only {} timeline samples (need >= {MIN_SNAPSHOTS}); \
                 raise --budget-secs or lower --sample-millis",
                d.name(),
                timeline.len()
            );
            failed = true;
        }

        drop(server);
        drop(obs_guard);

        let mut run = RunReport::new("soak")
            .with_dataset(d.name())
            .with_threads(clients)
            .with_strategy("parallel")
            .with_graph(graph.num_vertices() as u64, graph.num_edges() as u64);
        run.wall_nanos = wall_nanos;
        run.phases = normalize_phases(RunReport::phases_from(&collector.snapshot()), wall_nanos);
        run.timeline = timeline.clone();
        run.push_extra(
            "config",
            Json::Str(format!(
                "pool={POOL_THREADS},batch={batch},clients={clients},\
                 rebuild_millis={rebuild_millis},sample_millis={sample_millis},\
                 slow_query_millis={slow_query_millis},watchdog_secs={watchdog_secs},\
                 update_rate={update_rate},update_batch={update_batch}"
            )),
        );
        run.push_extra("latency", latency_json);
        run.push_extra("qps", Json::Num(qps));
        run.push_extra("queries", Json::from_u64(queries));
        run.push_extra("swaps", Json::from_u64(swaps));
        run.push_extra("update_batches", Json::from_u64(update_batches));
        run.push_extra("watchdog_trips", Json::from_u64(trips));
        // Closed-loop invariant: the queue can never hold more than one
        // query per client. report_check --check-timeline enforces it
        // against every sample's serve.queue_depth gauge.
        run.push_extra("queue_bound", Json::from_u64(clients as u64));
        report.runs.push(run);

        table.row(vec![
            d.name().into(),
            clients.to_string(),
            budget_secs.to_string(),
            queries.to_string(),
            format!("{qps:.0}"),
            format!("{:.1}", p50 as f64 / 1000.0),
            format!("{:.1}", p99 as f64 / 1000.0),
            format!("{:.1}", p999 as f64 / 1000.0),
            swaps.to_string(),
            update_batches.to_string(),
            trips.to_string(),
            timeline.len().to_string(),
        ]);
    }

    println!(
        "\nSoak: closed-loop serving with live rebuilds for {budget_secs}s \
         (pool = {POOL_THREADS} threads, batch <= {batch}, rebuild every \
         {rebuild_millis}ms, {update_rate} update batches/s of {update_batch} \
         edits, sampled every {sample_millis}ms, watchdog deadline \
         {watchdog_secs}s)"
    );
    table.print(args.csv);
    emit_report(&args, report, &table);
    if failed {
        std::process::exit(1);
    }
}
