//! Figure 3 — comparison with existing algorithms on the "KNL server"
//! configuration: ppSCAN uses the AVX-512 pivot kernel.
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin fig3_compare -- [--scale 0.5]
//! ```

use ppscan_intersect::Kernel;

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    ppscan_bench::compare::run(
        "fig3_compare",
        "Figure 3",
        "KNL/AVX-512",
        Kernel::PivotAvx512,
        threads,
    );
}
