//! Serving throughput and latency — closed-loop clients against a
//! [`ppscan_serve::Server`], sweeping the client count, with live index
//! swaps in flight. Each cell reports sustained queries/second and the
//! p50/p99/p999 queue-to-response latency from the server's histogram.
//!
//! The run reports are diffable across machines with `report_check
//! --check-runs`: the phase list ([`PHASE_ORDER`]) is structural, the
//! machine-dependent dispatch phases (`serve-batch`, `serve-query`)
//! have their wall share zeroed, and `serve-load` (the index build) is
//! normalized to the run's whole wall so its share is exactly 1.0 on
//! every machine. The latency histogram rides along under
//! `extra["latency"]` (schema
//! [`ppscan_obs::hist::LATENCY_SCHEMA_VERSION`]).
//!
//! ```sh
//! cargo run --release -p ppscan-bench --bin serve_bench -- \
//!     [--quick] [--scale S] [--threads 1,2,4,8] [--report FILE]
//! ```
//!
//! `--threads` sweeps the number of *client* threads; the server's
//! query pool is fixed at [`POOL_THREADS`].

use ppscan_bench::{emit_report, figure_report, load_datasets, HarnessArgs, Table};
use ppscan_obs::json::Json;
use ppscan_obs::report::PhaseMetrics;
use ppscan_obs::{Collector, RunReport, Span};
use ppscan_serve::{ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

/// Worker threads in the server's query pool (fixed so the sweep
/// isolates client concurrency).
const POOL_THREADS: usize = 2;
/// Queries executed under one snapshot pin.
const MAX_BATCH: usize = 64;
/// Index swaps published while the clients run.
const SWAPS: usize = 2;

/// Canonical phase order for the emitted reports (dispatch phases are
/// reported with zero wall share — they are dispatcher-utilization
/// dependent and do not diff across machines).
const PHASE_ORDER: [&str; 3] = ["serve-load", "serve-batch", "serve-query"];

/// A small deterministic (ε, µ) mix: all parameterizations valid, so
/// every query exercises the full index path.
fn query_mix(client: usize, q: usize) -> (f64, usize) {
    const EPS: [f64; 5] = [0.2, 0.35, 0.5, 0.65, 0.8];
    (EPS[(client + q) % EPS.len()], 1 + (client * 3 + q) % 6)
}

fn normalize_phases(stages: Vec<PhaseMetrics>, load_nanos: u64) -> Vec<PhaseMetrics> {
    PHASE_ORDER
        .iter()
        .map(|&name| {
            let mut p = stages
                .iter()
                .find(|p| p.name == name)
                .cloned()
                .unwrap_or_else(|| PhaseMetrics {
                    name: name.to_string(),
                    ..PhaseMetrics::default()
                });
            p.wall_nanos = if name == "serve-load" { load_nanos } else { 0 };
            p
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let queries_per_client: usize = if args.quick { 150 } else { 2000 };

    let mut report = figure_report("serve_bench", &args);
    let mut table = Table::new(&[
        "dataset",
        "clients",
        "queries",
        "wall (s)",
        "q/s",
        "p50 (us)",
        "p99 (us)",
        "p999 (us)",
        "swaps",
    ]);

    for (d, g) in load_datasets(&args) {
        let graph = Arc::new(g);
        for &clients in &args.threads {
            let collector = Collector::new();
            let obs_guard = collector.activate();

            let t_load = Instant::now();
            let server = {
                let _span = Span::enter("serve-load");
                Server::start(
                    Arc::clone(&graph),
                    ServeConfig {
                        threads: POOL_THREADS,
                        max_batch: MAX_BATCH,
                        ..ServeConfig::default()
                    },
                )
            };
            let load_nanos = t_load.elapsed().as_nanos() as u64;

            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let server = &server;
                    scope.spawn(move || {
                        for q in 0..queries_per_client {
                            let (eps, mu) = query_mix(c, q);
                            let response = server.query(eps, mu);
                            assert!(response.result.is_ok(), "valid params must succeed");
                        }
                    });
                }
                // Swap the index under the load: same graph, new build,
                // new generation. Queries must keep completing.
                for _ in 0..SWAPS {
                    server.rebuild(Arc::clone(&graph));
                }
            });
            let wall = t0.elapsed();
            assert_eq!(
                server.generation() as usize,
                1 + SWAPS,
                "all swaps published"
            );

            let total = server.queries_served();
            let hist = server.latency();
            let (p50, p99, p999) = (
                hist.quantile(0.50),
                hist.quantile(0.99),
                hist.quantile(0.999),
            );
            let qps = total as f64 / wall.as_secs_f64().max(1e-9);
            let latency_json = hist.to_json();

            drop(server);
            drop(obs_guard);

            let mut run = RunReport::new("serve")
                .with_dataset(d.name())
                .with_threads(clients)
                .with_strategy("parallel")
                .with_graph(graph.num_vertices() as u64, graph.num_edges() as u64);
            run.wall_nanos = load_nanos;
            run.phases =
                normalize_phases(RunReport::phases_from(&collector.snapshot()), load_nanos);
            run.push_extra(
                "config",
                Json::Str(format!(
                    "pool={POOL_THREADS},batch={MAX_BATCH},queries={queries_per_client},swaps={SWAPS}"
                )),
            );
            run.push_extra("latency", latency_json);
            run.push_extra("qps", Json::Num(qps));
            report.runs.push(run);

            table.row(vec![
                d.name().into(),
                clients.to_string(),
                total.to_string(),
                format!("{:.3}", wall.as_secs_f64()),
                format!("{qps:.0}"),
                format!("{:.1}", p50 as f64 / 1000.0),
                format!("{:.1}", p99 as f64 / 1000.0),
                format!("{:.1}", p999 as f64 / 1000.0),
                SWAPS.to_string(),
            ]);
        }
    }

    println!(
        "\nServing throughput: closed-loop clients over a shared GS*-Index \
         (pool = {POOL_THREADS} threads, batch ≤ {MAX_BATCH}, {SWAPS} live \
         swaps per cell, {queries_per_client} queries per client)"
    );
    table.print(args.csv);
    emit_report(&args, report, &table);
}
