//! Shared driver for the Figures 2/3 algorithm comparison: SCAN, pSCAN,
//! anySCAN-style, SCAN-XP-style and ppSCAN across datasets and ε.
//!
//! Figure 2 is the paper's CPU server (AVX2 kernel), Figure 3 the KNL
//! server (AVX-512 kernel); on this reproduction both run on the same
//! host and differ exactly in the SIMD kernel ppSCAN uses (DESIGN.md §3).
//! Sequential baselines get a time budget per run instead of the paper's
//! 90-minute TLE.

use crate::{best_of, secs, HarnessArgs, Table};
use ppscan_core::ppscan::{ppscan, PpScanConfig};
use ppscan_core::{anyscan, pscan, scan, scanxp};
use ppscan_intersect::Kernel;
use std::time::Duration;

/// Per-(algorithm, ε) budget: if one run exceeds it, remaining ε values
/// for that algorithm on that dataset print as `TLE`.
const BUDGET: Duration = Duration::from_secs(120);

/// Runs the full comparison with the given ppSCAN kernel and prints the
/// figure table. `bin` is the binary name (report file identity),
/// `figure` the display name.
pub fn run(bin: &str, figure: &str, platform: &str, kernel: Kernel, threads: usize) {
    let mut args = HarnessArgs::parse();
    if !args.quick && args.scale == 1.0 {
        args.scale = 0.5;
    }
    if !kernel.available() {
        eprintln!(
            "warning: kernel {kernel} unavailable on this CPU; falling back to {}",
            Kernel::auto()
        );
    }
    let kernel = if kernel.available() {
        kernel
    } else {
        Kernel::auto()
    };
    let cfg = PpScanConfig::with_threads(threads).kernel(kernel);

    let mut report = crate::figure_report(bin, &args);
    report.context.push((
        "kernel".to_string(),
        ppscan_obs::json::Json::Str(kernel.to_string()),
    ));
    let mut table = Table::new(&[
        "dataset", "eps", "SCAN", "pSCAN", "anySCAN", "SCAN-XP", "ppSCAN",
    ]);
    for (d, g) in crate::load_datasets(&args) {
        let mut tle = [false; 4]; // scan, pscan, anyscan, scanxp
        for &eps in &args.eps_list {
            let p = args.params(eps);
            let mut cell = |idx: usize, f: &mut dyn FnMut()| -> String {
                if tle[idx] {
                    return "TLE".into();
                }
                let (t, ()) = best_of(f);
                if t > BUDGET {
                    tle[idx] = true;
                }
                secs(t)
            };
            let scan_t = cell(0, &mut || {
                scan::scan(&g, p);
            });
            let pscan_t = cell(1, &mut || {
                pscan::pscan(&g, p);
            });
            let any_t = cell(2, &mut || {
                anyscan::anyscan(&g, p, threads);
            });
            let xp_t = cell(3, &mut || {
                scanxp::scanxp(&g, p, threads);
            });
            let (pp_t, pp_out) = best_of(|| ppscan(&g, p, &cfg));
            let mut pp_report = pp_out.report;
            pp_report.dataset = Some(d.name().into());
            report.runs.push(pp_report);
            table.row(vec![
                d.name().into(),
                format!("{eps:.1}"),
                scan_t,
                pscan_t,
                any_t,
                xp_t,
                secs(pp_t),
            ]);
        }
    }
    println!(
        "\n{figure}: comparison with existing algorithms ({platform}, kernel {kernel}, \
         {threads} threads, mu = {}), seconds",
        args.mu
    );
    table.print(args.csv);
    crate::emit_report(&args, report, &table);
}
