//! # ppscan-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). Each experiment is a binary under `src/bin/`; run
//! them with `cargo run --release -p ppscan-bench --bin <name>`, or all
//! of them with `--bin run_all`. `EXPERIMENTS.md` records the outputs
//! next to the paper's numbers.
//!
//! Common flags (all binaries):
//!
//! * `--scale <f>` — dataset scale factor (default varies per binary;
//!   1.0 ≈ 10⁵–10⁶ edges per dataset). Use bigger scales on bigger
//!   machines.
//! * `--csv` — emit machine-readable CSV after the human-readable table.
//! * `--mu <n>`, `--eps <a,b,c>` — parameter overrides.
//! * `--threads <a,b,c>` — thread counts (scalability experiments).
//! * `--quick` — reduced parameter grid for smoke testing.
//! * `--report <path.json>` — write the figure's machine-readable
//!   [`FigureReport`] (context, rendered table, per-run `RunReport`s)
//!   alongside the printed output. `run_all --report-dir <dir>` fans
//!   this out to one report per figure; `report_check` validates the
//!   files and diffs them against committed baselines.
//!
//! The harness measures **in-memory processing time** exactly as the
//! paper does: graph generation/loading is excluded; each measurement is
//! the best of [`RUNS`] runs ("we repeat each execution three times and
//! report the best run").

use ppscan_core::params::ScanParams;
use ppscan_graph::datasets::Dataset;
use ppscan_obs::json::Json;
use ppscan_obs::report::{PhaseMetrics, RunReport, TableData};
use ppscan_obs::FigureReport;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Measurement repetitions; the paper reports the best of three.
pub const RUNS: usize = 3;

/// Parsed common CLI flags.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Emit CSV rows after the table.
    pub csv: bool,
    /// ε values to sweep.
    pub eps_list: Vec<f64>,
    /// µ value (µ sweeps use their own list).
    pub mu: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Datasets to run on.
    pub datasets: Vec<Dataset>,
    /// Reduced grid for smoke tests.
    pub quick: bool,
    /// Write the figure's machine-readable [`FigureReport`] here.
    pub report: Option<PathBuf>,
    /// Measurement repetitions per cell (best-of-`runs`).
    pub runs: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: 1.0,
            csv: false,
            eps_list: vec![0.2, 0.4, 0.6, 0.8],
            mu: 5,
            threads: vec![1, 2, 4, 8],
            datasets: Dataset::TABLE1.to_vec(),
            quick: false,
            report: None,
            runs: RUNS,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        Self::parse_with(&[]).0
    }

    /// [`parse`](Self::parse), but binaries with bin-specific value
    /// flags (e.g. the soak harness's `--budget-secs`) list them here
    /// instead of re-implementing the whole parser: each occurrence is
    /// returned as a `(flag, value)` pair, in argument order. Flags not
    /// in either set still exit 2 — the unknown-flag contract holds.
    pub fn parse_with(extra_value_flags: &[&str]) -> (Self, Vec<(String, String)>) {
        let mut out = Self::default();
        let mut extras: Vec<(String, String)> = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => out.scale = value("--scale").parse().expect("bad --scale"),
                "--csv" => out.csv = true,
                "--quick" => out.quick = true,
                "--mu" => out.mu = value("--mu").parse().expect("bad --mu"),
                "--eps" => {
                    out.eps_list = value("--eps")
                        .split(',')
                        .map(|s| s.parse().expect("bad --eps"))
                        .collect();
                }
                "--threads" => {
                    out.threads = value("--threads")
                        .split(',')
                        .map(|s| s.parse().expect("bad --threads"))
                        .collect();
                }
                "--datasets" => {
                    out.datasets = value("--datasets")
                        .split(',')
                        .map(|s| {
                            Dataset::parse(s).unwrap_or_else(|| {
                                eprintln!("unknown dataset {s}");
                                std::process::exit(2);
                            })
                        })
                        .collect();
                }
                "--report" => out.report = Some(PathBuf::from(value("--report"))),
                "--runs" => {
                    out.runs = value("--runs").parse().expect("bad --runs");
                    assert!(out.runs > 0, "--runs must be positive");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale <f> --csv --quick --mu <n> --eps <a,b,..> \
                         --threads <a,b,..> --datasets <d1,d2,..> --report <path.json> \
                         --runs <n>{}",
                        if extra_value_flags.is_empty() {
                            String::new()
                        } else {
                            format!(" {} <v>", extra_value_flags.join(" <v> "))
                        }
                    );
                    std::process::exit(0);
                }
                other if extra_value_flags.contains(&other) => {
                    extras.push((other.to_string(), value(other)));
                }
                other => {
                    eprintln!("unknown flag {other} (see --help)");
                    std::process::exit(2);
                }
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.1);
            out.eps_list.truncate(2);
            out.threads.truncate(2);
        }
        (out, extras)
    }

    /// `ScanParams` for one ε of the sweep.
    pub fn params(&self, eps: f64) -> ScanParams {
        ScanParams::new(eps, self.mu)
    }
}

/// Best-of-[`RUNS`] wall-clock measurement of `f` (the paper's
/// methodology). Returns the best duration and the last result.
pub fn best_of<R>(f: impl FnMut() -> R) -> (Duration, R) {
    best_of_n(RUNS, f)
}

/// Best-of-`n` wall-clock measurement of `f`. Comparison bins raise `n`
/// (via `--runs`) on noisy machines, where best-of-three is not enough
/// to shake off scheduling bursts.
pub fn best_of_n<R>(n: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..n.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed());
        out = Some(r);
    }
    (best, out.unwrap())
}

/// Seconds with 3 decimals for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A simple aligned-text table that can also replay itself as CSV.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table as report data, exactly as printed.
    pub fn to_data(&self) -> TableData {
        TableData {
            header: self.header.clone(),
            rows: self.rows.clone(),
        }
    }

    /// Prints the aligned table, and CSV when `csv` is set.
    pub fn print(&self, csv: bool) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        if csv {
            println!("\n# CSV");
            println!("{}", self.header.join(","));
            for row in &self.rows {
                println!("{}", row.join(","));
            }
        }
    }
}

/// A [`FigureReport`] skeleton for one bench binary: the figure name
/// plus the harness-flag context every run of the figure shares.
pub fn figure_report(figure: &str, args: &HarnessArgs) -> FigureReport {
    let mut r = FigureReport::new(figure);
    r.context.push(("scale".into(), Json::Num(args.scale)));
    r.context
        .push(("mu".into(), Json::from_u64(args.mu as u64)));
    r.context.push((
        "eps".into(),
        Json::Arr(args.eps_list.iter().map(|&e| Json::Num(e)).collect()),
    ));
    r.context.push((
        "threads".into(),
        Json::Arr(
            args.threads
                .iter()
                .map(|&t| Json::from_u64(t as u64))
                .collect(),
        ),
    ));
    r.context.push((
        "datasets".into(),
        Json::Arr(
            args.datasets
                .iter()
                .map(|d| Json::Str(d.name().to_string()))
                .collect(),
        ),
    ));
    r.context.push(("quick".into(), Json::Bool(args.quick)));
    r.context
        .push(("runs".into(), Json::from_u64(args.runs as u64)));
    r
}

/// Attaches the rendered table to `report` and writes it to
/// `--report <path>` when the flag was given (no-op otherwise). Exits
/// non-zero if the file cannot be written — a missing report must fail
/// loudly, CI uploads it as an artifact.
pub fn emit_report(args: &HarnessArgs, mut report: FigureReport, table: &Table) {
    report.table = Some(table.to_data());
    let Some(path) = &args.report else { return };
    if let Err(e) = report.write_to_file(path) {
        eprintln!("could not write report {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("report written to {}", path.display());
}

/// Diffs two figure reports cell by cell. Cells that parse as numbers on
/// both sides compare within relative tolerance `tol` (and absolute
/// tolerance `tol` near zero); everything else must match exactly. Wall
/// times and counters inside `runs` are machine-dependent and are *not*
/// compared — the rendered table is the regression surface. Returns
/// human-readable mismatch descriptions (empty = match).
pub fn diff_figures(baseline: &FigureReport, got: &FigureReport, tol: f64) -> Vec<String> {
    let mut diffs = Vec::new();
    if baseline.figure != got.figure {
        diffs.push(format!(
            "figure name: baseline {:?}, got {:?}",
            baseline.figure, got.figure
        ));
    }
    let (Some(base_t), Some(got_t)) = (&baseline.table, &got.table) else {
        if baseline.table.is_some() != got.table.is_some() {
            diffs.push("one report has a table, the other does not".into());
        }
        return diffs;
    };
    if base_t.header != got_t.header {
        diffs.push(format!(
            "table header: baseline {:?}, got {:?}",
            base_t.header, got_t.header
        ));
        return diffs;
    }
    if base_t.rows.len() != got_t.rows.len() {
        diffs.push(format!(
            "row count: baseline {}, got {}",
            base_t.rows.len(),
            got_t.rows.len()
        ));
        return diffs;
    }
    for (i, (br, gr)) in base_t.rows.iter().zip(&got_t.rows).enumerate() {
        for ((bc, gc), col) in br.iter().zip(gr).zip(&base_t.header) {
            let close = match (bc.parse::<f64>(), gc.parse::<f64>()) {
                (Ok(b), Ok(g)) => (b - g).abs() <= tol * b.abs().max(1.0),
                _ => bc == gc,
            };
            if !close {
                diffs.push(format!(
                    "row {i} column {col:?}: baseline {bc:?}, got {gc:?}"
                ));
            }
        }
    }
    diffs
}

/// Tolerances for [`diff_runs`]. Defaults are deliberately loose: run
/// metrics cross machines, and the check is after structural
/// regressions (a phase vanishing, a counter doubling), not noise.
#[derive(Clone, Copy, Debug)]
pub struct RunDiffOptions {
    /// Relative tolerance for kernel counters (invocations, scans).
    pub counter_tol: f64,
    /// Absolute tolerance on a phase's share of end-to-end wall time.
    pub phase_tol: f64,
    /// Phases below this baseline share are skipped by the share check
    /// (tiny phases have share dominated by fixed overhead).
    pub min_share: f64,
    /// When set, a run whose timeline ends with a `serve.latency`
    /// summary must keep its p999 within `(1 + tol)` of the baseline's.
    /// Relative and one-sided (faster is never a regression); loose by
    /// design — tail latency crosses machines worse than any counter.
    pub p999_tol: Option<f64>,
}

impl Default for RunDiffOptions {
    fn default() -> Self {
        Self {
            counter_tol: 0.2,
            phase_tol: 0.25,
            min_share: 0.10,
            p999_tol: None,
        }
    }
}

/// Identity of one run within a figure, stable across machines: every
/// configuration axis the harnesses sweep, but no measured quantity.
/// The ISA suffix of auto-selected kernels (`block-avx512` here,
/// `block-avx2` on a runner without AVX-512) is a machine property,
/// not a configuration property, and is stripped.
fn run_identity(r: &RunReport) -> String {
    let config = r
        .extra
        .iter()
        .find(|(k, _)| k == "config")
        .and_then(|(_, v)| v.as_str())
        .unwrap_or("");
    let kernel = r
        .kernel
        .as_deref()
        .unwrap_or("?")
        .trim_end_matches("-avx512")
        .trim_end_matches("-avx2");
    format!(
        "{} dataset={} threads={} eps={} mu={} kernel={kernel} strategy={} config={}",
        r.algorithm,
        r.dataset.as_deref().unwrap_or("?"),
        r.threads.map_or("?".into(), |t| t.to_string()),
        r.eps.map_or("?".into(), |e| format!("{e}")),
        r.mu.map_or("?".into(), |m| m.to_string()),
        r.strategy.as_deref().unwrap_or("?"),
        config,
    )
}

/// Diffs the *runs* of two figure reports: matches runs by
/// configuration ([`run_identity`]) and compares what stays meaningful
/// across machines — the phase list, each major phase's share of the
/// end-to-end wall time, and the kernel counters — against the
/// [`RunDiffOptions`] tolerances. Complements [`diff_figures`], which
/// only sees the rendered table. Returns human-readable mismatch
/// descriptions (empty = match).
pub fn diff_runs(baseline: &FigureReport, got: &FigureReport, opt: &RunDiffOptions) -> Vec<String> {
    let mut diffs = Vec::new();
    if baseline.runs.len() != got.runs.len() {
        diffs.push(format!(
            "run count: baseline {}, got {}",
            baseline.runs.len(),
            got.runs.len()
        ));
    }
    let mut remaining: Vec<&RunReport> = got.runs.iter().collect();
    for base in &baseline.runs {
        let id = run_identity(base);
        let Some(pos) = remaining.iter().position(|r| run_identity(r) == id) else {
            diffs.push(format!("run missing from report: {id}"));
            continue;
        };
        let run = remaining.swap_remove(pos);
        let base_phases: Vec<&str> = base.phases.iter().map(|p| p.name.as_str()).collect();
        let got_phases: Vec<&str> = run.phases.iter().map(|p| p.name.as_str()).collect();
        if base_phases != got_phases {
            diffs.push(format!(
                "{id}: phases changed: baseline {base_phases:?}, got {got_phases:?}"
            ));
            continue;
        }
        for (bp, gp) in base.phases.iter().zip(&run.phases) {
            let share = |p: &PhaseMetrics, total: u64| p.wall_nanos as f64 / (total.max(1)) as f64;
            let bs = share(bp, base.wall_nanos);
            let gs = share(gp, run.wall_nanos);
            if bs >= opt.min_share && (bs - gs).abs() > opt.phase_tol {
                diffs.push(format!(
                    "{id}: phase {:?} share {:.2} vs baseline {:.2} (tol {:.2})",
                    bp.name, gs, bs, opt.phase_tol
                ));
            }
        }
        // Only machine-independent counters belong here: the autotune
        // win-mix (`autotune_wins_*`) is decided by measured timings and
        // legitimately differs across machines, so it is not compared.
        let counters = [
            (
                "compsim_invocations",
                base.counters.compsim_invocations,
                run.counters.compsim_invocations,
            ),
            (
                "elements_scanned",
                base.counters.elements_scanned,
                run.counters.elements_scanned,
            ),
            (
                "autotune_samples",
                base.counters.autotune_samples,
                run.counters.autotune_samples,
            ),
            (
                "autotune_buckets",
                base.counters.autotune_buckets,
                run.counters.autotune_buckets,
            ),
            (
                "autotune_planned",
                base.counters.autotune_planned,
                run.counters.autotune_planned,
            ),
            (
                "autotune_fallback",
                base.counters.autotune_fallback,
                run.counters.autotune_fallback,
            ),
        ];
        for (name, b, g) in counters {
            if b == 0 {
                continue;
            }
            let rel = (g as f64 - b as f64).abs() / b as f64;
            if rel > opt.counter_tol {
                diffs.push(format!(
                    "{id}: counter {name} = {g} vs baseline {b} \
                     ({:.0}% off, tol {:.0}%)",
                    rel * 100.0,
                    opt.counter_tol * 100.0
                ));
            }
        }
        if let Some(tol) = opt.p999_tol {
            let p999 = |r: &RunReport| {
                r.timeline
                    .last()
                    .and_then(|s| s.histogram("serve.latency"))
                    .map(|h| h.p999_nanos)
            };
            if let (Some(b), Some(g)) = (p999(base), p999(run)) {
                if b > 0 && g as f64 > b as f64 * (1.0 + tol) {
                    diffs.push(format!(
                        "{id}: serve.latency p999 = {g}ns vs baseline {b}ns \
                         (tol {tol:.2}x)"
                    ));
                }
            }
        }
    }
    for run in remaining {
        diffs.push(format!("unexpected extra run: {}", run_identity(run)));
    }
    diffs
}

/// Generates the requested datasets once, with progress logging.
pub fn load_datasets(args: &HarnessArgs) -> Vec<(Dataset, ppscan_graph::CsrGraph)> {
    args.datasets
        .iter()
        .map(|&d| {
            eprint!("generating {} (scale {}) … ", d.name(), args.scale);
            let t0 = Instant::now();
            let g = d.generate_scaled(args.scale);
            eprintln!(
                "{} vertices, {} edges ({:?})",
                g.num_vertices(),
                g.num_edges(),
                t0.elapsed()
            );
            (d, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_and_aligns() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(true); // smoke: must not panic
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn best_of_returns_result() {
        let (d, r) = best_of(|| 41 + 1);
        assert_eq!(r, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn figure_report_carries_table_and_context() {
        let args = HarnessArgs::default();
        let mut t = Table::new(&["dataset", "time"]);
        t.row(vec!["orkut-s".into(), "1.5".into()]);
        let mut r = figure_report("fig_test", &args);
        r.table = Some(t.to_data());
        let back = FigureReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.figure, "fig_test");
        assert_eq!(back.table.unwrap().rows[0][0], "orkut-s");
        assert!(back.context.iter().any(|(k, _)| k == "scale"));
    }

    #[test]
    fn diff_figures_tolerates_numeric_noise_only() {
        let mk = |cell: &str| {
            let mut r = FigureReport::new("f");
            r.table = Some(TableData {
                header: vec!["d".into(), "t".into()],
                rows: vec![vec!["orkut-s".into(), cell.into()]],
            });
            r
        };
        assert!(diff_figures(&mk("1.00"), &mk("1.04"), 0.05).is_empty());
        let diffs = diff_figures(&mk("1.00"), &mk("1.10"), 0.05);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        // Non-numeric cells must match exactly.
        assert!(!diff_figures(&mk("TLE"), &mk("1.0"), 0.05).is_empty());
        assert!(diff_figures(&mk("TLE"), &mk("TLE"), 0.05).is_empty());
    }

    fn run_with(dataset: &str, wall: u64, phases: &[(&str, u64)], invocations: u64) -> RunReport {
        let mut r = RunReport::new("ppscan");
        r.dataset = Some(dataset.into());
        r.threads = Some(8);
        r.eps = Some(0.2);
        r.mu = Some(5);
        r.wall_nanos = wall;
        r.phases = phases
            .iter()
            .map(|&(name, nanos)| PhaseMetrics {
                name: name.into(),
                wall_nanos: nanos,
                tasks: 1,
                workers: Vec::new(),
            })
            .collect();
        r.counters.compsim_invocations = invocations;
        r.counters.elements_scanned = invocations * 100;
        r
    }

    #[test]
    fn diff_runs_matches_identical_reports() {
        let mut a = FigureReport::new("f");
        a.runs
            .push(run_with("roll", 100, &[("prune", 20), ("check", 80)], 1000));
        let b = a.clone();
        assert!(diff_runs(&a, &b, &RunDiffOptions::default()).is_empty());
    }

    #[test]
    fn diff_runs_tolerates_noise_but_catches_regressions() {
        let mut base = FigureReport::new("f");
        base.runs
            .push(run_with("roll", 100, &[("prune", 20), ("check", 80)], 1000));
        // 10% counter noise, phase shares shifted a little: fine.
        let mut ok = FigureReport::new("f");
        ok.runs
            .push(run_with("roll", 120, &[("prune", 30), ("check", 90)], 1100));
        assert!(diff_runs(&base, &ok, &RunDiffOptions::default()).is_empty());
        // Counter doubled: regression.
        let mut bad = FigureReport::new("f");
        bad.runs
            .push(run_with("roll", 100, &[("prune", 20), ("check", 80)], 2000));
        assert_eq!(diff_runs(&base, &bad, &RunDiffOptions::default()).len(), 2);
        // A major phase collapses to a sliver of the wall: regression.
        let mut skew = FigureReport::new("f");
        skew.runs
            .push(run_with("roll", 100, &[("prune", 20), ("check", 5)], 1000));
        assert_eq!(diff_runs(&base, &skew, &RunDiffOptions::default()).len(), 1);
    }

    #[test]
    fn diff_runs_catches_structural_changes() {
        let mut base = FigureReport::new("f");
        base.runs
            .push(run_with("roll", 100, &[("prune", 20), ("check", 80)], 1000));
        // Phase list changed.
        let mut renamed = FigureReport::new("f");
        renamed
            .runs
            .push(run_with("roll", 100, &[("prune", 20)], 1000));
        assert!(!diff_runs(&base, &renamed, &RunDiffOptions::default()).is_empty());
        // Run for a different dataset: both missing and extra.
        let mut other = FigureReport::new("f");
        other.runs.push(run_with(
            "other",
            100,
            &[("prune", 20), ("check", 80)],
            1000,
        ));
        let diffs = diff_runs(&base, &other, &RunDiffOptions::default());
        assert_eq!(diffs.len(), 2, "{diffs:?}");
    }

    #[test]
    fn diff_figures_catches_shape_changes() {
        let mut a = FigureReport::new("f");
        a.table = Some(TableData {
            header: vec!["x".into()],
            rows: vec![vec!["1".into()]],
        });
        let mut b = a.clone();
        b.table.as_mut().unwrap().rows.push(vec!["2".into()]);
        assert!(!diff_figures(&a, &b, 0.05).is_empty());
        let mut c = a.clone();
        c.table.as_mut().unwrap().header[0] = "y".into();
        assert!(!diff_figures(&a, &c, 0.05).is_empty());
    }
}

pub mod compare;
