//! # ppscan-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6). Each experiment is a binary under `src/bin/`; run
//! them with `cargo run --release -p ppscan-bench --bin <name>`, or all
//! of them with `--bin run_all`. `EXPERIMENTS.md` records the outputs
//! next to the paper's numbers.
//!
//! Common flags (all binaries):
//!
//! * `--scale <f>` — dataset scale factor (default varies per binary;
//!   1.0 ≈ 10⁵–10⁶ edges per dataset). Use bigger scales on bigger
//!   machines.
//! * `--csv` — emit machine-readable CSV after the human-readable table.
//! * `--mu <n>`, `--eps <a,b,c>` — parameter overrides.
//! * `--threads <a,b,c>` — thread counts (scalability experiments).
//! * `--quick` — reduced parameter grid for smoke testing.
//! * `--report <path.json>` — write the figure's machine-readable
//!   [`FigureReport`] (context, rendered table, per-run `RunReport`s)
//!   alongside the printed output. `run_all --report-dir <dir>` fans
//!   this out to one report per figure; `report_check` validates the
//!   files and diffs them against committed baselines.
//!
//! The harness measures **in-memory processing time** exactly as the
//! paper does: graph generation/loading is excluded; each measurement is
//! the best of [`RUNS`] runs ("we repeat each execution three times and
//! report the best run").

use ppscan_core::params::ScanParams;
use ppscan_graph::datasets::Dataset;
use ppscan_obs::json::Json;
use ppscan_obs::report::TableData;
use ppscan_obs::FigureReport;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Measurement repetitions; the paper reports the best of three.
pub const RUNS: usize = 3;

/// Parsed common CLI flags.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Emit CSV rows after the table.
    pub csv: bool,
    /// ε values to sweep.
    pub eps_list: Vec<f64>,
    /// µ value (µ sweeps use their own list).
    pub mu: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Datasets to run on.
    pub datasets: Vec<Dataset>,
    /// Reduced grid for smoke tests.
    pub quick: bool,
    /// Write the figure's machine-readable [`FigureReport`] here.
    pub report: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: 1.0,
            csv: false,
            eps_list: vec![0.2, 0.4, 0.6, 0.8],
            mu: 5,
            threads: vec![1, 2, 4, 8],
            datasets: Dataset::TABLE1.to_vec(),
            quick: false,
            report: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => out.scale = value("--scale").parse().expect("bad --scale"),
                "--csv" => out.csv = true,
                "--quick" => out.quick = true,
                "--mu" => out.mu = value("--mu").parse().expect("bad --mu"),
                "--eps" => {
                    out.eps_list = value("--eps")
                        .split(',')
                        .map(|s| s.parse().expect("bad --eps"))
                        .collect();
                }
                "--threads" => {
                    out.threads = value("--threads")
                        .split(',')
                        .map(|s| s.parse().expect("bad --threads"))
                        .collect();
                }
                "--datasets" => {
                    out.datasets = value("--datasets")
                        .split(',')
                        .map(|s| {
                            Dataset::parse(s).unwrap_or_else(|| {
                                eprintln!("unknown dataset {s}");
                                std::process::exit(2);
                            })
                        })
                        .collect();
                }
                "--report" => out.report = Some(PathBuf::from(value("--report"))),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale <f> --csv --quick --mu <n> --eps <a,b,..> \
                         --threads <a,b,..> --datasets <d1,d2,..> --report <path.json>"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other} (see --help)");
                    std::process::exit(2);
                }
            }
        }
        if out.quick {
            out.scale = out.scale.min(0.1);
            out.eps_list.truncate(2);
            out.threads.truncate(2);
        }
        out
    }

    /// `ScanParams` for one ε of the sweep.
    pub fn params(&self, eps: f64) -> ScanParams {
        ScanParams::new(eps, self.mu)
    }
}

/// Best-of-[`RUNS`] wall-clock measurement of `f` (the paper's
/// methodology). Returns the best duration and the last result.
pub fn best_of<R>(mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed());
        out = Some(r);
    }
    (best, out.unwrap())
}

/// Seconds with 3 decimals for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A simple aligned-text table that can also replay itself as CSV.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table as report data, exactly as printed.
    pub fn to_data(&self) -> TableData {
        TableData {
            header: self.header.clone(),
            rows: self.rows.clone(),
        }
    }

    /// Prints the aligned table, and CSV when `csv` is set.
    pub fn print(&self, csv: bool) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        if csv {
            println!("\n# CSV");
            println!("{}", self.header.join(","));
            for row in &self.rows {
                println!("{}", row.join(","));
            }
        }
    }
}

/// A [`FigureReport`] skeleton for one bench binary: the figure name
/// plus the harness-flag context every run of the figure shares.
pub fn figure_report(figure: &str, args: &HarnessArgs) -> FigureReport {
    let mut r = FigureReport::new(figure);
    r.context.push(("scale".into(), Json::Num(args.scale)));
    r.context
        .push(("mu".into(), Json::from_u64(args.mu as u64)));
    r.context.push((
        "eps".into(),
        Json::Arr(args.eps_list.iter().map(|&e| Json::Num(e)).collect()),
    ));
    r.context.push((
        "threads".into(),
        Json::Arr(
            args.threads
                .iter()
                .map(|&t| Json::from_u64(t as u64))
                .collect(),
        ),
    ));
    r.context.push((
        "datasets".into(),
        Json::Arr(
            args.datasets
                .iter()
                .map(|d| Json::Str(d.name().to_string()))
                .collect(),
        ),
    ));
    r.context.push(("quick".into(), Json::Bool(args.quick)));
    r
}

/// Attaches the rendered table to `report` and writes it to
/// `--report <path>` when the flag was given (no-op otherwise). Exits
/// non-zero if the file cannot be written — a missing report must fail
/// loudly, CI uploads it as an artifact.
pub fn emit_report(args: &HarnessArgs, mut report: FigureReport, table: &Table) {
    report.table = Some(table.to_data());
    let Some(path) = &args.report else { return };
    if let Err(e) = report.write_to_file(path) {
        eprintln!("could not write report {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("report written to {}", path.display());
}

/// Diffs two figure reports cell by cell. Cells that parse as numbers on
/// both sides compare within relative tolerance `tol` (and absolute
/// tolerance `tol` near zero); everything else must match exactly. Wall
/// times and counters inside `runs` are machine-dependent and are *not*
/// compared — the rendered table is the regression surface. Returns
/// human-readable mismatch descriptions (empty = match).
pub fn diff_figures(baseline: &FigureReport, got: &FigureReport, tol: f64) -> Vec<String> {
    let mut diffs = Vec::new();
    if baseline.figure != got.figure {
        diffs.push(format!(
            "figure name: baseline {:?}, got {:?}",
            baseline.figure, got.figure
        ));
    }
    let (Some(base_t), Some(got_t)) = (&baseline.table, &got.table) else {
        if baseline.table.is_some() != got.table.is_some() {
            diffs.push("one report has a table, the other does not".into());
        }
        return diffs;
    };
    if base_t.header != got_t.header {
        diffs.push(format!(
            "table header: baseline {:?}, got {:?}",
            base_t.header, got_t.header
        ));
        return diffs;
    }
    if base_t.rows.len() != got_t.rows.len() {
        diffs.push(format!(
            "row count: baseline {}, got {}",
            base_t.rows.len(),
            got_t.rows.len()
        ));
        return diffs;
    }
    for (i, (br, gr)) in base_t.rows.iter().zip(&got_t.rows).enumerate() {
        for ((bc, gc), col) in br.iter().zip(gr).zip(&base_t.header) {
            let close = match (bc.parse::<f64>(), gc.parse::<f64>()) {
                (Ok(b), Ok(g)) => (b - g).abs() <= tol * b.abs().max(1.0),
                _ => bc == gc,
            };
            if !close {
                diffs.push(format!(
                    "row {i} column {col:?}: baseline {bc:?}, got {gc:?}"
                ));
            }
        }
    }
    diffs
}

/// Generates the requested datasets once, with progress logging.
pub fn load_datasets(args: &HarnessArgs) -> Vec<(Dataset, ppscan_graph::CsrGraph)> {
    args.datasets
        .iter()
        .map(|&d| {
            eprint!("generating {} (scale {}) … ", d.name(), args.scale);
            let t0 = Instant::now();
            let g = d.generate_scaled(args.scale);
            eprintln!(
                "{} vertices, {} edges ({:?})",
                g.num_vertices(),
                g.num_edges(),
                t0.elapsed()
            );
            (d, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_and_aligns() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(true); // smoke: must not panic
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn best_of_returns_result() {
        let (d, r) = best_of(|| 41 + 1);
        assert_eq!(r, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn figure_report_carries_table_and_context() {
        let args = HarnessArgs::default();
        let mut t = Table::new(&["dataset", "time"]);
        t.row(vec!["orkut-s".into(), "1.5".into()]);
        let mut r = figure_report("fig_test", &args);
        r.table = Some(t.to_data());
        let back = FigureReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.figure, "fig_test");
        assert_eq!(back.table.unwrap().rows[0][0], "orkut-s");
        assert!(back.context.iter().any(|(k, _)| k == "scale"));
    }

    #[test]
    fn diff_figures_tolerates_numeric_noise_only() {
        let mk = |cell: &str| {
            let mut r = FigureReport::new("f");
            r.table = Some(TableData {
                header: vec!["d".into(), "t".into()],
                rows: vec![vec!["orkut-s".into(), cell.into()]],
            });
            r
        };
        assert!(diff_figures(&mk("1.00"), &mk("1.04"), 0.05).is_empty());
        let diffs = diff_figures(&mk("1.00"), &mk("1.10"), 0.05);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        // Non-numeric cells must match exactly.
        assert!(!diff_figures(&mk("TLE"), &mk("1.0"), 0.05).is_empty());
        assert!(diff_figures(&mk("TLE"), &mk("TLE"), 0.05).is_empty());
    }

    #[test]
    fn diff_figures_catches_shape_changes() {
        let mut a = FigureReport::new("f");
        a.table = Some(TableData {
            header: vec!["x".into()],
            rows: vec![vec!["1".into()]],
        });
        let mut b = a.clone();
        b.table.as_mut().unwrap().rows.push(vec!["2".into()]);
        assert!(!diff_figures(&a, &b, 0.05).is_empty());
        let mut c = a.clone();
        c.table.as_mut().unwrap().header[0] = "y".into();
        assert!(!diff_figures(&a, &c, 0.05).is_empty());
    }
}

pub mod compare;
