//! The checked scenarios: small bounded workloads over the *real*
//! protocol code (`ConcurrentUnionFind` / `SimStore` instantiated on the
//! model substrates), each with a quiescent correctness check evaluated
//! on every explored schedule.
//!
//! The catalog covers the interleavings the paper argues about
//! informally:
//!
//! * union races on a shared root and 3-thread union chains (§6's
//!   wait-free union-find; at most one `true` per merge, deterministic
//!   final partition, min-id roots),
//! * `find_root` path halving racing a concurrent union (the forest
//!   invariant `parent[x] <= x` under every interleaving),
//! * similarity-label publish/consume and the two-phase
//!   counting/consolidation loop of `check_core_vertex` (§4.2.2's
//!   consolidation window; Theorem 4.1's pending-slot invariant),
//! * canonical-labels agreement with the sequential union-find.
//!
//! Two additional entries carry *intentionally seeded* bugs — a
//! check-then-store union (what the `Relaxed` root re-check would
//! license if the CAS's atomic re-read were removed) and a settle loop
//! missing its recompute arm (the pre-hardening consolidation-window
//! bug) — and are expected to produce violations; tests assert the
//! checker catches both.

use crate::atomic::{ModelAtomicU32, ModelAtomicU8};
use crate::runtime::{explore, fingerprint, Config, Outcome, RunSpec};
use ppscan_core::simstore::SimStore;
use ppscan_intersect::Similarity;
use ppscan_unionfind::substrate::{AtomicCellU32, AtomicCellU8};
use ppscan_unionfind::ConcurrentUnionFind;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A named scenario in the catalog.
pub struct Scenario {
    /// Stable name (used in reports and the `check` binary).
    pub name: &'static str,
    /// One-line description of what is being checked.
    pub what: &'static str,
    /// Whether this scenario carries a seeded bug and must produce a
    /// violation (detection demo) rather than pass.
    pub expect_violation: bool,
    /// Explores the scenario under `cfg`.
    pub run: fn(&Config) -> Outcome,
}

/// The full scenario catalog, in documentation order.
pub fn catalog() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "union-race-2t",
            what: "2 threads race 4 unions over a shared root; exactly-once merges",
            expect_violation: false,
            run: union_race_2t,
        },
        Scenario {
            name: "union-chain-3t",
            what: "3 threads union a chain; final partition is schedule-independent",
            expect_violation: false,
            run: union_chain_3t,
        },
        Scenario {
            name: "find-during-union",
            what: "path-halving find races a union; forest invariant holds throughout",
            expect_violation: false,
            run: find_during_union,
        },
        Scenario {
            name: "simstore-publish",
            what: "label publish/consume; consumers always observe Unknown or truth",
            expect_violation: false,
            run: simstore_publish,
        },
        Scenario {
            name: "pending-slot-invariant",
            what: "Theorem 4.1: two-phase counting counts each slot exactly once",
            expect_violation: false,
            run: pending_slot_invariant,
        },
        Scenario {
            name: "canonical-labels",
            what: "concurrent unions agree with the sequential union-find",
            expect_violation: false,
            run: canonical_labels_agreement,
        },
        Scenario {
            name: "seeded-weak-cas-bug",
            what: "SEEDED BUG: union by check-then-store loses a merge",
            expect_violation: true,
            run: seeded_weak_cas_bug,
        },
        Scenario {
            name: "seeded-settle-skip-bug",
            what: "SEEDED BUG: settle loop without recompute arm undercounts",
            expect_violation: true,
            run: seeded_settle_skip_bug,
        },
    ]
}

type ModelUf = ConcurrentUnionFind<ModelAtomicU32>;
type ModelSim = SimStore<ModelAtomicU8>;

/// Shared check for union-find scenarios: the final partition must match
/// the sequential union-find over the same pair multiset, the forest
/// invariant must hold, and the number of `true` union returns must
/// equal the number of genuine merges (exactly-once winners).
fn check_uf(uf: &ModelUf, pairs: &[(u32, u32)], wins: &[u64]) -> Result<u64, String> {
    uf.validate_forest()
        .map_err(|u| format!("forest invariant violated at vertex {u}"))?;
    let n = uf.len();
    let mut seq = ppscan_unionfind::UnionFind::new(n);
    for &(u, v) in pairs {
        seq.union(u, v);
    }
    let labels = uf.canonical_labels();
    if labels != seq.canonical_labels() {
        return Err(format!(
            "labels {labels:?} != sequential {:?}",
            seq.canonical_labels()
        ));
    }
    let merges = n - uf.num_sets();
    let true_returns: u64 = wins.iter().sum();
    if true_returns != merges as u64 {
        return Err(format!(
            "{true_returns} union() calls returned true but {merges} merges happened"
        ));
    }
    let mut parts: Vec<u64> = labels.iter().map(|&l| l as u64).collect();
    parts.extend_from_slice(wins);
    Ok(fingerprint(&parts))
}

/// 2 threads, 4 unions over `{0,1,2,3}` contending on shared roots. The
/// schedule-count acceptance test runs this with `por: false` and
/// asserts ≥ 1,000 distinct schedules are enumerated exhaustively.
pub fn union_race_2t(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 4] = [(2, 0), (3, 1), (2, 1), (3, 0)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(4));
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(2, 0) as u64 + a.union(3, 1) as u64),
                Box::new(move || b.union(2, 1) as u64 + b.union(3, 0) as u64),
            ],
            check: Box::new(move |wins| check_uf(&c, &PAIRS, wins)),
        }
    })
}

/// 3 threads each performing one union of a chain `3-2-1-0`: every union
/// merges two genuinely distinct sets, so all three must return `true`
/// and the final partition is the single set rooted at 0.
pub fn union_chain_3t(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 3] = [(1, 0), (2, 1), (3, 2)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(4));
        let (a, b, c, d) = (Arc::clone(&uf), Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(1, 0) as u64),
                Box::new(move || b.union(2, 1) as u64),
                Box::new(move || c.union(3, 2) as u64),
            ],
            check: Box::new(move |wins| check_uf(&d, &PAIRS, wins)),
        }
    })
}

/// Setup pre-links the chain `3 -> 2 -> 1`; one thread unions `1` into
/// `0` while another runs `find_root(3)`, whose path-halving CASes race
/// the link installation. The find must return a vertex that was a root
/// of 3's set at some point during the run (1 before the union lands, 0
/// after), and the forest invariant must hold in the final state.
pub fn find_during_union(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 3] = [(3, 2), (2, 1), (1, 0)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(4));
        uf.union(3, 2);
        uf.union(2, 1);
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(1, 0) as u64),
                Box::new(move || b.find_root(3) as u64),
            ],
            check: Box::new(move |results| {
                let found = results[1];
                if found > 1 {
                    return Err(format!(
                        "find_root(3) returned {found}, never a root of 3's set"
                    ));
                }
                // The union thread's win plus the two setup unions.
                let wins = [results[0], 2];
                check_uf(&c, &PAIRS, &wins)
            }),
        }
    })
}

/// One thread publishes similarity labels; a consumer reads each slot
/// and recomputes (then publishes) on `Unknown`. Every value a consumer
/// acts on must equal the ground truth — labels are single-transition
/// (Theorem 4.1), so a stale read can only be `Unknown`, never a wrong
/// verdict.
pub fn simstore_publish(cfg: &Config) -> Outcome {
    const TRUTH: [Similarity; 2] = [Similarity::Sim, Similarity::NSim];
    explore(cfg, || {
        let sim: Arc<ModelSim> = Arc::new(SimStore::new(2));
        let (a, b, c) = (Arc::clone(&sim), Arc::clone(&sim), sim);
        RunSpec {
            threads: vec![
                Box::new(move || {
                    a.set(0, TRUTH[0]);
                    a.set(1, TRUTH[1]);
                    0
                }),
                Box::new(move || consume(&b, &TRUTH)),
            ],
            check: Box::new(move |results| {
                let expect = pack_verdicts(&TRUTH);
                if results[1] != expect {
                    return Err(format!(
                        "consumer acted on verdicts {:#x}, truth {:#x}",
                        results[1], expect
                    ));
                }
                for (eo, &t) in TRUTH.iter().enumerate() {
                    if c.get(eo) != t {
                        return Err(format!("slot {eo} ended {:?}, truth {t:?}", c.get(eo)));
                    }
                }
                Ok(fingerprint(&[results[0], results[1]]))
            }),
        }
    })
}

/// Reads every slot; on `Unknown`, recomputes the ground truth and
/// publishes it (the fallback path of §4.2.2). Returns the verdicts
/// acted on, packed one byte per slot.
fn consume<A: AtomicCellU8>(sim: &SimStore<A>, truth: &[Similarity]) -> u64 {
    let mut packed = 0u64;
    for (eo, &t) in truth.iter().enumerate() {
        let v = match sim.get(eo) {
            Similarity::Unknown => {
                sim.set(eo, t);
                t
            }
            published => published,
        };
        packed |= (v as u64) << (8 * eo);
    }
    packed
}

fn pack_verdicts(truth: &[Similarity]) -> u64 {
    truth
        .iter()
        .enumerate()
        .fold(0u64, |acc, (eo, &t)| acc | ((t as u64) << (8 * eo)))
}

/// The two-phase counting loop of `check_core_vertex` (counting pass →
/// pending list → settle pass), reduced to one slot. `recompute` selects
/// the settle arm for still-`Unknown` slots: the real protocol
/// recomputes and publishes; the seeded bug skips (assumes not-similar).
fn two_phase_count<A: AtomicCellU8>(
    sim: &SimStore<A>,
    slot: usize,
    truth: Similarity,
    recompute: bool,
) -> u64 {
    let mut sd = 0u64;
    let mut pending = Vec::new();
    // Counting pass: consume published labels, defer Unknown slots.
    match sim.get(slot) {
        Similarity::Sim => sd += 1,
        Similarity::NSim => {}
        Similarity::Unknown => pending.push(slot),
    }
    // Settle pass: re-read each pending slot (the consolidation window —
    // a label published since the counting pass must be counted).
    for eo in pending {
        match sim.get(eo) {
            Similarity::Sim => sd += 1,
            Similarity::NSim => {}
            Similarity::Unknown => {
                if recompute {
                    sim.set(eo, truth);
                    if truth == Similarity::Sim {
                        sd += 1;
                    }
                }
            }
        }
    }
    sd
}

/// Theorem 4.1's pending-slot invariant, exhaustively: whatever instant
/// the racing publisher's store lands — before the counting read, inside
/// the consolidation window, or never before the settle read — the
/// two-phase loop counts the slot exactly once. This re-expresses the
/// PR-1 regression test `label_published_in_consolidation_window_is_
/// counted` as a checked scenario over all interleavings.
pub fn pending_slot_invariant(cfg: &Config) -> Outcome {
    explore(cfg, || {
        let sim: Arc<ModelSim> = Arc::new(SimStore::new(1));
        let (a, b, c) = (Arc::clone(&sim), Arc::clone(&sim), sim);
        RunSpec {
            threads: vec![
                Box::new(move || {
                    a.set(0, Similarity::Sim);
                    0
                }),
                Box::new(move || two_phase_count(&b, 0, Similarity::Sim, true)),
            ],
            check: Box::new(move |results| {
                if results[1] != 1 {
                    return Err(format!(
                        "similar degree counted {} times, expected exactly 1",
                        results[1]
                    ));
                }
                if c.get(0) != Similarity::Sim {
                    return Err(format!("slot ended {:?}", c.get(0)));
                }
                Ok(fingerprint(&[results[1]]))
            }),
        }
    })
}

/// Two threads issue overlapping unions with swapped argument order; the
/// final canonical labeling must match the sequential reference and
/// exactly one thread may win each contested merge.
pub fn canonical_labels_agreement(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 4] = [(1, 3), (4, 2), (3, 1), (2, 4)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(5));
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(1, 3) as u64 + a.union(4, 2) as u64),
                Box::new(move || b.union(3, 1) as u64 + b.union(2, 4) as u64),
            ],
            check: Box::new(move |wins| check_uf(&c, &PAIRS, wins)),
        }
    })
}

/// A union-find whose `union` installs links by *check-then-store*
/// instead of compare-exchange — exactly the protocol the `Relaxed` root
/// re-check in `find_root` would license if the CAS's atomic re-read
/// were not load-bearing (DESIGN.md §9.3's prime-suspect analysis). The
/// checker must find the lost-merge interleaving.
struct CheckThenStoreUf<A: AtomicCellU32> {
    parent: Vec<A>,
}

impl<A: AtomicCellU32> CheckThenStoreUf<A> {
    fn new(n: u32) -> Self {
        CheckThenStoreUf {
            parent: (0..n).map(A::new).collect(),
        }
    }

    fn find_root(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            x = p;
        }
    }

    fn union(&self, u: u32, v: u32) -> bool {
        loop {
            let ru = self.find_root(u);
            let rv = self.find_root(v);
            if ru == rv {
                return false;
            }
            let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
            // SEEDED BUG: the root re-check and the link installation
            // are two separate operations, so a concurrent union can
            // slip between them and its link is silently overwritten.
            if self.parent[hi as usize].load(Ordering::Relaxed) == hi {
                self.parent[hi as usize].store(lo, Ordering::Relaxed);
                return true;
            }
        }
    }
}

/// Detection demo: two unions race on the shared root `2`; under the
/// check-then-store protocol some interleaving loses a merge (both
/// callers return `true` but only one link survives), splitting the
/// final partition. Expected outcome: [`Outcome::Violation`].
pub fn seeded_weak_cas_bug(cfg: &Config) -> Outcome {
    explore(cfg, || {
        let uf: Arc<CheckThenStoreUf<ModelAtomicU32>> = Arc::new(CheckThenStoreUf::new(3));
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(2, 0) as u64),
                Box::new(move || b.union(2, 1) as u64),
            ],
            check: Box::new(move |wins| {
                let labels: Vec<u32> = (0..3).map(|v| c.find_root(v)).collect();
                if labels != vec![0, 0, 0] {
                    return Err(format!("lost merge: final labels {labels:?}"));
                }
                let true_returns: u64 = wins.iter().sum();
                if true_returns != 2 {
                    return Err(format!("{true_returns} winners for 2 merges"));
                }
                Ok(fingerprint(&[
                    labels[0] as u64,
                    labels[1] as u64,
                    labels[2] as u64,
                ]))
            }),
        }
    })
}

/// Detection demo: the settle pass without the recompute arm — the
/// pre-hardening consolidation-window bug. A schedule where the
/// publisher lands after the settle re-read undercounts the similar
/// degree. Expected outcome: [`Outcome::Violation`].
pub fn seeded_settle_skip_bug(cfg: &Config) -> Outcome {
    explore(cfg, || {
        let sim: Arc<ModelSim> = Arc::new(SimStore::new(1));
        let (a, b) = (Arc::clone(&sim), sim);
        RunSpec {
            threads: vec![
                Box::new(move || {
                    a.set(0, Similarity::Sim);
                    0
                }),
                Box::new(move || two_phase_count(&b, 0, Similarity::Sim, false)),
            ],
            check: Box::new(move |results| {
                if results[1] != 1 {
                    return Err(format!(
                        "similar degree counted {} times, expected exactly 1",
                        results[1]
                    ));
                }
                Ok(fingerprint(&[results[1]]))
            }),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_budget(max_schedules: u64) -> Config {
        Config {
            max_schedules,
            ..Config::default()
        }
    }

    /// Acceptance criterion: with reduction off, the 2-thread union race
    /// exhaustively enumerates at least 1,000 distinct schedules.
    #[test]
    fn union_race_enumerates_at_least_1000_schedules() {
        let cfg = Config {
            por: false,
            ..cfg_budget(2_000_000)
        };
        match union_race_2t(&cfg) {
            Outcome::Pass(stats) => {
                assert!(stats.exhausted, "exploration must complete, not hit budget");
                assert!(
                    stats.schedules >= 1_000,
                    "only {} schedules enumerated",
                    stats.schedules
                );
            }
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("unexpected violation: {message}\n{}", schedule.join("\n"))
            }
        }
    }

    /// Sleep-set reduction must not change what is observable: the set
    /// of distinct final states with POR on equals the set with POR off.
    #[test]
    fn por_preserves_final_state_set() {
        let full = Config {
            por: false,
            ..cfg_budget(2_000_000)
        };
        let reduced = cfg_budget(2_000_000);
        let s_full = match union_race_2t(&full) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        let s_red = match union_race_2t(&reduced) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        assert!(s_full.exhausted && s_red.exhausted);
        assert_eq!(s_full.final_states, s_red.final_states);
        assert!(
            s_red.schedules <= s_full.schedules,
            "reduction should not explore more schedules"
        );
    }

    #[test]
    fn union_chain_3t_passes() {
        let cfg = Config {
            preemption_bound: Some(3),
            ..cfg_budget(500_000)
        };
        let out = union_chain_3t(&cfg);
        assert!(out.is_pass(), "{out:?}");
        assert!(out.stats().schedules > 0);
    }

    #[test]
    fn find_during_union_passes_exhaustively() {
        let out = find_during_union(&cfg_budget(2_000_000));
        match out {
            Outcome::Pass(s) => assert!(s.exhausted && s.schedules > 0),
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("{message}\n{}", schedule.join("\n"))
            }
        }
    }

    #[test]
    fn simstore_publish_passes_exhaustively() {
        let out = simstore_publish(&cfg_budget(2_000_000));
        match out {
            Outcome::Pass(s) => assert!(s.exhausted && s.schedules > 0),
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("{message}\n{}", schedule.join("\n"))
            }
        }
    }

    /// The exhaustive form of the PR-1 consolidation-window regression:
    /// the publisher store is placed at *every* point relative to the
    /// two-phase loop, including inside the window, and the count is
    /// always exactly one.
    #[test]
    fn pending_slot_invariant_passes_exhaustively() {
        let out = pending_slot_invariant(&cfg_budget(2_000_000));
        match out {
            Outcome::Pass(s) => {
                assert!(s.exhausted && s.schedules > 0);
                // All schedules agree on the count: one final state.
                assert_eq!(s.final_states.len(), 1);
            }
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("{message}\n{}", schedule.join("\n"))
            }
        }
    }

    #[test]
    fn canonical_labels_agreement_passes() {
        let out = canonical_labels_agreement(&cfg_budget(2_000_000));
        assert!(out.is_pass(), "{out:?}");
        assert!(out.stats().schedules > 0);
    }

    /// Acceptance criterion: the seeded check-then-store weakening of
    /// the union CAS is *caught* — the checker exhibits the lost-merge
    /// interleaving with a concrete replayable schedule.
    #[test]
    fn seeded_weak_cas_bug_is_detected() {
        match seeded_weak_cas_bug(&cfg_budget(2_000_000)) {
            Outcome::Violation {
                schedule, message, ..
            } => {
                assert!(
                    message.contains("lost merge") || message.contains("winners"),
                    "unexpected violation kind: {message}"
                );
                assert!(!schedule.is_empty(), "violation must carry its schedule");
            }
            Outcome::Pass(s) => panic!("seeded bug not detected in {} schedules", s.schedules),
        }
    }

    /// The pre-hardening settle-loop bug (missing recompute arm) is
    /// caught: some schedule leaves the slot unpublished at settle time
    /// and the count drops to zero.
    #[test]
    fn seeded_settle_skip_bug_is_detected() {
        match seeded_settle_skip_bug(&cfg_budget(2_000_000)) {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("counted 0"), "unexpected: {message}");
            }
            Outcome::Pass(s) => panic!("seeded bug not detected in {} schedules", s.schedules),
        }
    }

    /// Single-thread scenarios have exactly one schedule, and the
    /// modeled substrate must agree with the real substrate on it.
    #[test]
    fn modeled_substrate_agrees_with_real_on_sequential_scenarios() {
        // Real substrate, plain execution.
        let real: ConcurrentUnionFind = ConcurrentUnionFind::new(6);
        let real_wins = [real.union(4, 2), real.union(2, 5), real.union(5, 4)]
            .iter()
            .filter(|&&w| w)
            .count() as u64;
        let real_labels = real.canonical_labels();

        // Modeled substrate, one logical thread under the explorer.
        let out = explore(&cfg_budget(1_000), || {
            let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(6));
            let (a, b) = (Arc::clone(&uf), uf);
            RunSpec {
                threads: vec![Box::new(move || {
                    a.union(4, 2) as u64 + a.union(2, 5) as u64 + a.union(5, 4) as u64
                })],
                check: Box::new(move |wins| {
                    let mut parts: Vec<u64> =
                        b.canonical_labels().iter().map(|&l| l as u64).collect();
                    parts.push(wins[0]);
                    Ok(fingerprint(&parts))
                }),
            }
        });
        let stats = match out {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        assert!(stats.exhausted);
        assert_eq!(
            stats.schedules, 1,
            "a single-thread scenario has exactly one schedule"
        );
        let mut parts: Vec<u64> = real_labels.iter().map(|&l| l as u64).collect();
        parts.push(real_wins);
        assert_eq!(
            stats.final_states.iter().copied().collect::<Vec<u64>>(),
            vec![fingerprint(&parts)],
            "modeled and real substrates disagree on a sequential scenario"
        );
    }

    /// The preemption bound restricts, never corrupts: bounded
    /// exploration finds a subset of the unbounded final states.
    #[test]
    fn preemption_bound_explores_subset_of_final_states() {
        let unbounded = match union_race_2t(&cfg_budget(2_000_000)) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        let bounded_cfg = Config {
            preemption_bound: Some(1),
            ..cfg_budget(2_000_000)
        };
        let bounded = match union_race_2t(&bounded_cfg) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        assert!(bounded.schedules < unbounded.schedules);
        assert!(bounded.final_states.is_subset(&unbounded.final_states));
    }
}
