//! The checked scenarios: small bounded workloads over the *real*
//! protocol code (`ConcurrentUnionFind` / `SimStore` instantiated on the
//! model substrates), each with a quiescent correctness check evaluated
//! on every explored schedule.
//!
//! The catalog covers the interleavings the paper argues about
//! informally:
//!
//! * union races on a shared root and 3-thread union chains (§6's
//!   wait-free union-find; at most one `true` per merge, deterministic
//!   final partition, min-id roots),
//! * `find_root` path halving racing a concurrent union (the forest
//!   invariant `parent[x] <= x` under every interleaving),
//! * similarity-label publish/consume and the two-phase
//!   counting/consolidation loop of `check_core_vertex` (§4.2.2's
//!   consolidation window; Theorem 4.1's pending-slot invariant),
//! * canonical-labels agreement with the sequential union-find,
//! * the serving path's snapshot-cell pin/publish/retire/reclaim
//!   protocol (no reclamation under an active pin),
//! * a bounded 2-thread run of the *real* pipeline under
//!   [`ExecutionStrategy`](ppscan_sched::ExecutionStrategy)`::Modeled`
//!   (oracle-permuted dispatch order; sequential-equivalent output).
//!
//! Three additional entries carry *intentionally seeded* bugs — a
//! check-then-store union (what the `Relaxed` root re-check would
//! license if the CAS's atomic re-read were removed), a settle loop
//! missing its recompute arm (the pre-hardening consolidation-window
//! bug), and a snapshot cell whose epoch bump moved before the pointer
//! swap (reclaims under a pinned reader) — and are expected to produce
//! violations; tests assert the checker catches all three.

use crate::atomic::{ModelAtomicU32, ModelAtomicU8};
use crate::runtime::{explore, fingerprint, Config, Outcome, RunSpec};
use ppscan_core::simstore::SimStore;
use ppscan_intersect::Similarity;
use ppscan_unionfind::substrate::{AtomicCellU32, AtomicCellU8};
use ppscan_unionfind::ConcurrentUnionFind;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A named scenario in the catalog.
pub struct Scenario {
    /// Stable name (used in reports and the `check` binary).
    pub name: &'static str,
    /// One-line description of what is being checked.
    pub what: &'static str,
    /// Whether this scenario carries a seeded bug and must produce a
    /// violation (detection demo) rather than pass.
    pub expect_violation: bool,
    /// Explores the scenario under `cfg`.
    pub run: fn(&Config) -> Outcome,
}

/// The full scenario catalog, in documentation order.
pub fn catalog() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "union-race-2t",
            what: "2 threads race 4 unions over a shared root; exactly-once merges",
            expect_violation: false,
            run: union_race_2t,
        },
        Scenario {
            name: "union-chain-3t",
            what: "3 threads union a chain; final partition is schedule-independent",
            expect_violation: false,
            run: union_chain_3t,
        },
        Scenario {
            name: "find-during-union",
            what: "path-halving find races a union; forest invariant holds throughout",
            expect_violation: false,
            run: find_during_union,
        },
        Scenario {
            name: "simstore-publish",
            what: "label publish/consume; consumers always observe Unknown or truth",
            expect_violation: false,
            run: simstore_publish,
        },
        Scenario {
            name: "pending-slot-invariant",
            what: "Theorem 4.1: two-phase counting counts each slot exactly once",
            expect_violation: false,
            run: pending_slot_invariant,
        },
        Scenario {
            name: "canonical-labels",
            what: "concurrent unions agree with the sequential union-find",
            expect_violation: false,
            run: canonical_labels_agreement,
        },
        Scenario {
            name: "snapshot-pin-publish",
            what: "snapshot cell pin/publish/retire; no reclaim under a pin",
            expect_violation: false,
            run: snapshot_pin_publish,
        },
        Scenario {
            name: "pipeline-modeled-2t",
            what: "real ppscan() under Modeled, 2 threads; oracle-seed sweep",
            expect_violation: false,
            run: pipeline_modeled_2t,
        },
        Scenario {
            name: "seeded-weak-cas-bug",
            what: "SEEDED BUG: union by check-then-store loses a merge",
            expect_violation: true,
            run: seeded_weak_cas_bug,
        },
        Scenario {
            name: "seeded-settle-skip-bug",
            what: "SEEDED BUG: settle loop without recompute arm undercounts",
            expect_violation: true,
            run: seeded_settle_skip_bug,
        },
        Scenario {
            name: "seeded-epoch-bump-elision",
            what: "SEEDED BUG: epoch bump before swap frees under a pinned reader",
            expect_violation: true,
            run: seeded_epoch_bump_elision,
        },
    ]
}

type ModelUf = ConcurrentUnionFind<ModelAtomicU32>;
type ModelSim = SimStore<ModelAtomicU8>;

/// Shared check for union-find scenarios: the final partition must match
/// the sequential union-find over the same pair multiset, the forest
/// invariant must hold, and the number of `true` union returns must
/// equal the number of genuine merges (exactly-once winners).
fn check_uf(uf: &ModelUf, pairs: &[(u32, u32)], wins: &[u64]) -> Result<u64, String> {
    uf.validate_forest()
        .map_err(|u| format!("forest invariant violated at vertex {u}"))?;
    let n = uf.len();
    let mut seq = ppscan_unionfind::UnionFind::new(n);
    for &(u, v) in pairs {
        seq.union(u, v);
    }
    let labels = uf.canonical_labels();
    if labels != seq.canonical_labels() {
        return Err(format!(
            "labels {labels:?} != sequential {:?}",
            seq.canonical_labels()
        ));
    }
    let merges = n - uf.num_sets();
    let true_returns: u64 = wins.iter().sum();
    if true_returns != merges as u64 {
        return Err(format!(
            "{true_returns} union() calls returned true but {merges} merges happened"
        ));
    }
    let mut parts: Vec<u64> = labels.iter().map(|&l| l as u64).collect();
    parts.extend_from_slice(wins);
    Ok(fingerprint(&parts))
}

/// 2 threads, 4 unions over `{0,1,2,3}` contending on shared roots. The
/// schedule-count acceptance test runs this with `por: false` and
/// asserts ≥ 1,000 distinct schedules are enumerated exhaustively.
pub fn union_race_2t(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 4] = [(2, 0), (3, 1), (2, 1), (3, 0)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(4));
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(2, 0) as u64 + a.union(3, 1) as u64),
                Box::new(move || b.union(2, 1) as u64 + b.union(3, 0) as u64),
            ],
            check: Box::new(move |wins| check_uf(&c, &PAIRS, wins)),
        }
    })
}

/// 3 threads each performing one union of a chain `3-2-1-0`: every union
/// merges two genuinely distinct sets, so all three must return `true`
/// and the final partition is the single set rooted at 0.
pub fn union_chain_3t(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 3] = [(1, 0), (2, 1), (3, 2)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(4));
        let (a, b, c, d) = (Arc::clone(&uf), Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(1, 0) as u64),
                Box::new(move || b.union(2, 1) as u64),
                Box::new(move || c.union(3, 2) as u64),
            ],
            check: Box::new(move |wins| check_uf(&d, &PAIRS, wins)),
        }
    })
}

/// Setup pre-links the chain `3 -> 2 -> 1`; one thread unions `1` into
/// `0` while another runs `find_root(3)`, whose path-halving CASes race
/// the link installation. The find must return a vertex that was a root
/// of 3's set at some point during the run (1 before the union lands, 0
/// after), and the forest invariant must hold in the final state.
pub fn find_during_union(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 3] = [(3, 2), (2, 1), (1, 0)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(4));
        uf.union(3, 2);
        uf.union(2, 1);
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(1, 0) as u64),
                Box::new(move || b.find_root(3) as u64),
            ],
            check: Box::new(move |results| {
                let found = results[1];
                if found > 1 {
                    return Err(format!(
                        "find_root(3) returned {found}, never a root of 3's set"
                    ));
                }
                // The union thread's win plus the two setup unions.
                let wins = [results[0], 2];
                check_uf(&c, &PAIRS, &wins)
            }),
        }
    })
}

/// One thread publishes similarity labels; a consumer reads each slot
/// and recomputes (then publishes) on `Unknown`. Every value a consumer
/// acts on must equal the ground truth — labels are single-transition
/// (Theorem 4.1), so a stale read can only be `Unknown`, never a wrong
/// verdict.
pub fn simstore_publish(cfg: &Config) -> Outcome {
    const TRUTH: [Similarity; 2] = [Similarity::Sim, Similarity::NSim];
    explore(cfg, || {
        let sim: Arc<ModelSim> = Arc::new(SimStore::new(2));
        let (a, b, c) = (Arc::clone(&sim), Arc::clone(&sim), sim);
        RunSpec {
            threads: vec![
                Box::new(move || {
                    a.set(0, TRUTH[0]);
                    a.set(1, TRUTH[1]);
                    0
                }),
                Box::new(move || consume(&b, &TRUTH)),
            ],
            check: Box::new(move |results| {
                let expect = pack_verdicts(&TRUTH);
                if results[1] != expect {
                    return Err(format!(
                        "consumer acted on verdicts {:#x}, truth {:#x}",
                        results[1], expect
                    ));
                }
                for (eo, &t) in TRUTH.iter().enumerate() {
                    if c.get(eo) != t {
                        return Err(format!("slot {eo} ended {:?}, truth {t:?}", c.get(eo)));
                    }
                }
                Ok(fingerprint(&[results[0], results[1]]))
            }),
        }
    })
}

/// Reads every slot; on `Unknown`, recomputes the ground truth and
/// publishes it (the fallback path of §4.2.2). Returns the verdicts
/// acted on, packed one byte per slot.
fn consume<A: AtomicCellU8>(sim: &SimStore<A>, truth: &[Similarity]) -> u64 {
    let mut packed = 0u64;
    for (eo, &t) in truth.iter().enumerate() {
        let v = match sim.get(eo) {
            Similarity::Unknown => {
                sim.set(eo, t);
                t
            }
            published => published,
        };
        packed |= (v as u64) << (8 * eo);
    }
    packed
}

fn pack_verdicts(truth: &[Similarity]) -> u64 {
    truth
        .iter()
        .enumerate()
        .fold(0u64, |acc, (eo, &t)| acc | ((t as u64) << (8 * eo)))
}

/// The two-phase counting loop of `check_core_vertex` (counting pass →
/// pending list → settle pass), reduced to one slot. `recompute` selects
/// the settle arm for still-`Unknown` slots: the real protocol
/// recomputes and publishes; the seeded bug skips (assumes not-similar).
fn two_phase_count<A: AtomicCellU8>(
    sim: &SimStore<A>,
    slot: usize,
    truth: Similarity,
    recompute: bool,
) -> u64 {
    let mut sd = 0u64;
    let mut pending = Vec::new();
    // Counting pass: consume published labels, defer Unknown slots.
    match sim.get(slot) {
        Similarity::Sim => sd += 1,
        Similarity::NSim => {}
        Similarity::Unknown => pending.push(slot),
    }
    // Settle pass: re-read each pending slot (the consolidation window —
    // a label published since the counting pass must be counted).
    for eo in pending {
        match sim.get(eo) {
            Similarity::Sim => sd += 1,
            Similarity::NSim => {}
            Similarity::Unknown => {
                if recompute {
                    sim.set(eo, truth);
                    if truth == Similarity::Sim {
                        sd += 1;
                    }
                }
            }
        }
    }
    sd
}

/// Theorem 4.1's pending-slot invariant, exhaustively: whatever instant
/// the racing publisher's store lands — before the counting read, inside
/// the consolidation window, or never before the settle read — the
/// two-phase loop counts the slot exactly once. This re-expresses the
/// PR-1 regression test `label_published_in_consolidation_window_is_
/// counted` as a checked scenario over all interleavings.
pub fn pending_slot_invariant(cfg: &Config) -> Outcome {
    explore(cfg, || {
        let sim: Arc<ModelSim> = Arc::new(SimStore::new(1));
        let (a, b, c) = (Arc::clone(&sim), Arc::clone(&sim), sim);
        RunSpec {
            threads: vec![
                Box::new(move || {
                    a.set(0, Similarity::Sim);
                    0
                }),
                Box::new(move || two_phase_count(&b, 0, Similarity::Sim, true)),
            ],
            check: Box::new(move |results| {
                if results[1] != 1 {
                    return Err(format!(
                        "similar degree counted {} times, expected exactly 1",
                        results[1]
                    ));
                }
                if c.get(0) != Similarity::Sim {
                    return Err(format!("slot ended {:?}", c.get(0)));
                }
                Ok(fingerprint(&[results[1]]))
            }),
        }
    })
}

/// Two threads issue overlapping unions with swapped argument order; the
/// final canonical labeling must match the sequential reference and
/// exactly one thread may win each contested merge.
pub fn canonical_labels_agreement(cfg: &Config) -> Outcome {
    const PAIRS: [(u32, u32); 4] = [(1, 3), (4, 2), (3, 1), (2, 4)];
    explore(cfg, || {
        let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(5));
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(1, 3) as u64 + a.union(4, 2) as u64),
                Box::new(move || b.union(3, 1) as u64 + b.union(2, 4) as u64),
            ],
            check: Box::new(move |wins| check_uf(&c, &PAIRS, wins)),
        }
    })
}

/// A union-find whose `union` installs links by *check-then-store*
/// instead of compare-exchange — exactly the protocol the `Relaxed` root
/// re-check in `find_root` would license if the CAS's atomic re-read
/// were not load-bearing (DESIGN.md §9.3's prime-suspect analysis). The
/// checker must find the lost-merge interleaving.
struct CheckThenStoreUf<A: AtomicCellU32> {
    parent: Vec<A>,
}

impl<A: AtomicCellU32> CheckThenStoreUf<A> {
    fn new(n: u32) -> Self {
        CheckThenStoreUf {
            parent: (0..n).map(A::new).collect(),
        }
    }

    fn find_root(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            x = p;
        }
    }

    fn union(&self, u: u32, v: u32) -> bool {
        loop {
            let ru = self.find_root(u);
            let rv = self.find_root(v);
            if ru == rv {
                return false;
            }
            let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
            // SEEDED BUG: the root re-check and the link installation
            // are two separate operations, so a concurrent union can
            // slip between them and its link is silently overwritten.
            if self.parent[hi as usize].load(Ordering::Relaxed) == hi {
                self.parent[hi as usize].store(lo, Ordering::Relaxed);
                return true;
            }
        }
    }
}

/// Detection demo: two unions race on the shared root `2`; under the
/// check-then-store protocol some interleaving loses a merge (both
/// callers return `true` but only one link survives), splitting the
/// final partition. Expected outcome: [`Outcome::Violation`].
pub fn seeded_weak_cas_bug(cfg: &Config) -> Outcome {
    explore(cfg, || {
        let uf: Arc<CheckThenStoreUf<ModelAtomicU32>> = Arc::new(CheckThenStoreUf::new(3));
        let (a, b, c) = (Arc::clone(&uf), Arc::clone(&uf), uf);
        RunSpec {
            threads: vec![
                Box::new(move || a.union(2, 0) as u64),
                Box::new(move || b.union(2, 1) as u64),
            ],
            check: Box::new(move |wins| {
                let labels: Vec<u32> = (0..3).map(|v| c.find_root(v)).collect();
                if labels != vec![0, 0, 0] {
                    return Err(format!("lost merge: final labels {labels:?}"));
                }
                let true_returns: u64 = wins.iter().sum();
                if true_returns != 2 {
                    return Err(format!("{true_returns} winners for 2 merges"));
                }
                Ok(fingerprint(&[
                    labels[0] as u64,
                    labels[1] as u64,
                    labels[2] as u64,
                ]))
            }),
        }
    })
}

/// Detection demo: the settle pass without the recompute arm — the
/// pre-hardening consolidation-window bug. A schedule where the
/// publisher lands after the settle re-read undercounts the similar
/// degree. Expected outcome: [`Outcome::Violation`].
pub fn seeded_settle_skip_bug(cfg: &Config) -> Outcome {
    explore(cfg, || {
        let sim: Arc<ModelSim> = Arc::new(SimStore::new(1));
        let (a, b) = (Arc::clone(&sim), sim);
        RunSpec {
            threads: vec![
                Box::new(move || {
                    a.set(0, Similarity::Sim);
                    0
                }),
                Box::new(move || two_phase_count(&b, 0, Similarity::Sim, false)),
            ],
            check: Box::new(move |results| {
                if results[1] != 1 {
                    return Err(format!(
                        "similar degree counted {} times, expected exactly 1",
                        results[1]
                    ));
                }
                Ok(fingerprint(&[results[1]]))
            }),
        }
    })
}

/// Model replica of the serving path's `SnapshotCell` (`ppscan-serve`),
/// value identities standing in for heap pointers: a `ptr` cell holding
/// the current value id, the epoch counter, one registered reader slot,
/// and one "freed" flag per value standing in for reclamation. The
/// writer-side retired list stays writer-local (in the real code it is
/// mutex-protected and this scenario has a single writer), so every
/// cross-thread interaction of the protocol — pin vs swap vs bump vs
/// reclaim scan — goes through model atomics and is explored
/// exhaustively.
struct ModelSnapshot {
    /// Current value id (ids are 1-based; 0 is never a value).
    ptr: ModelAtomicU32,
    /// Epoch counter, starts at 1 as in the real cell.
    epoch: ModelAtomicU32,
    /// The single reader's pin slot (0 = idle).
    slot: ModelAtomicU32,
    /// Reclamation flags, indexed by `value_id - 1`; 1 = dropped.
    freed: [ModelAtomicU32; 2],
}

impl ModelSnapshot {
    fn new(initial: u32) -> Self {
        ModelSnapshot {
            ptr: AtomicCellU32::new(initial),
            epoch: AtomicCellU32::new(1),
            slot: AtomicCellU32::new(0),
            freed: [AtomicCellU32::new(0), AtomicCellU32::new(0)],
        }
    }

    /// `fetch_add(1)` over the model substrate (a CAS loop; the epoch
    /// has a single writer here, so it succeeds first try on every
    /// schedule — one RMW event, like the real `fetch_add`).
    fn bump_epoch(&self) -> u32 {
        loop {
            let cur = self.epoch.load(Ordering::SeqCst);
            if self
                .epoch
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return cur;
            }
        }
    }

    /// `SnapshotCell::publish` + `try_reclaim`: swap the pointer, bump
    /// the epoch (the pre-bump value tags the retirement), then scan the
    /// reader slot and drop the old value unless a pin `<= E` protects
    /// it. `bump_before_swap` seeds the ordering bug: the post-swap bump
    /// elided and replaced by a pre-swap bump, which lets a reader pin
    /// `E+1` and still load the *old* value — the reclaim scan then sees
    /// the pin as "new enough" and frees under the reader. Returns 1 if
    /// the old value was reclaimed.
    fn publish(&self, old: u32, new: u32, bump_before_swap: bool) -> u64 {
        let retired_epoch;
        if bump_before_swap {
            retired_epoch = self.bump_epoch();
            let _ = self
                .ptr
                .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst);
        } else {
            let _ = self
                .ptr
                .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst);
            retired_epoch = self.bump_epoch();
        }
        let pin = self.slot.load(Ordering::SeqCst);
        if pin != 0 && pin <= retired_epoch {
            0
        } else {
            self.freed[(old - 1) as usize].store(1, Ordering::SeqCst);
            1
        }
    }

    /// `Reader::pin` + one use + unpin: load the epoch, store it into
    /// the slot, load the pointer, then "dereference" by reading the
    /// pinned value's freed flag (1 = use-after-free). Returns the
    /// value id in the low byte and the freed flag in the next.
    fn pin_read_unpin(&self) -> u64 {
        let e = self.epoch.load(Ordering::SeqCst);
        self.slot.store(e, Ordering::SeqCst);
        let v = self.ptr.load(Ordering::SeqCst);
        let f = self.freed[(v - 1) as usize].load(Ordering::SeqCst);
        self.slot.store(0, Ordering::SeqCst);
        u64::from(v) | (u64::from(f) << 8)
    }
}

fn snapshot_scenario(cfg: &Config, bump_before_swap: bool) -> Outcome {
    explore(cfg, || {
        let cell = Arc::new(ModelSnapshot::new(1));
        let (w, r, c) = (Arc::clone(&cell), Arc::clone(&cell), cell);
        RunSpec {
            threads: vec![
                Box::new(move || w.publish(1, 2, bump_before_swap)),
                Box::new(move || r.pin_read_unpin()),
            ],
            check: Box::new(move |results| {
                let v = results[1] & 0xff;
                let freed_while_pinned = (results[1] >> 8) & 0xff;
                if freed_while_pinned != 0 {
                    return Err(format!(
                        "use-after-free: reader pinned value {v} but the \
                         writer reclaimed it mid-read"
                    ));
                }
                if v != 1 && v != 2 {
                    return Err(format!("reader loaded value id {v}"));
                }
                if c.ptr.load(Ordering::SeqCst) != 2 {
                    return Err("publish did not install the new value".to_string());
                }
                if c.freed[1].load(Ordering::SeqCst) != 0 {
                    return Err("current value reclaimed".to_string());
                }
                Ok(fingerprint(&[
                    v,
                    results[0],
                    u64::from(c.freed[0].load(Ordering::SeqCst)),
                ]))
            }),
        }
    })
}

/// The pin/publish/retire/reclaim protocol of the serving path's
/// snapshot cell, exhaustively: a reader must never observe its pinned
/// value reclaimed, whatever instant the pin lands relative to the
/// writer's swap → bump → scan sequence.
pub fn snapshot_pin_publish(cfg: &Config) -> Outcome {
    snapshot_scenario(cfg, false)
}

/// Detection demo: the epoch bump moved before the pointer swap. A
/// reader that pins between bump and swap records epoch `E+1` yet loads
/// the old value; the reclaim scan treats the pin as post-swap and frees
/// the value under the reader. Expected outcome: [`Outcome::Violation`].
pub fn seeded_epoch_bump_elision(cfg: &Config) -> Outcome {
    snapshot_scenario(cfg, true)
}

/// Mixes `seed` and per-dispatch `call` into a task-order permutation
/// (splitmix64-style finalizer): a rotation of submission order,
/// reversed on odd draws.
fn oracle_order(seed: u64, call: u64, n: usize) -> Vec<usize> {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(call.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let mut order: Vec<usize> = (0..n).collect();
    if n > 1 {
        order.rotate_left((z as usize) % n);
        if z & (1 << 40) != 0 {
            order.reverse();
        }
    }
    order
}

/// A bounded 2-thread run of the *real* pipeline — `ppscan()` on
/// concrete atomics with its production `SimStore`, union-find, and
/// scheduler — under [`ExecutionStrategy::Modeled`]: tasks execute on
/// the caller thread in oracle-chosen order, so every pool dispatch is
/// permuted without OS-schedule luck. This is not an `explore()`
/// scenario (the pipeline's state space dwarfs exhaustive search);
/// it sweeps a budget-bounded set of oracle seeds — capped at 48,
/// lower if `cfg.max_schedules` is — and checks every permuted run
/// produces the sequential baseline's clustering exactly. `Stats::
/// schedules` counts the seeds swept; the final-state set is the
/// (single) clustering fingerprint.
pub fn pipeline_modeled_2t(cfg: &Config) -> Outcome {
    use ppscan_core::params::ScanParams;
    use ppscan_core::ppscan::{ppscan, PpScanConfig};
    use ppscan_sched::{modeled, ExecutionStrategy};

    // Two triangles bridged through 2-3: cores on both sides, a hub
    // whose similar-degree straddles the threshold, and enough shared
    // neighbourhoods to exercise similarity reuse.
    let g = ppscan_graph::builder::from_edges(&[
        (0, 1),
        (1, 2),
        (0, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (3, 5),
    ]);
    let params = ScanParams::new(0.5, 2);
    let baseline = ppscan(
        &g,
        params,
        &PpScanConfig::with_threads(1).strategy(ExecutionStrategy::SequentialDeterministic),
    )
    .clustering;

    let seeds = cfg.max_schedules.min(48);
    let mut stats = crate::runtime::Stats {
        exhausted: true,
        ..Default::default()
    };
    for seed in 0..seeds {
        let mut call = 0u64;
        let clustering = modeled::with_oracle(
            move |n| {
                call += 1;
                oracle_order(seed, call, n)
            },
            || {
                ppscan(
                    &g,
                    params,
                    &PpScanConfig::with_threads(2).strategy(ExecutionStrategy::Modeled),
                )
                .clustering
            },
        );
        stats.schedules += 1;
        if clustering != baseline {
            return Outcome::Violation {
                schedule: vec![format!("oracle seed {seed} (rotation/reversal stream)")],
                message: format!(
                    "modeled 2-thread pipeline diverged from the sequential \
                     baseline under oracle seed {seed}: {} vs {}",
                    clustering.summary(),
                    baseline.summary()
                ),
                stats,
            };
        }
        let parts: Vec<u64> = baseline
            .core_cluster
            .iter()
            .map(|&c| u64::from(c))
            .chain(baseline.roles.iter().map(|&r| r as u64))
            .collect();
        stats.final_states.insert(fingerprint(&parts));
    }
    Outcome::Pass(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_budget(max_schedules: u64) -> Config {
        Config {
            max_schedules,
            ..Config::default()
        }
    }

    /// Acceptance criterion: with reduction off, the 2-thread union race
    /// exhaustively enumerates at least 1,000 distinct schedules.
    #[test]
    fn union_race_enumerates_at_least_1000_schedules() {
        let cfg = Config {
            por: false,
            ..cfg_budget(2_000_000)
        };
        match union_race_2t(&cfg) {
            Outcome::Pass(stats) => {
                assert!(stats.exhausted, "exploration must complete, not hit budget");
                assert!(
                    stats.schedules >= 1_000,
                    "only {} schedules enumerated",
                    stats.schedules
                );
            }
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("unexpected violation: {message}\n{}", schedule.join("\n"))
            }
        }
    }

    /// Sleep-set reduction must not change what is observable: the set
    /// of distinct final states with POR on equals the set with POR off.
    #[test]
    fn por_preserves_final_state_set() {
        let full = Config {
            por: false,
            ..cfg_budget(2_000_000)
        };
        let reduced = cfg_budget(2_000_000);
        let s_full = match union_race_2t(&full) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        let s_red = match union_race_2t(&reduced) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        assert!(s_full.exhausted && s_red.exhausted);
        assert_eq!(s_full.final_states, s_red.final_states);
        assert!(
            s_red.schedules <= s_full.schedules,
            "reduction should not explore more schedules"
        );
    }

    /// DPOR must agree with the sleep-set explorer on every catalog
    /// scenario: same final-state set on passing scenarios, and the
    /// same violation verdict on the seeded-bug ones. This is the
    /// cross-validation the DPOR implementation leans on — the two
    /// reductions are derived independently from the same dependency
    /// relation, so any divergence is a bug in one of them.
    #[test]
    fn dpor_final_state_sets_match_sleep_sets_on_all_scenarios() {
        let sleep = cfg_budget(2_000_000);
        let dpor = Config {
            dpor: true,
            ..cfg_budget(2_000_000)
        };
        for sc in catalog() {
            let a = (sc.run)(&sleep);
            let b = (sc.run)(&dpor);
            if sc.expect_violation {
                assert!(
                    matches!(a, Outcome::Violation { .. }),
                    "{}: sleep-set explorer missed the seeded bug",
                    sc.name
                );
                assert!(
                    matches!(b, Outcome::Violation { .. }),
                    "{}: DPOR explorer missed the seeded bug",
                    sc.name
                );
                continue;
            }
            let (sa, sb) = match (&a, &b) {
                (Outcome::Pass(sa), Outcome::Pass(sb)) => (sa, sb),
                _ => panic!("{}: unexpected violation ({a:?} / {b:?})", sc.name),
            };
            assert!(sa.exhausted && sb.exhausted, "{}: budget hit", sc.name);
            assert_eq!(
                sa.final_states, sb.final_states,
                "{}: DPOR changed the observable final-state set",
                sc.name
            );
        }
    }

    /// Acceptance criterion: on `union-race-2t` the DPOR explorer does
    /// strictly less work than sleep sets alone while observing the
    /// same final states. Sleep sets complete 75 schedules but also
    /// start 23 runs that are then pruned as redundant (98 explored
    /// runs); DPOR's backtrack sets stop those runs from ever starting
    /// (75 + 0). Standalone DPOR (sleep sets off) lands at 352
    /// schedules against the 13,103 raw interleavings — both counts
    /// are pinned so a reduction regression shows up as a test diff.
    #[test]
    fn dpor_explores_strictly_fewer_runs_on_union_race_2t() {
        let run = |por: bool, dpor: bool| {
            let cfg = Config {
                por,
                dpor,
                ..cfg_budget(2_000_000)
            };
            match union_race_2t(&cfg) {
                Outcome::Pass(s) => s,
                Outcome::Violation { message, .. } => panic!("violation: {message}"),
            }
        };
        let sleep = run(true, false);
        let both = run(true, true);
        let pure = run(false, true);
        assert!(sleep.exhausted && both.exhausted && pure.exhausted);
        assert_eq!(sleep.final_states, both.final_states);
        assert_eq!(sleep.final_states, pure.final_states);
        assert_eq!((sleep.schedules, sleep.pruned), (75, 23));
        assert_eq!((both.schedules, both.pruned), (75, 0));
        assert_eq!(pure.schedules, 352);
        assert!(
            both.schedules + both.pruned < sleep.schedules + sleep.pruned,
            "DPOR must explore strictly fewer runs than sleep sets alone"
        );
    }

    /// The correct snapshot-cell protocol never reclaims under a pin,
    /// across every interleaving, and some schedule does reclaim the old
    /// value (the scenario exercises the success path too).
    #[test]
    fn snapshot_pin_publish_passes_and_reclaims_on_some_schedule() {
        match snapshot_pin_publish(&cfg_budget(2_000_000)) {
            Outcome::Pass(s) => {
                assert!(s.exhausted);
                assert!(
                    s.final_states.len() > 1,
                    "expected schedules that do and don't reclaim the old value"
                );
            }
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        }
    }

    /// The seeded bump-before-swap ordering must be caught, by both
    /// explorers (the scenario exists to pin the DESIGN §9.3 argument
    /// that the bump's position is load-bearing).
    #[test]
    fn seeded_epoch_bump_elision_is_detected() {
        for dpor in [false, true] {
            let cfg = Config {
                dpor,
                ..cfg_budget(2_000_000)
            };
            match seeded_epoch_bump_elision(&cfg) {
                Outcome::Violation { message, .. } => {
                    assert!(message.contains("use-after-free"), "{message}");
                }
                Outcome::Pass(s) => {
                    panic!("seeded bug not detected in {} schedules", s.schedules)
                }
            }
        }
    }

    /// The real pipeline under `Modeled` with permuted dispatch orders
    /// always reproduces the sequential clustering.
    #[test]
    fn pipeline_modeled_2t_matches_sequential_baseline() {
        match pipeline_modeled_2t(&cfg_budget(2_000_000)) {
            Outcome::Pass(s) => {
                assert_eq!(s.schedules, 48, "full oracle-seed sweep");
                assert_eq!(s.final_states.len(), 1);
            }
            Outcome::Violation { message, .. } => panic!("{message}"),
        }
    }

    #[test]
    fn union_chain_3t_passes() {
        let cfg = Config {
            preemption_bound: Some(3),
            ..cfg_budget(500_000)
        };
        let out = union_chain_3t(&cfg);
        assert!(out.is_pass(), "{out:?}");
        assert!(out.stats().schedules > 0);
    }

    #[test]
    fn find_during_union_passes_exhaustively() {
        let out = find_during_union(&cfg_budget(2_000_000));
        match out {
            Outcome::Pass(s) => assert!(s.exhausted && s.schedules > 0),
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("{message}\n{}", schedule.join("\n"))
            }
        }
    }

    #[test]
    fn simstore_publish_passes_exhaustively() {
        let out = simstore_publish(&cfg_budget(2_000_000));
        match out {
            Outcome::Pass(s) => assert!(s.exhausted && s.schedules > 0),
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("{message}\n{}", schedule.join("\n"))
            }
        }
    }

    /// The exhaustive form of the PR-1 consolidation-window regression:
    /// the publisher store is placed at *every* point relative to the
    /// two-phase loop, including inside the window, and the count is
    /// always exactly one.
    #[test]
    fn pending_slot_invariant_passes_exhaustively() {
        let out = pending_slot_invariant(&cfg_budget(2_000_000));
        match out {
            Outcome::Pass(s) => {
                assert!(s.exhausted && s.schedules > 0);
                // All schedules agree on the count: one final state.
                assert_eq!(s.final_states.len(), 1);
            }
            Outcome::Violation {
                schedule, message, ..
            } => {
                panic!("{message}\n{}", schedule.join("\n"))
            }
        }
    }

    #[test]
    fn canonical_labels_agreement_passes() {
        let out = canonical_labels_agreement(&cfg_budget(2_000_000));
        assert!(out.is_pass(), "{out:?}");
        assert!(out.stats().schedules > 0);
    }

    /// Acceptance criterion: the seeded check-then-store weakening of
    /// the union CAS is *caught* — the checker exhibits the lost-merge
    /// interleaving with a concrete replayable schedule.
    #[test]
    fn seeded_weak_cas_bug_is_detected() {
        match seeded_weak_cas_bug(&cfg_budget(2_000_000)) {
            Outcome::Violation {
                schedule, message, ..
            } => {
                assert!(
                    message.contains("lost merge") || message.contains("winners"),
                    "unexpected violation kind: {message}"
                );
                assert!(!schedule.is_empty(), "violation must carry its schedule");
            }
            Outcome::Pass(s) => panic!("seeded bug not detected in {} schedules", s.schedules),
        }
    }

    /// The pre-hardening settle-loop bug (missing recompute arm) is
    /// caught: some schedule leaves the slot unpublished at settle time
    /// and the count drops to zero.
    #[test]
    fn seeded_settle_skip_bug_is_detected() {
        match seeded_settle_skip_bug(&cfg_budget(2_000_000)) {
            Outcome::Violation { message, .. } => {
                assert!(message.contains("counted 0"), "unexpected: {message}");
            }
            Outcome::Pass(s) => panic!("seeded bug not detected in {} schedules", s.schedules),
        }
    }

    /// Single-thread scenarios have exactly one schedule, and the
    /// modeled substrate must agree with the real substrate on it.
    #[test]
    fn modeled_substrate_agrees_with_real_on_sequential_scenarios() {
        // Real substrate, plain execution.
        let real: ConcurrentUnionFind = ConcurrentUnionFind::new(6);
        let real_wins = [real.union(4, 2), real.union(2, 5), real.union(5, 4)]
            .iter()
            .filter(|&&w| w)
            .count() as u64;
        let real_labels = real.canonical_labels();

        // Modeled substrate, one logical thread under the explorer.
        let out = explore(&cfg_budget(1_000), || {
            let uf: Arc<ModelUf> = Arc::new(ConcurrentUnionFind::new(6));
            let (a, b) = (Arc::clone(&uf), uf);
            RunSpec {
                threads: vec![Box::new(move || {
                    a.union(4, 2) as u64 + a.union(2, 5) as u64 + a.union(5, 4) as u64
                })],
                check: Box::new(move |wins| {
                    let mut parts: Vec<u64> =
                        b.canonical_labels().iter().map(|&l| l as u64).collect();
                    parts.push(wins[0]);
                    Ok(fingerprint(&parts))
                }),
            }
        });
        let stats = match out {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        assert!(stats.exhausted);
        assert_eq!(
            stats.schedules, 1,
            "a single-thread scenario has exactly one schedule"
        );
        let mut parts: Vec<u64> = real_labels.iter().map(|&l| l as u64).collect();
        parts.push(real_wins);
        assert_eq!(
            stats.final_states.iter().copied().collect::<Vec<u64>>(),
            vec![fingerprint(&parts)],
            "modeled and real substrates disagree on a sequential scenario"
        );
    }

    /// The preemption bound restricts, never corrupts: bounded
    /// exploration finds a subset of the unbounded final states.
    #[test]
    fn preemption_bound_explores_subset_of_final_states() {
        let unbounded = match union_race_2t(&cfg_budget(2_000_000)) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        let bounded_cfg = Config {
            preemption_bound: Some(1),
            ..cfg_budget(2_000_000)
        };
        let bounded = match union_race_2t(&bounded_cfg) {
            Outcome::Pass(s) => s,
            Outcome::Violation { message, .. } => panic!("violation: {message}"),
        };
        assert!(bounded.schedules < unbounded.schedules);
        assert!(bounded.final_states.is_subset(&unbounded.final_states));
    }
}
