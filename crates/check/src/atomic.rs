//! Model atomics: drop-in substrates for the protocol structs.
//!
//! [`ModelAtomicU32`] / [`ModelAtomicU8`] implement the
//! `ppscan_unionfind::substrate` traits, so
//! `ConcurrentUnionFind<ModelAtomicU32>` and `SimStore<ModelAtomicU8>`
//! run the *identical* protocol code as production — but every operation
//! routes through the model-checking runtime, where it becomes a
//! scheduling (and, for `Relaxed` loads, value) decision point.
//!
//! A model atomic is just an index into the current run's location
//! registry; construction registers the location, so scenario setup code
//! (`ConcurrentUnionFind::new`, pre-linking unions, ...) works unchanged
//! on the controller thread.

use crate::runtime::{self, OpDesc, OpKind};
use ppscan_unionfind::substrate::{AtomicCellU32, AtomicCellU8};
use std::sync::atomic::Ordering;

/// Modeled `u32` atomic cell (union-find parent slots).
pub struct ModelAtomicU32 {
    loc: usize,
}

/// Modeled `u8` atomic cell (similarity-label slots).
pub struct ModelAtomicU8 {
    loc: usize,
}

fn op(loc: usize, kind: OpKind, val: u64, expect: u64, weak: bool, order: Ordering) -> OpDesc {
    OpDesc {
        loc,
        kind,
        val,
        expect,
        weak,
        order,
    }
}

impl AtomicCellU32 for ModelAtomicU32 {
    fn new(v: u32) -> Self {
        ModelAtomicU32 {
            loc: runtime::register_location(v as u64),
        }
    }

    fn load(&self, order: Ordering) -> u32 {
        runtime::perform(op(self.loc, OpKind::Load, 0, 0, false, order)) as u32
    }

    fn store(&self, v: u32, order: Ordering) {
        runtime::perform(op(self.loc, OpKind::Store, v as u64, 0, false, order));
    }

    fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        _failure: Ordering,
    ) -> Result<u32, u32> {
        let packed = runtime::perform(op(
            self.loc,
            OpKind::Rmw,
            new as u64,
            current as u64,
            false,
            success,
        ));
        let (ok, observed) = runtime::unpack_cas(packed);
        if ok {
            Ok(observed as u32)
        } else {
            Err(observed as u32)
        }
    }

    fn compare_exchange_weak(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        _failure: Ordering,
    ) -> Result<u32, u32> {
        let packed = runtime::perform(op(
            self.loc,
            OpKind::Rmw,
            new as u64,
            current as u64,
            true,
            success,
        ));
        let (ok, observed) = runtime::unpack_cas(packed);
        if ok {
            Ok(observed as u32)
        } else {
            Err(observed as u32)
        }
    }
}

impl AtomicCellU8 for ModelAtomicU8 {
    fn new(v: u8) -> Self {
        ModelAtomicU8 {
            loc: runtime::register_location(v as u64),
        }
    }

    fn load(&self, order: Ordering) -> u8 {
        runtime::perform(op(self.loc, OpKind::Load, 0, 0, false, order)) as u8
    }

    fn store(&self, v: u8, order: Ordering) {
        runtime::perform(op(self.loc, OpKind::Store, v as u64, 0, false, order));
    }
}
