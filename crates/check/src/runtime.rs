//! The model-checking runtime: a deterministic cooperative scheduler plus
//! a DFS explorer over scheduling (and weak-memory value) decision
//! points.
//!
//! # Execution model
//!
//! A scenario run spawns one real OS thread per logical thread, but the
//! threads never race: a baton protocol (mutex + condvar) guarantees that
//! at most one thread executes protocol code at any instant. Every
//! [`ModelAtomicU32`](crate::ModelAtomicU32) /
//! [`ModelAtomicU8`](crate::ModelAtomicU8) operation is a *gate*: the
//! thread announces the operation it is about to perform and parks. The
//! controller (the exploring thread) picks which parked thread advances —
//! and, for `Relaxed` loads under the weak-memory model, *which value it
//! observes* — then hands it the baton. The thread performs exactly that
//! one operation and keeps running until its next gate.
//!
//! Because all shared state flows through model atomics, a run is a pure
//! function of the choice sequence, so schedules replay exactly and DFS
//! over the choice tree enumerates every interleaving once.
//!
//! # Weak memory
//!
//! Each atomic location keeps its full store history. A `Relaxed` load
//! may observe any store at or after the loading thread's per-location
//! *seen floor* (per-location coherence: a thread never reads older than
//! it has already read, reads its own writes, and thread spawn
//! synchronizes with the setup phase). Each admissible store is a
//! separate branch of the decision node, so stale-read behaviors are
//! enumerated, not sampled. `Acquire`/`SeqCst` loads and all RMWs read
//! the latest store (RMW atomicity; acquire is modeled conservatively
//! strong — see DESIGN.md §9 for the model's exact memory semantics).
//!
//! # Reduction and bounding
//!
//! * **Sleep sets** (Godefroid-style dynamic partial-order reduction):
//!   after fully exploring thread `t`'s alternatives at a node, `(t, op)`
//!   enters the node's sleep set; sibling subtrees skip `t` until a
//!   dependent operation (same location, not both loads) wakes it.
//!   Disable with [`Config::por`] to count raw interleavings.
//! * **Preemption bounding**: switching away from a thread that is still
//!   enabled costs one unit of [`Config::preemption_bound`]; unbounded
//!   when `None`.
//! * **Budgets**: [`Config::max_schedules`] caps explored runs (the
//!   [`Stats::exhausted`] flag records whether the space was completed),
//!   and [`Config::max_steps`] aborts pathological runs as suspected
//!   livelock.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering as MemOrder;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Explorer knobs. `Default` is the exhaustive configuration: weak
/// memory on, sleep-set reduction on, no preemption bound, generous
/// budgets.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum context switches away from a still-enabled thread per
    /// schedule; `None` = unbounded (full exploration).
    pub preemption_bound: Option<usize>,
    /// Stop after this many runs (completed + pruned). The space is
    /// reported as exhausted only if DFS finished within the budget.
    pub max_schedules: u64,
    /// Model `Relaxed` loads as able to return stale values from the
    /// store history (one branch per admissible store).
    pub weak_memory: bool,
    /// Sleep-set partial-order reduction. Turn off to enumerate every
    /// raw interleaving (used by the schedule-count acceptance test).
    pub por: bool,
    /// Vector-clock dynamic partial-order reduction (Flanagan–Godefroid
    /// style): a fresh decision node explores only one thread; after
    /// each run, every pair of dependent trace events not ordered by
    /// happens-before requests the second event's thread as a backtrack
    /// point at the first event's node. Sound w.r.t. the same
    /// dependency relation the sleep sets use ([`independent`]), and
    /// composed with them: the final-state set is preserved while
    /// strictly fewer schedules run on conflict-heavy scenarios.
    pub dpor: bool,
    /// Branch weak CAS (`compare_exchange_weak`) on spurious failure.
    pub spurious_weak_cas: bool,
    /// Per-run step limit; exceeding it is reported as a violation
    /// (suspected livelock — all checked protocols are lock-free and
    /// terminate in far fewer steps on legitimate schedules).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: None,
            max_schedules: 1_000_000,
            weak_memory: true,
            por: true,
            dpor: false,
            spurious_weak_cas: false,
            max_steps: 20_000,
        }
    }
}

/// Aggregate exploration statistics.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Complete runs (all threads finished, scenario check executed).
    pub schedules: u64,
    /// Runs abandoned as redundant by the sleep-set reduction.
    pub pruned: u64,
    /// Decision nodes created.
    pub decisions: u64,
    /// Deepest decision sequence observed.
    pub max_depth: usize,
    /// Whether DFS finished the whole space within the budget.
    pub exhausted: bool,
    /// Fingerprints of every distinct final state the scenario check
    /// reported (its `Ok(u64)` values).
    pub final_states: BTreeSet<u64>,
}

/// Result of exploring one scenario.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every explored schedule satisfied the scenario check.
    Pass(Stats),
    /// Some schedule failed; `schedule` is the exact choice script (one
    /// line per decision) that produced it.
    Violation {
        /// Human-readable choice script of the failing schedule.
        schedule: Vec<String>,
        /// What went wrong (scenario check message, deadlock, livelock
        /// guard, or a panic inside protocol code).
        message: String,
        /// Statistics up to and including the failing run.
        stats: Stats,
    },
}

impl Outcome {
    /// The statistics regardless of pass/fail.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Pass(s) => s,
            Outcome::Violation { stats, .. } => stats,
        }
    }

    /// Whether the scenario passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, Outcome::Pass(_))
    }
}

/// One run of a scenario: the logical threads to interleave plus a final
/// check executed quiescently after all threads finish. The check
/// receives each thread's `u64` return value and returns a fingerprint
/// of the final state (collected into [`Stats::final_states`]) or a
/// violation message.
pub struct RunSpec {
    /// Thread bodies. Index = thread id in schedules and reports.
    pub threads: Vec<Box<dyn FnOnce() -> u64 + Send>>,
    /// Quiescent final check; `Ok(fingerprint)` or `Err(message)`.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn FnOnce(&[u64]) -> Result<u64, String>>,
}

/// What kind of atomic operation a thread is gated on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Atomic load.
    Load,
    /// Atomic store.
    Store,
    /// Compare-exchange (strong or weak).
    Rmw,
}

/// A pending atomic operation, announced at a gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpDesc {
    /// Location index (registration order within the run).
    pub loc: usize,
    /// Operation kind.
    pub kind: OpKind,
    /// Store value / CAS replacement.
    pub val: u64,
    /// CAS expected value.
    pub expect: u64,
    /// Weak CAS (may branch on spurious failure).
    pub weak: bool,
    /// The ordering the call site declared.
    pub order: MemOrder,
}

/// Variant marker: no value choice applies (stores, strong CAS).
const NO_VARIANT: u32 = u32::MAX;
/// Variant marker: weak CAS fails spuriously.
const SPURIOUS: u32 = u32::MAX - 1;
/// Pseudo thread id of the controller (setup / final check context).
const CONTROLLER: usize = usize::MAX;

/// One branch at a decision node: which thread advances, and (for loads)
/// which store-history index it observes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Choice {
    tid: usize,
    variant: u32,
}

/// A decision node on the DFS path. Persisted across re-executions while
/// its subtree is being explored.
struct Node {
    /// Enumerated alternatives, grouped by thread (preemption filter
    /// already applied).
    alts: Vec<Choice>,
    /// Index into `alts` of the alternative currently being explored.
    cursor: usize,
    /// Sleep set: threads (with their pending op) whose subtrees from
    /// this node are provably redundant.
    sleep: Vec<(usize, OpDesc)>,
    /// Pending op of every enabled thread at this node (for sleep-set
    /// filtering and pretty-printing).
    enabled: Vec<(usize, OpDesc)>,
    /// Thread chosen at the parent node (`None` at the root).
    prev_tid: Option<usize>,
    /// Preemptions consumed by the path into this node.
    preemptions: usize,
    /// DPOR: threads requested for exploration from this node. Starts
    /// with the first explorable thread only; [`dpor_update`] grows it
    /// while the node is on the path. Ignored unless [`Config::dpor`].
    backtrack: BTreeSet<usize>,
    /// DPOR: threads whose alternatives here are fully explored.
    done: BTreeSet<usize>,
}

impl Node {
    fn op_of(&self, tid: usize) -> OpDesc {
        self.enabled
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, o)| *o)
            .expect("chosen thread must be enabled")
    }

    fn chosen(&self) -> Choice {
        self.alts[self.cursor]
    }

    fn pretty_chosen(&self) -> String {
        let c = self.chosen();
        let op = self.op_of(c.tid);
        let what = match op.kind {
            OpKind::Load => match c.variant {
                NO_VARIANT => format!("load(loc{})", op.loc),
                v => format!("load(loc{})@h{v}", op.loc),
            },
            OpKind::Store => format!("store(loc{}, {})", op.loc, op.val),
            OpKind::Rmw => {
                let kind = if op.weak { "casw" } else { "cas" };
                let spur = if c.variant == SPURIOUS {
                    " spurious"
                } else {
                    ""
                };
                format!("{kind}(loc{}, {} -> {}){spur}", op.loc, op.expect, op.val)
            }
        };
        format!("t{} {what} [{:?}]", c.tid, op.order)
    }
}

/// A location's full store history. Index 0 is the initial value.
struct Location {
    history: Vec<u64>,
}

/// Shared run state behind the baton mutex.
struct Global {
    locations: Vec<Location>,
    /// `seen[tid][loc]`: minimum history index thread `tid` may still
    /// observe at `loc` (per-location coherence floor). Rows may be
    /// shorter than `locations` for mid-run registrations; missing
    /// entries mean floor 0.
    seen: Vec<Vec<usize>>,
    /// Which worker holds the baton (`None`: controller's turn).
    active: Option<usize>,
    /// Value-choice variant delivered with the current grant.
    grant_variant: u32,
    pending: Vec<Option<OpDesc>>,
    finished: Vec<bool>,
    results: Vec<u64>,
    abort: bool,
    steps: u64,
    /// Set when a worker panics with a real error (not an abort token).
    failure: Option<String>,
}

/// Per-run shared context: the baton and the modeled memory.
pub(crate) struct RunCtx {
    global: Mutex<Global>,
    cv: Condvar,
}

/// Payload used to unwind workers parked at gates when a run is
/// abandoned (violation found elsewhere, or sleep-set prune).
struct AbortToken;

thread_local! {
    /// Ambient run context: `Some((ctx, tid))` inside a model-check run.
    /// `tid == CONTROLLER` on the exploring thread (setup and final
    /// check run there, with ops executing immediately and quiescently).
    static CTX: std::cell::RefCell<Option<(Arc<RunCtx>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Suppress the default "thread panicked" banner for the explorer's own
/// abort unwinds (thousands per exploration); real panics still print.
fn install_quiet_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_none() {
                prev(info);
            }
        }));
    });
}

impl RunCtx {
    fn new() -> RunCtx {
        RunCtx {
            global: Mutex::new(Global {
                locations: Vec::new(),
                seen: Vec::new(),
                active: None,
                grant_variant: NO_VARIANT,
                pending: Vec::new(),
                finished: Vec::new(),
                results: Vec::new(),
                abort: false,
                steps: 0,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Worker side of the baton: announce `op`, park, and when granted
    /// execute it (with the controller-chosen variant) and keep running.
    fn gate(&self, tid: usize, op: OpDesc) -> u64 {
        let mut g = self.global.lock().unwrap();
        g.pending[tid] = Some(op);
        if g.active == Some(tid) {
            g.active = None;
        }
        self.cv.notify_all();
        loop {
            if g.abort {
                drop(g);
                std::panic::panic_any(AbortToken);
            }
            if g.active == Some(tid) {
                let variant = g.grant_variant;
                g.pending[tid] = None;
                g.steps += 1;
                // Baton stays with this thread until its next gate.
                return exec_op(&mut g, tid, op, variant);
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Controller side: block until every worker is parked at a gate or
    /// finished (or a worker failed).
    fn wait_quiescent(&self) -> MutexGuard<'_, Global> {
        let mut g = self.global.lock().unwrap();
        loop {
            let parked = g.active.is_none()
                && g.pending
                    .iter()
                    .zip(&g.finished)
                    .all(|(p, &f)| f || p.is_some());
            if parked || g.failure.is_some() {
                return g;
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// Advances `seen[tid][loc]` to at least `idx` (no-op for the
/// controller, which always reads latest and tracks no floor).
fn note_seen(g: &mut Global, tid: usize, loc: usize, idx: usize) {
    if tid == CONTROLLER {
        return;
    }
    let row = &mut g.seen[tid];
    if row.len() <= loc {
        row.resize(loc + 1, 0);
    }
    row[loc] = row[loc].max(idx);
}

/// Executes `op` against the modeled memory. `variant` selects the
/// observed store for loads (or spurious failure for weak CAS).
fn exec_op(g: &mut Global, tid: usize, op: OpDesc, variant: u32) -> u64 {
    let latest = g.locations[op.loc].history.len() - 1;
    match op.kind {
        OpKind::Load => {
            let idx = if variant == NO_VARIANT {
                latest
            } else {
                variant as usize
            };
            note_seen(g, tid, op.loc, idx);
            g.locations[op.loc].history[idx]
        }
        OpKind::Store => {
            g.locations[op.loc].history.push(op.val);
            note_seen(g, tid, op.loc, latest + 1);
            0
        }
        OpKind::Rmw => {
            let cur = g.locations[op.loc].history[latest];
            note_seen(g, tid, op.loc, latest);
            if variant == SPURIOUS {
                // Spurious failure still reports the current value.
                pack_cas(false, cur)
            } else if cur == op.expect {
                g.locations[op.loc].history.push(op.val);
                note_seen(g, tid, op.loc, latest + 1);
                pack_cas(true, cur)
            } else {
                pack_cas(false, cur)
            }
        }
    }
}

fn pack_cas(success: bool, val: u64) -> u64 {
    ((success as u64) << 32) | val
}

/// Splits a packed CAS result back into `(success, observed)`.
pub(crate) fn unpack_cas(packed: u64) -> (bool, u64) {
    (packed >> 32 != 0, packed & 0xffff_ffff)
}

/// Registers a fresh location with initial value `v`; called from
/// `ModelAtomic*::new` under the ambient run context.
pub(crate) fn register_location(v: u64) -> usize {
    with_ctx(|ctx, _tid| {
        let mut g = ctx.global.lock().unwrap();
        g.locations.push(Location { history: vec![v] });
        g.locations.len() - 1
    })
}

/// Dispatches an atomic operation: gates on a worker thread, executes
/// immediately on the controller.
pub(crate) fn perform(op: OpDesc) -> u64 {
    with_ctx(|ctx, tid| {
        if tid == CONTROLLER {
            let mut g = ctx.global.lock().unwrap();
            exec_op(&mut g, CONTROLLER, op, NO_VARIANT)
        } else {
            ctx.gate(tid, op)
        }
    })
}

fn with_ctx<R>(f: impl FnOnce(&Arc<RunCtx>, usize) -> R) -> R {
    CTX.with(|c| {
        let cell = c.borrow();
        let (ctx, tid) = cell
            .as_ref()
            .expect("ModelAtomic used outside a ppscan-check exploration");
        f(ctx, *tid)
    })
}

/// True when `order` makes a load eligible for stale-value branching.
/// `Acquire`/`SeqCst` loads read the latest store (modeled
/// conservatively strong; the audited protocols use `Relaxed` loads
/// exclusively, so branching covers every load that matters).
fn relaxed_load(order: MemOrder) -> bool {
    matches!(order, MemOrder::Relaxed)
}

/// Two pending ops commute iff they touch different locations or are
/// both loads (loads never change the history another op observes).
fn independent(a: &OpDesc, b: &OpDesc) -> bool {
    a.loc != b.loc || (a.kind == OpKind::Load && b.kind == OpKind::Load)
}

/// The value branches available to thread `tid`'s pending `op`.
fn variants_for(g: &Global, cfg: &Config, tid: usize, op: &OpDesc) -> Vec<u32> {
    match op.kind {
        OpKind::Load => {
            let latest = g.locations[op.loc].history.len() - 1;
            if cfg.weak_memory && relaxed_load(op.order) {
                let floor = g.seen[tid].get(op.loc).copied().unwrap_or(0);
                (floor..=latest).map(|i| i as u32).collect()
            } else {
                vec![latest as u32]
            }
        }
        OpKind::Store => vec![NO_VARIANT],
        OpKind::Rmw => {
            if op.weak && cfg.spurious_weak_cas {
                vec![NO_VARIANT, SPURIOUS]
            } else {
                vec![NO_VARIANT]
            }
        }
    }
}

/// Explores all interleavings of the scenario produced by `mk`. `mk` is
/// called once per run and must be deterministic: same setup, same
/// thread bodies, same check, all shared state via model atomics.
pub fn explore(cfg: &Config, mut mk: impl FnMut() -> RunSpec) -> Outcome {
    install_quiet_abort_hook();
    let mut path: Vec<Node> = Vec::new();
    let mut stats = Stats::default();
    loop {
        match run_once(cfg, &mut mk, &mut path, &mut stats) {
            RunEnd::Completed => {
                stats.schedules += 1;
                if cfg.dpor {
                    // Every node on the path executed its chosen alt.
                    let executed = path.len();
                    dpor_update(&mut path, executed);
                }
            }
            RunEnd::Pruned => {
                stats.pruned += 1;
                if cfg.dpor {
                    // The deepest node was created prunable: only the
                    // prefix before it actually executed.
                    let executed = path.len().saturating_sub(1);
                    dpor_update(&mut path, executed);
                }
            }
            RunEnd::Violation(message) => {
                let schedule = path.iter().map(Node::pretty_chosen).collect();
                return Outcome::Violation {
                    schedule,
                    message,
                    stats,
                };
            }
        }
        if !backtrack(cfg, &mut path) {
            stats.exhausted = true;
            return Outcome::Pass(stats);
        }
        if stats.schedules + stats.pruned >= cfg.max_schedules {
            return Outcome::Pass(stats);
        }
    }
}

enum RunEnd {
    Completed,
    Pruned,
    Violation(String),
}

/// Executes one run, replaying `path` and extending it at the frontier.
fn run_once(
    cfg: &Config,
    mk: &mut impl FnMut() -> RunSpec,
    path: &mut Vec<Node>,
    stats: &mut Stats,
) -> RunEnd {
    // The context must exist before `mk` runs: scenario setup registers
    // locations (and may perform quiescent setup operations) through it.
    let ctx = Arc::new(RunCtx::new());
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctx), CONTROLLER)));
    let spec = mk();
    let nthreads = spec.threads.len();
    {
        let mut g = ctx.global.lock().unwrap();
        g.pending = vec![None; nthreads];
        g.finished = vec![false; nthreads];
        g.results = vec![0; nthreads];
        // Thread spawn synchronizes with setup: every worker's seen
        // floor starts at the latest pre-spawn store per location.
        let floors: Vec<usize> = g.locations.iter().map(|l| l.history.len() - 1).collect();
        g.seen = vec![floors; nthreads];
    }

    let mut handles = Vec::with_capacity(nthreads);
    for (tid, body) in spec.threads.into_iter().enumerate() {
        let ctx2 = Arc::clone(&ctx);
        let handle = std::thread::Builder::new()
            .name(format!("model-t{tid}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctx2), tid)));
                let r = catch_unwind(AssertUnwindSafe(body));
                CTX.with(|c| *c.borrow_mut() = None);
                let mut g = ctx2.global.lock().unwrap();
                g.finished[tid] = true;
                g.pending[tid] = None;
                match r {
                    Ok(v) => g.results[tid] = v,
                    Err(payload) => {
                        if payload.downcast_ref::<AbortToken>().is_none() {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "opaque panic payload".into());
                            if g.failure.is_none() {
                                g.failure = Some(format!("t{tid} panicked: {msg}"));
                            }
                        }
                    }
                }
                if g.active == Some(tid) {
                    g.active = None;
                }
                ctx2.cv.notify_all();
            })
            .expect("failed to spawn model worker");
        handles.push(handle);
    }

    let mut depth = 0usize;
    let end = loop {
        let mut g = ctx.wait_quiescent();
        if let Some(msg) = g.failure.clone() {
            break RunEnd::Violation(msg);
        }
        if g.finished.iter().all(|&f| f) {
            break RunEnd::Completed;
        }
        if g.steps >= cfg.max_steps {
            break RunEnd::Violation(format!(
                "exceeded max_steps={} (suspected livelock)",
                cfg.max_steps
            ));
        }
        let enabled: Vec<(usize, OpDesc)> = g
            .pending
            .iter()
            .enumerate()
            .filter_map(|(t, p)| p.map(|op| (t, op)))
            .collect();
        if depth == path.len() {
            // Frontier: create a fresh decision node.
            let (prev_tid, preemptions, inherited_sleep) = match path.last() {
                None => (None, 0, Vec::new()),
                Some(p) => {
                    let chosen = p.chosen();
                    let chosen_op = p.op_of(chosen.tid);
                    let cost = match p.prev_tid {
                        Some(pt) if pt != chosen.tid && p.enabled.iter().any(|(t, _)| *t == pt) => {
                            1
                        }
                        _ => 0,
                    };
                    let sleep: Vec<(usize, OpDesc)> = if cfg.por {
                        p.sleep
                            .iter()
                            .filter(|(t, o)| *t != chosen.tid && independent(o, &chosen_op))
                            .cloned()
                            .collect()
                    } else {
                        Vec::new()
                    };
                    (Some(chosen.tid), p.preemptions + cost, sleep)
                }
            };
            // Prev thread first: DFS explores the non-preemptive
            // continuation before any context switch.
            let mut tids: Vec<usize> = enabled.iter().map(|(t, _)| *t).collect();
            if let Some(pt) = prev_tid {
                if let Some(pos) = tids.iter().position(|&t| t == pt) {
                    tids.remove(pos);
                    tids.insert(0, pt);
                }
            }
            let prev_enabled = prev_tid.is_some_and(|pt| enabled.iter().any(|(t, _)| *t == pt));
            let mut alts = Vec::new();
            for &t in &tids {
                if let Some(bound) = cfg.preemption_bound {
                    let cost = usize::from(prev_enabled && Some(t) != prev_tid);
                    if preemptions + cost > bound {
                        continue;
                    }
                }
                let op = enabled.iter().find(|(tt, _)| *tt == t).unwrap().1;
                for v in variants_for(&g, cfg, t, &op) {
                    alts.push(Choice { tid: t, variant: v });
                }
            }
            let mut node = Node {
                alts,
                cursor: 0,
                sleep: inherited_sleep,
                enabled,
                prev_tid,
                preemptions,
                backtrack: BTreeSet::new(),
                done: BTreeSet::new(),
            };
            while node.cursor < node.alts.len()
                && node
                    .sleep
                    .iter()
                    .any(|(t, _)| *t == node.alts[node.cursor].tid)
            {
                node.cursor += 1;
            }
            if cfg.dpor && node.cursor < node.alts.len() {
                // A fresh DPOR node explores one thread; dpor_update
                // requests the others on demand.
                node.backtrack.insert(node.alts[node.cursor].tid);
            }
            stats.decisions += 1;
            let prunable = node.cursor >= node.alts.len();
            path.push(node);
            if prunable {
                // Every enabled thread is asleep: this continuation is
                // covered by an already-explored sibling.
                break RunEnd::Pruned;
            }
        }
        let choice = path[depth].chosen();
        g.grant_variant = choice.variant;
        g.active = Some(choice.tid);
        ctx.cv.notify_all();
        drop(g);
        depth += 1;
        stats.max_depth = stats.max_depth.max(depth);
    };

    // Tear down: unwind any still-parked workers, then join everyone.
    {
        let mut g = ctx.global.lock().unwrap();
        g.abort = true;
        ctx.cv.notify_all();
    }
    for h in handles {
        let _ = h.join();
    }

    let end = match end {
        RunEnd::Completed => {
            // The quiescent scenario check runs on the controller.
            let results = ctx.global.lock().unwrap().results.clone();
            match (spec.check)(&results) {
                Ok(fp) => {
                    stats.final_states.insert(fp);
                    RunEnd::Completed
                }
                Err(msg) => RunEnd::Violation(format!("check failed: {msg}")),
            }
        }
        other => other,
    };
    CTX.with(|c| *c.borrow_mut() = None);
    end
}

/// Advances the deepest non-exhausted node to its next alternative,
/// popping exhausted nodes. Returns `false` when the whole tree is done.
///
/// Under [`Config::dpor`] a node only offers the threads in its
/// `backtrack` set (which [`dpor_update`] may have grown since the
/// cursor last moved — selection rescans the alternatives from the
/// start, so late requests are never missed).
fn backtrack(cfg: &Config, path: &mut Vec<Node>) -> bool {
    while let Some(top) = path.last_mut() {
        if top.cursor < top.alts.len() {
            let done_tid = top.alts[top.cursor].tid;
            top.cursor += 1;
            let last_of_thread =
                top.cursor >= top.alts.len() || top.alts[top.cursor].tid != done_tid;
            if last_of_thread {
                if cfg.por {
                    let op = top.op_of(done_tid);
                    top.sleep.push((done_tid, op));
                }
                top.done.insert(done_tid);
            }
            if cfg.dpor {
                if !last_of_thread {
                    // Next value variant of the thread being explored.
                    return true;
                }
                let sleep = &top.sleep;
                let done = &top.done;
                let backtrack = &top.backtrack;
                if let Some(i) = top.alts.iter().position(|c| {
                    backtrack.contains(&c.tid)
                        && !done.contains(&c.tid)
                        && !sleep.iter().any(|(t, _)| *t == c.tid)
                }) {
                    top.cursor = i;
                    return true;
                }
            } else {
                while top.cursor < top.alts.len()
                    && top
                        .sleep
                        .iter()
                        .any(|(t, _)| *t == top.alts[top.cursor].tid)
                {
                    top.cursor += 1;
                }
                if top.cursor < top.alts.len() {
                    return true;
                }
            }
        }
        path.pop();
    }
    false
}

/// The DPOR post-pass: replays the just-executed trace through a
/// vector-clock happens-before model (program order plus the explorer's
/// own dependency relation, [`independent`]) and, for every pair of
/// dependent events left unordered by everything *between* them,
/// requests the later event's thread as a backtrack point at the
/// earlier event's node. Per the classic algorithm only the *latest*
/// such earlier event takes the request — reversing that one race
/// re-runs the pass, which then surfaces the next race in — so earlier
/// nodes are not flooded with requests that would erase the reduction.
///
/// All requests land on nodes still on the path (the executed prefix),
/// so no request can arrive after its node was popped — the property
/// classic DPOR's soundness rests on.
fn dpor_update(path: &mut [Node], executed: usize) {
    fn get(vc: &[u64], i: usize) -> u64 {
        vc.get(i).copied().unwrap_or(0)
    }
    fn join(a: &mut Vec<u64>, b: &[u64]) {
        if a.len() < b.len() {
            a.resize(b.len(), 0);
        }
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x = (*x).max(y);
        }
    }
    fn slot(v: &mut Vec<Vec<u64>>, i: usize) -> &mut Vec<u64> {
        if v.len() <= i {
            v.resize(i + 1, Vec::new());
        }
        &mut v[i]
    }
    // Per-thread clocks, per-location write/read clocks, and each
    // event's post-clock (events on one location form the dependency
    // edges; a failed CAS counts as a write exactly like `independent`
    // treats it).
    let mut threads: Vec<Vec<u64>> = Vec::new();
    let mut writes: Vec<Vec<u64>> = Vec::new();
    let mut reads: Vec<Vec<u64>> = Vec::new();
    let mut events: Vec<(usize, OpDesc, Vec<u64>)> = Vec::with_capacity(executed);
    for i in 0..executed {
        let (tid, op) = {
            let n = &path[i];
            let c = n.chosen();
            (c.tid, n.op_of(c.tid))
        };
        let pre = slot(&mut threads, tid).clone();
        for j in (0..i).rev() {
            let (jt, jop, jpost) = &events[j];
            if independent(jop, &op) {
                continue;
            }
            if get(jpost, *jt) <= get(&pre, *jt) {
                continue; // already happens-before through the middle
            }
            let node = &mut path[j];
            if node.enabled.iter().any(|(t, _)| *t == tid) {
                node.backtrack.insert(tid);
            } else {
                for &(t, _) in &node.enabled {
                    node.backtrack.insert(t);
                }
            }
            break;
        }
        let mut clock = pre;
        join(&mut clock, slot(&mut writes, op.loc));
        if op.kind != OpKind::Load {
            join(&mut clock, slot(&mut reads, op.loc));
        }
        let tick = get(&clock, tid) + 1;
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] = tick;
        if op.kind == OpKind::Load {
            join(slot(&mut reads, op.loc), &clock);
        } else {
            join(slot(&mut writes, op.loc), &clock);
        }
        *slot(&mut threads, tid) = clock.clone();
        events.push((tid, op, clock));
    }
}

/// FNV-1a over a list of `u64` parts: the scenario checks use this to
/// fingerprint final states for [`Stats::final_states`].
pub fn fingerprint(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}
