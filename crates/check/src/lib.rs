//! # ppscan-check
//!
//! An exhaustive interleaving model checker for ppSCAN's two lock-free
//! protocols: the concurrent union-find
//! (`ppscan_unionfind::ConcurrentUnionFind`, paper §6 / Algorithm 5) and
//! the similarity-label publication discipline
//! (`ppscan_core::SimStore`, §4.2.2 / Theorem 4.1).
//!
//! The paper argues both protocols correct informally; the repo's
//! `AdversarialSeeded` strategy samples schedules but cannot prove
//! absence of races. This crate closes the gap loom/shuttle-style: the
//! protocol structs are generic over their atomic substrate, so the
//! *identical* code that ships in production (monomorphized to
//! `std::sync::atomic`, zero cost) also runs over [`ModelAtomicU32`] /
//! [`ModelAtomicU8`], where every operation is a scheduling decision
//! point and a DFS [`explore`]s every interleaving of small bounded
//! scenarios — including weak-memory behaviors, with `Relaxed` loads
//! branching over stale values from a per-location store history.
//!
//! * [`runtime`] — the cooperative scheduler, DFS explorer, sleep-set
//!   partial-order reduction, preemption bounding, and the weak-memory
//!   model.
//! * [`atomic`] — the model substrates.
//! * [`scenarios`] — the checked scenarios (union races, union chains,
//!   find-during-union path compression, SimStore publish/consume, the
//!   Theorem 4.1 pending-slot invariant, canonical-labels agreement)
//!   plus two intentionally seeded bugs demonstrating detection.
//!
//! Run everything with per-scenario schedule counts:
//!
//! ```text
//! cargo run -p ppscan-check --bin check -- --report target/modelcheck.json
//! ```
//!
//! The design, the per-call-site memory-ordering audit, and the model's
//! exact memory semantics are documented in DESIGN.md §9.

pub mod atomic;
pub mod runtime;
pub mod scenarios;

pub use atomic::{ModelAtomicU32, ModelAtomicU8};
pub use runtime::{explore, fingerprint, Config, Outcome, RunSpec, Stats};
