//! The `check` binary: runs the full scenario catalog and prints (and
//! optionally writes, as a machine-readable run report) per-scenario
//! schedule counts.
//!
//! ```text
//! check [--budget N] [--preemption-bound K] [--no-weak] [--no-por]
//!       [--dpor] [--spurious-weak-cas] [--report PATH]
//! ```
//!
//! Scenarios carrying seeded bugs are expected to produce violations;
//! the binary treats "violation detected" as success for those entries
//! and a pass as failure (the checker lost its teeth). Exit code 0 iff
//! every scenario behaved as expected.

use ppscan_check::runtime::{Config, Outcome};
use ppscan_check::scenarios::{catalog, Scenario};
use ppscan_obs::json::Json;
use ppscan_obs::RunReport;
use std::process::ExitCode;

struct Args {
    cfg: Config,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = Config {
        // The binary is a CI gate: bounded budget, well under 2 minutes.
        max_schedules: 200_000,
        ..Config::default()
    };
    let mut report = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                cfg.max_schedules = v.parse().map_err(|_| format!("bad --budget {v}"))?;
            }
            "--preemption-bound" => {
                let v = it.next().ok_or("--preemption-bound needs a value")?;
                cfg.preemption_bound = Some(
                    v.parse()
                        .map_err(|_| format!("bad --preemption-bound {v}"))?,
                );
            }
            "--no-weak" => cfg.weak_memory = false,
            "--no-por" => cfg.por = false,
            "--dpor" => cfg.dpor = true,
            "--spurious-weak-cas" => cfg.spurious_weak_cas = true,
            "--report" => report = Some(it.next().ok_or("--report needs a path")?),
            "--help" | "-h" => {
                println!(
                    "usage: check [--budget N] [--preemption-bound K] [--no-weak] \
                     [--no-por] [--dpor] [--spurious-weak-cas] [--report PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args { cfg, report })
}

fn run_scenario(s: &Scenario, cfg: &Config) -> (bool, Json) {
    let started = std::time::Instant::now();
    let outcome = (s.run)(cfg);
    let elapsed = started.elapsed();
    let stats = outcome.stats().clone();
    let detected = !outcome.is_pass();
    let ok = detected == s.expect_violation;
    let verdict = match (s.expect_violation, detected) {
        (false, false) => "pass",
        (false, true) => "VIOLATION",
        (true, true) => "detected (expected)",
        (true, false) => "MISSED SEEDED BUG",
    };
    println!(
        "{:<26} {:>9} schedules {:>8} pruned {:>9} decisions  depth {:<3} {:<10} {:>7.2?}  {}",
        s.name,
        stats.schedules,
        stats.pruned,
        stats.decisions,
        stats.max_depth,
        if stats.exhausted {
            "exhausted"
        } else {
            "budget-cap"
        },
        elapsed,
        verdict,
    );
    if let Outcome::Violation {
        schedule, message, ..
    } = &outcome
    {
        if !s.expect_violation {
            eprintln!("  {message}");
            for line in schedule {
                eprintln!("    {line}");
            }
        }
    }
    let mut entry = vec![
        ("name".to_string(), Json::Str(s.name.to_string())),
        ("what".to_string(), Json::Str(s.what.to_string())),
        ("verdict".to_string(), Json::Str(verdict.to_string())),
        ("ok".to_string(), Json::Bool(ok)),
        ("schedules".to_string(), Json::from_u64(stats.schedules)),
        ("pruned".to_string(), Json::from_u64(stats.pruned)),
        ("decisions".to_string(), Json::from_u64(stats.decisions)),
        (
            "max_depth".to_string(),
            Json::from_u64(stats.max_depth as u64),
        ),
        ("exhausted".to_string(), Json::Bool(stats.exhausted)),
        (
            "distinct_final_states".to_string(),
            Json::from_u64(stats.final_states.len() as u64),
        ),
        (
            "elapsed_ms".to_string(),
            Json::from_u64(elapsed.as_millis() as u64),
        ),
    ];
    if let Outcome::Violation { message, .. } = &outcome {
        entry.push(("violation".to_string(), Json::Str(message.clone())));
    }
    (ok, Json::Obj(entry))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ppscan-check: budget {} schedules/scenario, preemption bound {:?}, \
         weak memory {}, POR {}, DPOR {}",
        args.cfg.max_schedules,
        args.cfg.preemption_bound,
        args.cfg.weak_memory,
        args.cfg.por,
        args.cfg.dpor,
    );
    let mut all_ok = true;
    let mut entries = Vec::new();
    for s in catalog() {
        let (ok, entry) = run_scenario(&s, &args.cfg);
        all_ok &= ok;
        entries.push(entry);
    }
    if let Some(path) = args.report {
        let mut report = RunReport::new("modelcheck");
        report.push_extra(
            "config",
            Json::Obj(vec![
                (
                    "max_schedules".to_string(),
                    Json::from_u64(args.cfg.max_schedules),
                ),
                (
                    "preemption_bound".to_string(),
                    match args.cfg.preemption_bound {
                        Some(b) => Json::from_u64(b as u64),
                        None => Json::Null,
                    },
                ),
                ("weak_memory".to_string(), Json::Bool(args.cfg.weak_memory)),
                ("por".to_string(), Json::Bool(args.cfg.por)),
                ("dpor".to_string(), Json::Bool(args.cfg.dpor)),
            ]),
        );
        report.push_extra("scenarios", Json::Arr(entries));
        report.push_extra("all_ok", Json::Bool(all_ok));
        if let Err(e) = report.write_to_file(&path) {
            eprintln!("error: failed to write report {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
