//! Cross-thread context propagation registry.
//!
//! The scheduler must hand worker threads whatever ambient context the
//! orchestrating thread holds — span collectors, kernel counter scopes,
//! and anything future layers add — without depending on those layers.
//! This module inverts the dependency: context owners register a
//! [`Propagator`] once, and `ppscan-sched` calls [`capture`] before
//! spawning workers and [`CapturedContext::attach`] inside each worker.
//!
//! `ppscan-obs` registers its own span propagator automatically;
//! `ppscan-intersect` registers its counter-scope propagator the first
//! time a `CounterScope` is activated. This is the task-wrapper hook
//! that replaces the old manual `counters::inherit()`/`attach()`
//! call-site plumbing.

use std::any::Any;
use std::sync::{Arc, OnceLock, RwLock};

/// A source of thread-local ambient context that should follow tasks
/// onto pool worker threads.
pub trait Propagator: Send + Sync {
    /// Captures the calling thread's context.
    fn capture(&self) -> Box<dyn CapturedSlot>;
}

/// One captured piece of context, installable on another thread.
pub trait CapturedSlot: Send + Sync {
    /// Installs the context on the current thread, returning a guard
    /// that undoes the installation when dropped.
    fn attach(&self) -> Box<dyn Any>;
}

struct SpanPropagator;

impl Propagator for SpanPropagator {
    fn capture(&self) -> Box<dyn CapturedSlot> {
        Box::new(crate::span::capture_context())
    }
}

impl CapturedSlot for crate::span::SpanContext {
    fn attach(&self) -> Box<dyn Any> {
        Box::new(crate::span::SpanContext::attach(self))
    }
}

fn registry() -> &'static RwLock<Vec<Arc<dyn Propagator>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Arc<dyn Propagator>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(vec![Arc::new(SpanPropagator)]))
}

/// Registers a propagator for all future [`capture`] calls.
///
/// Registration is additive and permanent for the process lifetime;
/// propagators whose thread has no context should capture a cheap
/// no-op slot rather than deregistering.
pub fn register(p: Arc<dyn Propagator>) {
    registry().write().unwrap().push(p);
}

/// Captures every registered propagator's context on the calling thread.
pub fn capture() -> CapturedContext {
    let slots = registry()
        .read()
        .unwrap()
        .iter()
        .map(|p| p.capture())
        .collect();
    CapturedContext { slots }
}

/// The full ambient context of a thread, ready to ship to workers.
pub struct CapturedContext {
    slots: Vec<Box<dyn CapturedSlot>>,
}

impl CapturedContext {
    /// Installs all captured context on the current thread until the
    /// returned guard drops (guards release in reverse order).
    pub fn attach(&self) -> ContextGuard {
        let guards = self.slots.iter().map(|s| s.attach()).collect();
        ContextGuard { guards }
    }
}

/// Guard for an attached [`CapturedContext`].
pub struct ContextGuard {
    guards: Vec<Box<dyn Any>>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        while let Some(g) = self.guards.pop() {
            drop(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Collector, Span};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn span_context_flows_through_registry() {
        let collector = Collector::new();
        let _guard = collector.activate();
        let ctx = capture();
        thread::scope(|scope| {
            scope.spawn(move || {
                let _attached = ctx.attach();
                let _span = Span::enter("propagated");
            });
        });
        let snap = collector.snapshot();
        assert!(snap.iter().any(|s| s.stage == "propagated"));
    }

    #[test]
    fn custom_propagators_participate() {
        static CAPTURES: AtomicUsize = AtomicUsize::new(0);
        static ATTACHES: AtomicUsize = AtomicUsize::new(0);

        struct Probe;
        struct ProbeSlot;
        impl Propagator for Probe {
            fn capture(&self) -> Box<dyn CapturedSlot> {
                CAPTURES.fetch_add(1, Ordering::Relaxed);
                Box::new(ProbeSlot)
            }
        }
        impl CapturedSlot for ProbeSlot {
            fn attach(&self) -> Box<dyn Any> {
                ATTACHES.fetch_add(1, Ordering::Relaxed);
                Box::new(())
            }
        }

        register(Arc::new(Probe));
        let ctx = capture();
        assert!(CAPTURES.load(Ordering::Relaxed) >= 1);
        {
            let _g = ctx.attach();
        }
        assert!(ATTACHES.load(Ordering::Relaxed) >= 1);
    }
}
