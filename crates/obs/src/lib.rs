//! `ppscan-obs`: the unified observability layer for the ppSCAN
//! workspace — span tracing, cross-thread context propagation, and
//! machine-readable run reports.
//!
//! Std-only by design: the build environment has no crate registry, so
//! JSON handling is hand-rolled ([`json`]) the same way the graph
//! crate hand-rolls its binary IO.
//!
//! The layers:
//!
//! * [`span`] — `Span::enter("stage")` RAII guards feed per-thread ring
//!   buffers and any active [`span::Collector`], which aggregates
//!   per-stage / per-worker busy time, task counts, and injected-yield
//!   counts.
//! * [`propagate`] — a registry of [`propagate::Propagator`]s that
//!   `ppscan-sched::WorkerPool` uses to automatically carry ambient
//!   context (span collectors, kernel counter scopes) onto worker
//!   threads, replacing manual per-call-site plumbing.
//! * [`report`] — [`report::RunReport`] / [`report::FigureReport`]:
//!   versioned, diffable JSON records of algorithm and benchmark runs.
//! * [`hist`] — [`hist::LatencyHistogram`]: a lock-free log-bucketed
//!   histogram feeding per-query latency quantiles (p50/p99/p999) into
//!   serve run reports.
//! * [`registry`] — [`registry::MetricsRegistry`]: always-on named
//!   counters/gauges/histograms for long-lived processes, sampled into
//!   [`registry::MetricsSnapshot`] timelines by a
//!   [`registry::TimelineSampler`].
//! * [`events`] — [`events::FlightRecorder`]: a bounded ring of recent
//!   structured serving events, dumped as JSON by the
//!   [`events::StallWatchdog`] on dispatcher stalls or by the
//!   [`events::install_panic_dump`] hook on panics.
//! * [`race`] — [`race::DetectionSession`]: a FastTrack-style
//!   vector-clock happens-before race detector for real executions,
//!   fed by the traced atomic substrates and the worker pool's
//!   fork/join/steal edges; findings embed in reports as
//!   [`race::RaceReport`]s.
//!
//! # Example
//!
//! ```
//! use ppscan_obs::span::{Collector, Span};
//!
//! let collector = Collector::new();
//! let guard = collector.activate();
//! {
//!     let _phase = Span::enter("similarity-pruning");
//!     // ... run the phase (pool workers inherit the stage + collector
//!     // automatically via ppscan_obs::propagate) ...
//! }
//! drop(guard);
//! let phases = ppscan_obs::report::RunReport::phases_from(&collector.snapshot());
//! assert_eq!(phases[0].name, "similarity-pruning");
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod hist;
pub mod json;
pub mod propagate;
pub mod race;
pub mod registry;
pub mod report;
pub mod span;

pub use events::{FlightRecorder, StallWatchdog};
pub use hist::{LatencyHistogram, LatencySummary};
pub use race::{DetectionSession, RaceReport};
pub use registry::{MetricsRegistry, MetricsSnapshot, TimelineSampler};
pub use report::{FigureReport, RunReport};
pub use span::{Collector, Span};
