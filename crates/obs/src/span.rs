//! Span tracing core: scoped stage timers feeding per-thread ring buffers
//! and process-wide [`Collector`]s.
//!
//! The model is deliberately small:
//!
//! * A [`Span`] is an RAII guard for one named stage on the current
//!   thread. Stage names are `&'static str` so recording a span is a
//!   push/pop plus an `Instant` read — no allocation on the hot path.
//! * Each thread keeps a fixed-capacity ring buffer of recent
//!   [`SpanEvent`]s for debugging ([`recent_events`]).
//! * A [`Collector`] aggregates finished spans into per-stage,
//!   per-worker totals (busy nanos, task counts, injected yields).
//!   Collectors are activated per-thread; worker threads join a
//!   collector by attaching a captured [`SpanContext`] (the scheduler
//!   does this automatically via `ppscan-obs::propagate`).
//! * [`enter_worker`] tags the current thread with a worker id so
//!   aggregation can attribute time to individual pool workers;
//!   untagged threads record into the orchestrator (wall) slot.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Capacity of the per-thread debug ring buffer.
const RING_CAPACITY: usize = 256;

thread_local! {
    /// Stack of currently open stage names on this thread.
    static STAGE_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Worker id of this thread, when it is acting as a pool worker.
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
    /// Collectors receiving finished spans from this thread.
    static ACTIVE: RefCell<Vec<Arc<CollectorInner>>> = const { RefCell::new(Vec::new()) };
    /// Ring buffer of recently finished spans (debugging aid).
    static RING: RefCell<Vec<SpanEvent>> = const { RefCell::new(Vec::new()) };
    /// Spans this thread's ring has evicted to make room ("no silent
    /// caps": truncation is counted, not hidden).
    static RING_DROPPED: Cell<u64> = const { Cell::new(0) };
}

/// A finished span, as recorded in the per-thread ring buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name.
    pub stage: &'static str,
    /// Worker id at the time the span closed, if the thread was tagged.
    pub worker: Option<usize>,
    /// Span duration in nanoseconds.
    pub nanos: u64,
}

/// Returns up to the last [`RING_CAPACITY`] spans finished on this
/// thread, oldest first.
pub fn recent_events() -> Vec<SpanEvent> {
    RING.with(|r| r.borrow().clone())
}

/// How many spans this thread's debug ring has evicted so far. Pairs
/// with [`recent_events`]: a non-zero count means that view lost its
/// oldest history. Collectors active at eviction time also accumulate
/// the loss ([`Collector::dropped_events`]), which is what surfaces in
/// run reports.
pub fn ring_dropped() -> u64 {
    RING_DROPPED.with(|d| d.get())
}

/// The innermost currently-open stage on this thread, if any.
pub fn current_stage() -> Option<&'static str> {
    STAGE_STACK.with(|s| s.borrow().last().copied())
}

/// An RAII guard timing one named stage on the current thread.
///
/// Recording happens on [`finish`](Span::finish) or drop, whichever
/// comes first. `finish` additionally returns the measured duration,
/// which lets callers keep legacy `Duration`-based bookkeeping backed
/// by the span layer.
#[derive(Debug)]
pub struct Span {
    stage: &'static str,
    start: Instant,
    done: bool,
}

impl Span {
    /// Opens a span for `stage` on the current thread.
    pub fn enter(stage: &'static str) -> Span {
        STAGE_STACK.with(|s| s.borrow_mut().push(stage));
        Span {
            stage,
            start: Instant::now(),
            done: false,
        }
    }

    /// Closes the span and returns its duration.
    pub fn finish(mut self) -> Duration {
        self.record()
    }

    fn record(&mut self) -> Duration {
        debug_assert!(!self.done);
        self.done = true;
        let elapsed = self.start.elapsed();
        STAGE_STACK.with(|s| {
            let popped = s.borrow_mut().pop();
            debug_assert_eq!(
                popped,
                Some(self.stage),
                "spans must close in LIFO order on one thread"
            );
        });
        let worker = WORKER.with(|w| w.get());
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let evicted = RING.with(|r| {
            let mut ring = r.borrow_mut();
            let evicted = ring.len() == RING_CAPACITY;
            if evicted {
                ring.remove(0);
            }
            ring.push(SpanEvent {
                stage: self.stage,
                worker,
                nanos,
            });
            evicted
        });
        if evicted {
            RING_DROPPED.with(|d| d.set(d.get() + 1));
        }
        ACTIVE.with(|a| {
            for collector in a.borrow().iter() {
                if evicted {
                    collector.dropped.fetch_add(1, Ordering::Relaxed);
                }
                collector.record_span(self.stage, worker, nanos);
            }
        });
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.record();
        }
    }
}

/// Tags the current thread as pool worker `worker` until the returned
/// guard drops (the previous tag, if any, is restored).
pub fn enter_worker(worker: usize) -> WorkerGuard {
    let prev = WORKER.with(|w| w.replace(Some(worker)));
    WorkerGuard { prev }
}

/// Guard restoring the previous worker tag. See [`enter_worker`].
#[derive(Debug)]
pub struct WorkerGuard {
    prev: Option<usize>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER.with(|w| w.set(self.prev));
    }
}

/// Records `n` injected yields against the current stage and worker in
/// every active collector. Used by the scheduler's adversarial strategy
/// so schedule perturbation shows up in reports.
pub fn record_yields(n: u64) {
    if n == 0 {
        return;
    }
    let stage = current_stage().unwrap_or("task");
    let worker = WORKER.with(|w| w.get());
    ACTIVE.with(|a| {
        for collector in a.borrow().iter() {
            collector.record_yields(stage, worker, n);
        }
    });
}

/// Records `n` successful steals against the current stage and worker in
/// every active collector. Used by the work-stealing scheduler so load
/// imbalance (how much work migrated between workers) shows up in
/// reports.
pub fn record_steals(n: u64) {
    if n == 0 {
        return;
    }
    let stage = current_stage().unwrap_or("task");
    let worker = WORKER.with(|w| w.get());
    ACTIVE.with(|a| {
        for collector in a.borrow().iter() {
            collector.record_steals(stage, worker, n);
        }
    });
}

/// Aggregated totals for one worker within one stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerAgg {
    /// Worker id (from [`enter_worker`]).
    pub worker: usize,
    /// Sum of span durations recorded by this worker, in nanoseconds.
    pub busy_nanos: u64,
    /// Number of spans (≈ tasks) recorded by this worker.
    pub tasks: u64,
    /// Injected yields recorded by this worker.
    pub yields: u64,
    /// Tasks this worker stole from other workers' deques.
    pub steals: u64,
}

/// Aggregated totals for one stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageAgg {
    /// Stage name.
    pub stage: &'static str,
    /// Sum of span durations from *untagged* threads (the orchestrator),
    /// i.e. the stage's wall time when the driver wraps each phase in a
    /// single span.
    pub wall_nanos: u64,
    /// Number of orchestrator spans.
    pub wall_count: u64,
    /// Per-worker aggregates, sorted by worker id.
    pub workers: Vec<WorkerAgg>,
}

impl StageAgg {
    /// Total busy nanoseconds across all workers.
    pub fn worker_busy_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_nanos).sum()
    }

    /// Total task count across all workers.
    pub fn worker_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }
}

#[derive(Default)]
struct CollectorInner {
    stages: Mutex<Vec<StageAgg>>,
    /// Ring evictions observed while this collector was active, summed
    /// across all recording threads.
    dropped: AtomicU64,
}

impl CollectorInner {
    fn with_stage(&self, stage: &'static str, f: impl FnOnce(&mut StageAgg)) {
        let mut stages = self.stages.lock().unwrap();
        let agg = match stages.iter_mut().find(|s| s.stage == stage) {
            Some(agg) => agg,
            None => {
                stages.push(StageAgg {
                    stage,
                    ..StageAgg::default()
                });
                stages.last_mut().unwrap()
            }
        };
        f(agg);
    }

    fn record_span(&self, stage: &'static str, worker: Option<usize>, nanos: u64) {
        self.with_stage(stage, |agg| match worker {
            None => {
                agg.wall_nanos += nanos;
                agg.wall_count += 1;
            }
            Some(w) => {
                let slot = worker_slot(&mut agg.workers, w);
                slot.busy_nanos += nanos;
                slot.tasks += 1;
            }
        });
    }

    fn record_yields(&self, stage: &'static str, worker: Option<usize>, n: u64) {
        self.with_stage(stage, |agg| {
            let w = worker.unwrap_or(0);
            worker_slot(&mut agg.workers, w).yields += n;
        });
    }

    fn record_steals(&self, stage: &'static str, worker: Option<usize>, n: u64) {
        self.with_stage(stage, |agg| {
            let w = worker.unwrap_or(0);
            worker_slot(&mut agg.workers, w).steals += n;
        });
    }
}

fn worker_slot(workers: &mut Vec<WorkerAgg>, w: usize) -> &mut WorkerAgg {
    match workers.binary_search_by_key(&w, |s| s.worker) {
        Ok(i) => &mut workers[i],
        Err(i) => {
            workers.insert(
                i,
                WorkerAgg {
                    worker: w,
                    ..WorkerAgg::default()
                },
            );
            &mut workers[i]
        }
    }
}

/// A process-wide span aggregator.
///
/// Activate it on the orchestrating thread; pool workers join through
/// [`capture_context`]/[`SpanContext::attach`] (done automatically by
/// `ppscan-sched`). Cloning is cheap and clones share the same totals.
#[derive(Clone, Default)]
pub struct Collector {
    inner: Arc<CollectorInner>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Starts receiving spans from the current thread until the guard
    /// drops. Re-activating an already-active collector is a no-op
    /// (idempotent, like `CounterScope` attachment).
    pub fn activate(&self) -> CollectorGuard {
        let installed = ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            if active.iter().any(|c| Arc::ptr_eq(c, &self.inner)) {
                false
            } else {
                active.push(Arc::clone(&self.inner));
                true
            }
        });
        CollectorGuard {
            inner: Arc::clone(&self.inner),
            installed,
        }
    }

    /// A snapshot of the per-stage aggregates, in first-seen stage order.
    pub fn snapshot(&self) -> Vec<StageAgg> {
        self.inner.stages.lock().unwrap().clone()
    }

    /// Debug-ring evictions observed while this collector was active,
    /// across all threads recording into it. Aggregation in the
    /// collector itself is lossless — this counts only lost *ring*
    /// history — but a non-zero value belongs in the run report so the
    /// cap is never silent.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

/// Guard removing the collector from the current thread's active set.
pub struct CollectorGuard {
    inner: Arc<CollectorInner>,
    installed: bool,
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        if self.installed {
            ACTIVE.with(|a| {
                let mut active = a.borrow_mut();
                if let Some(i) = active.iter().position(|c| Arc::ptr_eq(c, &self.inner)) {
                    active.remove(i);
                }
            });
        }
    }
}

/// Captures the current thread's span context — active collectors plus
/// the open stage stack — for transfer to another thread.
pub fn capture_context() -> SpanContext {
    SpanContext {
        collectors: ACTIVE.with(|a| a.borrow().clone()),
        stages: STAGE_STACK.with(|s| s.borrow().clone()),
    }
}

/// A captured span context. See [`capture_context`].
#[derive(Clone)]
pub struct SpanContext {
    collectors: Vec<Arc<CollectorInner>>,
    stages: Vec<&'static str>,
}

impl SpanContext {
    /// Installs the captured context on the current thread until the
    /// guard drops. Collectors already active here are skipped; the
    /// captured stage stack is installed only if this thread has no
    /// open spans (so nesting inside an existing span is preserved).
    pub fn attach(&self) -> SpanContextGuard {
        let installed: Vec<Arc<CollectorInner>> = ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            let mut added = Vec::new();
            for c in &self.collectors {
                if !active.iter().any(|existing| Arc::ptr_eq(existing, c)) {
                    active.push(Arc::clone(c));
                    added.push(Arc::clone(c));
                }
            }
            added
        });
        let stages_installed = STAGE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.is_empty() && !self.stages.is_empty() {
                stack.extend_from_slice(&self.stages);
                true
            } else {
                false
            }
        });
        SpanContextGuard {
            installed,
            stage_depth: if stages_installed {
                self.stages.len()
            } else {
                0
            },
        }
    }
}

/// Guard undoing a [`SpanContext::attach`].
pub struct SpanContextGuard {
    installed: Vec<Arc<CollectorInner>>,
    stage_depth: usize,
}

impl Drop for SpanContextGuard {
    fn drop(&mut self) {
        if self.stage_depth > 0 {
            STAGE_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let new_len = stack.len().saturating_sub(self.stage_depth);
                stack.truncate(new_len);
            });
        }
        if !self.installed.is_empty() {
            ACTIVE.with(|a| {
                let mut active = a.borrow_mut();
                for c in &self.installed {
                    if let Some(i) = active.iter().position(|e| Arc::ptr_eq(e, c)) {
                        active.remove(i);
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn spans_nest_and_aggregate() {
        let collector = Collector::new();
        let _guard = collector.activate();
        {
            let outer = Span::enter("outer");
            assert_eq!(current_stage(), Some("outer"));
            {
                let _inner = Span::enter("inner");
                assert_eq!(current_stage(), Some("inner"));
            }
            assert_eq!(current_stage(), Some("outer"));
            let d = outer.finish();
            assert!(d >= Duration::ZERO);
        }
        assert_eq!(current_stage(), None);
        let snap = collector.snapshot();
        assert_eq!(snap.len(), 2);
        let outer = snap.iter().find(|s| s.stage == "outer").unwrap();
        assert_eq!(outer.wall_count, 1);
        assert!(outer.workers.is_empty());
    }

    #[test]
    fn worker_tag_routes_to_worker_slot() {
        let collector = Collector::new();
        let _guard = collector.activate();
        {
            let _w = enter_worker(3);
            let _span = Span::enter("work");
        }
        let snap = collector.snapshot();
        let work = snap.iter().find(|s| s.stage == "work").unwrap();
        assert_eq!(work.wall_count, 0);
        assert_eq!(work.workers.len(), 1);
        assert_eq!(work.workers[0].worker, 3);
        assert_eq!(work.workers[0].tasks, 1);
    }

    #[test]
    fn context_transfers_to_other_threads() {
        let collector = Collector::new();
        let _guard = collector.activate();
        let phase = Span::enter("phase");
        let ctx = capture_context();
        thread::scope(|scope| {
            for w in 0..4 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    let _worker = enter_worker(w);
                    let _ctx = ctx.attach();
                    // Stage stack transferred: tasks inherit "phase".
                    assert_eq!(current_stage(), Some("phase"));
                    for _ in 0..5 {
                        let _task = Span::enter(current_stage().unwrap());
                    }
                });
            }
        });
        drop(phase);
        let snap = collector.snapshot();
        assert_eq!(snap.len(), 1);
        let agg = &snap[0];
        assert_eq!(agg.stage, "phase");
        assert_eq!(agg.wall_count, 1);
        assert_eq!(agg.workers.len(), 4);
        assert_eq!(agg.worker_tasks(), 20);
    }

    #[test]
    fn activation_is_idempotent() {
        let collector = Collector::new();
        let _g1 = collector.activate();
        {
            let _g2 = collector.activate();
            let _span = Span::enter("once");
        }
        // Inner guard dropped; outer activation must still be live and
        // the span must have been counted exactly once.
        let _span = Span::enter("again");
        drop(_span);
        let snap = collector.snapshot();
        assert_eq!(
            snap.iter().find(|s| s.stage == "once").unwrap().wall_count,
            1
        );
        assert_eq!(
            snap.iter().find(|s| s.stage == "again").unwrap().wall_count,
            1
        );
    }

    #[test]
    fn yields_are_attributed() {
        let collector = Collector::new();
        let _guard = collector.activate();
        {
            let _w = enter_worker(1);
            let _span = Span::enter("stage");
            record_yields(7);
        }
        let snap = collector.snapshot();
        let agg = snap.iter().find(|s| s.stage == "stage").unwrap();
        assert_eq!(agg.workers[0].yields, 7);
    }

    #[test]
    fn steals_are_attributed() {
        let collector = Collector::new();
        let _guard = collector.activate();
        {
            let _w = enter_worker(2);
            let _span = Span::enter("stage");
            record_steals(3);
            record_steals(0); // no-op
        }
        let snap = collector.snapshot();
        let agg = snap.iter().find(|s| s.stage == "stage").unwrap();
        assert_eq!(agg.workers[0].worker, 2);
        assert_eq!(agg.workers[0].steals, 3);
        assert_eq!(agg.workers[0].yields, 0);
    }

    #[test]
    fn ring_buffer_keeps_recent_events() {
        for i in 0..(RING_CAPACITY + 10) {
            let _ = i;
            let _span = Span::enter("ring-test");
        }
        let events = recent_events();
        assert!(events.len() <= RING_CAPACITY);
        assert!(events.iter().filter(|e| e.stage == "ring-test").count() >= RING_CAPACITY / 2);
    }

    /// Overfilling the ring is counted, per-thread and per-collector —
    /// never silent. Runs on a fresh thread so other tests' spans don't
    /// perturb the thread-local baseline.
    #[test]
    fn ring_overfill_is_counted_not_silent() {
        thread::spawn(|| {
            let collector = Collector::new();
            let _guard = collector.activate();
            assert_eq!(ring_dropped(), 0);
            const OVERFILL: usize = 30;
            for _ in 0..(RING_CAPACITY + OVERFILL) {
                let _span = Span::enter("overfill");
            }
            assert_eq!(ring_dropped(), OVERFILL as u64);
            assert_eq!(collector.dropped_events(), OVERFILL as u64);
            // The ring still holds the most recent RING_CAPACITY events
            // and the collector aggregation itself lost nothing.
            assert_eq!(recent_events().len(), RING_CAPACITY);
            let snap = collector.snapshot();
            let agg = snap.iter().find(|s| s.stage == "overfill").unwrap();
            assert_eq!(agg.wall_count, (RING_CAPACITY + OVERFILL) as u64);
        })
        .join()
        .unwrap();
    }

    /// A collector activated after evictions started only counts the
    /// evictions that happen while it is active.
    #[test]
    fn dropped_events_scoped_to_collector_activation() {
        thread::spawn(|| {
            for _ in 0..(RING_CAPACITY + 5) {
                let _span = Span::enter("pre");
            }
            assert_eq!(ring_dropped(), 5);
            let collector = Collector::new();
            let _guard = collector.activate();
            for _ in 0..3 {
                let _span = Span::enter("post");
            }
            assert_eq!(collector.dropped_events(), 3);
            assert_eq!(ring_dropped(), 8);
        })
        .join()
        .unwrap();
    }
}
