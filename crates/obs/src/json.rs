//! Hand-rolled JSON, in the spirit of the graph crate's hand-rolled
//! binary IO: the report format needs serialization *and* parsing without
//! external crates (the container has no cargo registry).
//!
//! Two deliberate deviations from a general-purpose JSON library keep
//! round-trips exact, which the report tooling relies on
//! (serialize → parse → equal):
//!
//! * Integers and floats are distinct variants. A number token without
//!   `.`/`e`/`E` parses as [`Json::Int`]; everything else as
//!   [`Json::Num`], serialized with Rust's shortest-round-trip float
//!   formatting.
//! * Objects preserve insertion order (a `Vec` of pairs, not a hash map),
//!   so serialized reports are stable and diffable.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional or exponent part. Wide enough
    /// (`i128`) to hold the full `u64` counter range losslessly.
    Int(i128),
    /// A finite floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64` (integers only — floats are not truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (accepts both numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Lossless `u64` → `Json` (the `Int` variant is `i128`-wide).
    pub fn from_u64(v: u64) -> Json {
        Json::Int(v as i128)
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the on-disk report format.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out.push('\n');
        out
    }
}

fn write_value(out: &mut String, v: &Json, indent: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(f) => {
            debug_assert!(f.is_finite(), "JSON cannot represent {f}");
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same f64 — exact round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid; find the char at this offset).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers that overflow i128 fall back to f64 (lossy, but
            // only reachable with inputs this crate never writes).
            match text.parse::<i128>() {
                Ok(v) => Ok(Json::Int(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_pretty_string();
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(&parsed, v, "round-trip mismatch for\n{text}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX as i128),
            Json::Int(i64::MIN as i128),
            Json::Int(u64::MAX as i128),
            Json::Num(0.5),
            Json::Num(-1.25e-9),
            Json::Num(1e300),
            Json::Str(String::new()),
            Json::Str("plain".into()),
            Json::Str("esc \"quotes\" \\ \n \t \r \u{1} snowman ☃".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = Json::Obj(vec![
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "nested".into(),
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Num(2.5),
                    Json::Obj(vec![("k".into(), Json::Null)]),
                ]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(parse("1").unwrap(), Json::Int(1));
        assert_eq!(parse("1.0").unwrap(), Json::Num(1.0));
        assert_eq!(parse("1e0").unwrap(), Json::Num(1.0));
    }

    #[test]
    fn object_order_preserved() {
        let v = parse(r#"{"b": 1, "a": 2}"#).unwrap();
        match &v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "b");
                assert_eq!(fields[1].0, "a");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn surrogate_pair_escape() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v, Json::Str("😀".into()));
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in ["", "{", "[1,]", "tru", "\"abc", "1 2", r#"{"a" 1}"#, "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "f": 0.5, "s": "x", "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::from_u64(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Json::from_u64(u64::MAX).as_i64(), None);
    }
}
