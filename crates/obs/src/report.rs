//! Machine-readable run reports.
//!
//! A [`RunReport`] is the unified record of one algorithm run: the
//! configuration it ran under, the shape of the input graph, per-phase
//! timings (sourced from the span layer), kernel counters, and
//! free-form extras. A [`FigureReport`] wraps the runs behind one bench
//! figure together with the rendered table, so baseline diffs can work
//! off the same file the harness emits.
//!
//! Serialization is the hand-rolled [`crate::json`] layer; the schema
//! is versioned via the `schema` field (currently 2) and documented in
//! DESIGN.md. Schema 2 adds the optional `timeline` array of
//! [`MetricsSnapshot`]s (live-metrics samples from long-running serve
//! benches); schema-1 files still parse, and a parsed report keeps the
//! schema it was written with so old baselines round-trip exactly.

use crate::json::{self, Json, JsonError};
use crate::registry::{self, MetricsSnapshot};
use crate::span::StageAgg;
use std::io;
use std::path::Path;

/// Report schema version written by this crate.
pub const SCHEMA_VERSION: u32 = 2;

/// Oldest report schema this crate still parses.
pub const MIN_SCHEMA_VERSION: u32 = 1;

fn check_schema(schema: u32) -> Result<(), String> {
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
        return Err(format!(
            "unsupported report schema {schema} (accepted {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
        ));
    }
    Ok(())
}

/// Vertex/edge counts of the input graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphShape {
    /// Number of vertices.
    pub vertices: u64,
    /// Number of undirected edges.
    pub edges: u64,
}

/// Aggregated kernel counters (see `ppscan_intersect::counters`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Similarity-kernel invocations.
    pub compsim_invocations: u64,
    /// Adjacency-list elements scanned by the kernels.
    pub elements_scanned: u64,
    /// Adaptive-kernel invocations routed to galloping (0 unless the
    /// adaptive kernel ran). Serialized only when nonzero, parsed with a
    /// default of 0, so schema 1 files stay round-trip exact.
    pub adaptive_gallop: u64,
    /// Adaptive-kernel invocations routed to the block kernel (0 unless
    /// the adaptive kernel ran).
    pub adaptive_block: u64,
    /// Pairs sampled while building the autotune plan (0 unless the
    /// autotuned kernel ran). Like the adaptive mix, every autotune
    /// counter serializes only when nonzero and parses with a default
    /// of 0, so older baselines stay round-trip exact.
    pub autotune_samples: u64,
    /// Size/skew buckets the autotune plan measured a winner for.
    pub autotune_buckets: u64,
    /// Autotune buckets won by the merge kernel.
    pub autotune_wins_merge: u64,
    /// Autotune buckets won by the galloping kernel.
    pub autotune_wins_gallop: u64,
    /// Autotune buckets won by the best block/pivot kernel.
    pub autotune_wins_block: u64,
    /// Autotune buckets won by the FESIA hash kernel.
    pub autotune_wins_fesia: u64,
    /// Autotune buckets won by the shuffling kernel.
    pub autotune_wins_shuffle: u64,
    /// Autotuned dispatches routed by a measured bucket winner.
    pub autotune_planned: u64,
    /// Autotuned dispatches that fell back to the adaptive rule.
    pub autotune_fallback: u64,
}

/// Per-worker totals within one phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Worker id.
    pub worker: u64,
    /// Nanoseconds this worker spent in tasks of this phase.
    pub busy_nanos: u64,
    /// Tasks this worker executed in this phase.
    pub tasks: u64,
    /// Injected scheduler yields attributed to this worker.
    pub yields: u64,
    /// Tasks this worker stole from other workers' deques (serialized
    /// only when nonzero; defaults to 0 on parse).
    pub steals: u64,
}

/// One algorithm phase: wall time plus per-worker breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseMetrics {
    /// Phase name (kebab-case, e.g. `"similarity-pruning"`).
    pub name: String,
    /// Wall-clock nanoseconds of the phase (orchestrator span).
    pub wall_nanos: u64,
    /// Total tasks executed in the phase, across workers.
    pub tasks: u64,
    /// Per-worker totals (empty for sequential or uninstrumented runs).
    pub workers: Vec<WorkerMetrics>,
}

/// The unified machine-readable record of one algorithm run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Algorithm name (`"ppscan"`, `"pscan"`, `"scan"`, ...).
    pub algorithm: String,
    /// Dataset name, when known.
    pub dataset: Option<String>,
    /// Worker-thread count, when known.
    pub threads: Option<u64>,
    /// Similarity-kernel name, when known.
    pub kernel: Option<String>,
    /// Execution strategy (`"parallel"`, `"sequential"`,
    /// `"adversarial(N)"`), when known.
    pub strategy: Option<String>,
    /// Degree threshold for kernel dispatch, when known.
    pub degree_threshold: Option<u64>,
    /// ε parameter.
    pub eps: Option<f64>,
    /// µ parameter.
    pub mu: Option<u64>,
    /// Input graph shape.
    pub graph: Option<GraphShape>,
    /// End-to-end wall time of the run, in nanoseconds.
    pub wall_nanos: u64,
    /// Per-phase metrics, in execution order.
    pub phases: Vec<PhaseMetrics>,
    /// Kernel counters observed during the run.
    pub counters: KernelCounters,
    /// Live-metrics timeline sampled during the run (schema 2; empty
    /// for ordinary one-shot runs and serialized only when non-empty,
    /// so schema-1 files stay round-trip exact).
    pub timeline: Vec<MetricsSnapshot>,
    /// Data races found by the [`crate::race`] detector during the run.
    /// Empty for ordinary runs; serialized only when non-empty (each
    /// entry carries its own `version`), so older files stay
    /// round-trip exact. `report_check` fails on any embedded race.
    pub races: Vec<crate::race::RaceReport>,
    /// Free-form extras (insertion-ordered key/value pairs).
    pub extra: Vec<(String, Json)>,
}

impl RunReport {
    /// A fresh report for `algorithm` with the current schema version.
    pub fn new(algorithm: impl Into<String>) -> RunReport {
        RunReport {
            schema: SCHEMA_VERSION,
            algorithm: algorithm.into(),
            ..RunReport::default()
        }
    }

    /// Sets the dataset name.
    pub fn with_dataset(mut self, dataset: impl Into<String>) -> Self {
        self.dataset = Some(dataset.into());
        self
    }

    /// Sets the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads as u64);
        self
    }

    /// Sets the kernel name.
    pub fn with_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.kernel = Some(kernel.into());
        self
    }

    /// Sets the execution strategy.
    pub fn with_strategy(mut self, strategy: impl Into<String>) -> Self {
        self.strategy = Some(strategy.into());
        self
    }

    /// Sets the degree threshold.
    pub fn with_degree_threshold(mut self, t: u64) -> Self {
        self.degree_threshold = Some(t);
        self
    }

    /// Sets ε and µ.
    pub fn with_params(mut self, eps: f64, mu: u64) -> Self {
        self.eps = Some(eps);
        self.mu = Some(mu);
        self
    }

    /// Sets the graph shape.
    pub fn with_graph(mut self, vertices: u64, edges: u64) -> Self {
        self.graph = Some(GraphShape { vertices, edges });
        self
    }

    /// Appends a free-form extra.
    pub fn push_extra(&mut self, key: impl Into<String>, value: Json) {
        self.extra.push((key.into(), value));
    }

    /// Converts span-layer aggregates into phase metrics, preserving
    /// stage order.
    pub fn phases_from(stages: &[StageAgg]) -> Vec<PhaseMetrics> {
        stages
            .iter()
            .map(|s| PhaseMetrics {
                name: s.stage.to_string(),
                wall_nanos: s.wall_nanos,
                tasks: s.worker_tasks(),
                workers: s
                    .workers
                    .iter()
                    .map(|w| WorkerMetrics {
                        worker: w.worker as u64,
                        busy_nanos: w.busy_nanos,
                        tasks: w.tasks,
                        yields: w.yields,
                        steals: w.steals,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Looks up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Serializes to a [`Json`] value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::Int(self.schema as i128)),
            ("algorithm".into(), Json::Str(self.algorithm.clone())),
        ];
        push_opt_str(&mut fields, "dataset", &self.dataset);
        push_opt_u64(&mut fields, "threads", self.threads);
        push_opt_str(&mut fields, "kernel", &self.kernel);
        push_opt_str(&mut fields, "strategy", &self.strategy);
        push_opt_u64(&mut fields, "degree_threshold", self.degree_threshold);
        if let Some(eps) = self.eps {
            fields.push(("eps".into(), Json::Num(eps)));
        }
        push_opt_u64(&mut fields, "mu", self.mu);
        if let Some(g) = self.graph {
            fields.push((
                "graph".into(),
                Json::Obj(vec![
                    ("vertices".into(), Json::from_u64(g.vertices)),
                    ("edges".into(), Json::from_u64(g.edges)),
                ]),
            ));
        }
        fields.push(("wall_nanos".into(), Json::from_u64(self.wall_nanos)));
        fields.push((
            "phases".into(),
            Json::Arr(self.phases.iter().map(phase_to_json).collect()),
        ));
        let mut counters = vec![
            (
                "compsim_invocations".into(),
                Json::from_u64(self.counters.compsim_invocations),
            ),
            (
                "elements_scanned".into(),
                Json::from_u64(self.counters.elements_scanned),
            ),
        ];
        if self.counters.adaptive_gallop != 0 {
            counters.push((
                "adaptive_gallop".into(),
                Json::from_u64(self.counters.adaptive_gallop),
            ));
        }
        if self.counters.adaptive_block != 0 {
            counters.push((
                "adaptive_block".into(),
                Json::from_u64(self.counters.adaptive_block),
            ));
        }
        for (name, value) in [
            ("autotune_samples", self.counters.autotune_samples),
            ("autotune_buckets", self.counters.autotune_buckets),
            ("autotune_wins_merge", self.counters.autotune_wins_merge),
            ("autotune_wins_gallop", self.counters.autotune_wins_gallop),
            ("autotune_wins_block", self.counters.autotune_wins_block),
            ("autotune_wins_fesia", self.counters.autotune_wins_fesia),
            ("autotune_wins_shuffle", self.counters.autotune_wins_shuffle),
            ("autotune_planned", self.counters.autotune_planned),
            ("autotune_fallback", self.counters.autotune_fallback),
        ] {
            if value != 0 {
                counters.push((name.into(), Json::from_u64(value)));
            }
        }
        fields.push(("counters".into(), Json::Obj(counters)));
        if !self.timeline.is_empty() {
            fields.push((
                "timeline".into(),
                registry::timeline_to_json(&self.timeline),
            ));
        }
        if !self.races.is_empty() {
            fields.push((
                "races".into(),
                Json::Arr(self.races.iter().map(|r| r.to_json()).collect()),
            ));
        }
        if !self.extra.is_empty() {
            fields.push(("extra".into(), Json::Obj(self.extra.clone())));
        }
        Json::Obj(fields)
    }

    /// Deserializes from a [`Json`] value. The parsed report keeps the
    /// schema version it was written with, so re-serializing an old
    /// baseline reproduces it byte-identically.
    pub fn from_json(v: &Json) -> Result<RunReport, String> {
        let schema = req_u64(v, "schema")? as u32;
        check_schema(schema)?;
        let mut report = RunReport::new(req_str(v, "algorithm")?);
        report.schema = schema;
        report.dataset = opt_str(v, "dataset");
        report.threads = opt_u64(v, "threads");
        report.kernel = opt_str(v, "kernel");
        report.strategy = opt_str(v, "strategy");
        report.degree_threshold = opt_u64(v, "degree_threshold");
        report.eps = v.get("eps").and_then(Json::as_f64);
        report.mu = opt_u64(v, "mu");
        if let Some(g) = v.get("graph") {
            report.graph = Some(GraphShape {
                vertices: req_u64(g, "vertices")?,
                edges: req_u64(g, "edges")?,
            });
        }
        report.wall_nanos = req_u64(v, "wall_nanos")?;
        for p in v
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("missing phases array")?
        {
            report.phases.push(phase_from_json(p)?);
        }
        let counters = v.get("counters").ok_or("missing counters object")?;
        report.counters = KernelCounters {
            compsim_invocations: req_u64(counters, "compsim_invocations")?,
            elements_scanned: req_u64(counters, "elements_scanned")?,
            adaptive_gallop: opt_u64(counters, "adaptive_gallop").unwrap_or(0),
            adaptive_block: opt_u64(counters, "adaptive_block").unwrap_or(0),
            autotune_samples: opt_u64(counters, "autotune_samples").unwrap_or(0),
            autotune_buckets: opt_u64(counters, "autotune_buckets").unwrap_or(0),
            autotune_wins_merge: opt_u64(counters, "autotune_wins_merge").unwrap_or(0),
            autotune_wins_gallop: opt_u64(counters, "autotune_wins_gallop").unwrap_or(0),
            autotune_wins_block: opt_u64(counters, "autotune_wins_block").unwrap_or(0),
            autotune_wins_fesia: opt_u64(counters, "autotune_wins_fesia").unwrap_or(0),
            autotune_wins_shuffle: opt_u64(counters, "autotune_wins_shuffle").unwrap_or(0),
            autotune_planned: opt_u64(counters, "autotune_planned").unwrap_or(0),
            autotune_fallback: opt_u64(counters, "autotune_fallback").unwrap_or(0),
        };
        if let Some(timeline) = v.get("timeline") {
            report.timeline = registry::timeline_from_json(timeline)?;
        }
        if let Some(races) = v.get("races").and_then(Json::as_arr) {
            for r in races {
                report.races.push(crate::race::RaceReport::from_json(r)?);
            }
        }
        if let Some(Json::Obj(extra)) = v.get("extra") {
            report.extra = extra.clone();
        }
        Ok(report)
    }

    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let v = json::parse(text).map_err(|e: JsonError| e.to_string())?;
        RunReport::from_json(&v)
    }

    /// Serializes to pretty JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_json_file(path.as_ref(), &self.to_json())
    }
}

fn phase_to_json(p: &PhaseMetrics) -> Json {
    let mut fields = vec![
        ("name".into(), Json::Str(p.name.clone())),
        ("wall_nanos".into(), Json::from_u64(p.wall_nanos)),
        ("tasks".into(), Json::from_u64(p.tasks)),
    ];
    if !p.workers.is_empty() {
        fields.push((
            "workers".into(),
            Json::Arr(
                p.workers
                    .iter()
                    .map(|w| {
                        let mut fields = vec![
                            ("worker".into(), Json::from_u64(w.worker)),
                            ("busy_nanos".into(), Json::from_u64(w.busy_nanos)),
                            ("tasks".into(), Json::from_u64(w.tasks)),
                            ("yields".into(), Json::from_u64(w.yields)),
                        ];
                        if w.steals != 0 {
                            fields.push(("steals".into(), Json::from_u64(w.steals)));
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

fn phase_from_json(v: &Json) -> Result<PhaseMetrics, String> {
    let mut phase = PhaseMetrics {
        name: req_str(v, "name")?,
        wall_nanos: req_u64(v, "wall_nanos")?,
        tasks: req_u64(v, "tasks")?,
        workers: Vec::new(),
    };
    if let Some(workers) = v.get("workers").and_then(Json::as_arr) {
        for w in workers {
            phase.workers.push(WorkerMetrics {
                worker: req_u64(w, "worker")?,
                busy_nanos: req_u64(w, "busy_nanos")?,
                tasks: req_u64(w, "tasks")?,
                yields: req_u64(w, "yields")?,
                steals: opt_u64(w, "steals").unwrap_or(0),
            });
        }
    }
    Ok(phase)
}

/// A figure-level report: shared context, the rendered table, and the
/// individual [`RunReport`]s behind it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FigureReport {
    /// Figure name (bench binary name, e.g. `"fig1_breakdown"`).
    pub figure: String,
    /// Figure-level context (scale, flag values, ...).
    pub context: Vec<(String, Json)>,
    /// The rendered results table, when the figure prints one.
    pub table: Option<TableData>,
    /// The runs behind the figure.
    pub runs: Vec<RunReport>,
}

/// A rendered results table, as printed by the bench harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TableData {
    /// Column headers.
    pub header: Vec<String>,
    /// Row cells (stringly typed, exactly as printed).
    pub rows: Vec<Vec<String>>,
}

impl FigureReport {
    /// A fresh figure report.
    pub fn new(figure: impl Into<String>) -> FigureReport {
        FigureReport {
            figure: figure.into(),
            ..FigureReport::default()
        }
    }

    /// Serializes to a [`Json`] value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::Int(SCHEMA_VERSION as i128)),
            ("figure".into(), Json::Str(self.figure.clone())),
        ];
        if !self.context.is_empty() {
            fields.push(("context".into(), Json::Obj(self.context.clone())));
        }
        if let Some(t) = &self.table {
            fields.push((
                "table".into(),
                Json::Obj(vec![
                    (
                        "header".into(),
                        Json::Arr(t.header.iter().cloned().map(Json::Str).collect()),
                    ),
                    (
                        "rows".into(),
                        Json::Arr(
                            t.rows
                                .iter()
                                .map(|r| Json::Arr(r.iter().cloned().map(Json::Str).collect()))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        fields.push((
            "runs".into(),
            Json::Arr(self.runs.iter().map(RunReport::to_json).collect()),
        ));
        Json::Obj(fields)
    }

    /// Deserializes from a [`Json`] value.
    pub fn from_json(v: &Json) -> Result<FigureReport, String> {
        check_schema(req_u64(v, "schema")? as u32)?;
        let mut report = FigureReport::new(req_str(v, "figure")?);
        if let Some(Json::Obj(ctx)) = v.get("context") {
            report.context = ctx.clone();
        }
        if let Some(t) = v.get("table") {
            let header = str_arr(t.get("header").ok_or("table missing header")?)?;
            let mut rows = Vec::new();
            for r in t
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or("table missing rows")?
            {
                rows.push(str_arr(r)?);
            }
            report.table = Some(TableData { header, rows });
        }
        for r in v
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("missing runs array")?
        {
            report.runs.push(RunReport::from_json(r)?);
        }
        Ok(report)
    }

    /// Parses a figure report from JSON text.
    pub fn parse(text: &str) -> Result<FigureReport, String> {
        let v = json::parse(text).map_err(|e: JsonError| e.to_string())?;
        FigureReport::from_json(&v)
    }

    /// Serializes to pretty JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_json_file(path.as_ref(), &self.to_json())
    }
}

fn write_json_file(path: &Path, v: &Json) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, v.to_pretty_string())
}

fn push_opt_str(fields: &mut Vec<(String, Json)>, key: &str, v: &Option<String>) {
    if let Some(s) = v {
        fields.push((key.into(), Json::Str(s.clone())));
    }
}

fn push_opt_u64(fields: &mut Vec<(String, Json)>, key: &str, v: Option<u64>) {
    if let Some(n) = v {
        fields.push((key.into(), Json::from_u64(n)));
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn opt_str(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_string)
}

fn opt_u64(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

fn str_arr(v: &Json) -> Result<Vec<String>, String> {
    v.as_arr()
        .ok_or("expected string array")?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| "expected string array".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — the same seeded generator the stress driver uses.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn chance(&mut self, pct: u64) -> bool {
            self.below(100) < pct
        }
    }

    fn arbitrary_report(rng: &mut Rng) -> RunReport {
        let algorithms = ["ppscan", "pscan", "scan", "scanpp", "scanxp", "anyscan"];
        let mut r = RunReport::new(algorithms[rng.below(algorithms.len() as u64) as usize]);
        if rng.chance(70) {
            r.dataset = Some(format!("dataset-{}", rng.below(5)));
        }
        if rng.chance(70) {
            r.threads = Some(1 + rng.below(64));
        }
        if rng.chance(70) {
            r.kernel = Some("pivot-avx2".into());
        }
        if rng.chance(50) {
            r.strategy = Some(format!("adversarial({})", rng.next()));
        }
        if rng.chance(50) {
            r.degree_threshold = Some(rng.next());
        }
        if rng.chance(80) {
            // Round-trippable f64 from bits of the generator.
            r.eps = Some((rng.below(1000) as f64) / 1000.0);
            r.mu = Some(2 + rng.below(20));
        }
        if rng.chance(80) {
            r.graph = Some(GraphShape {
                vertices: rng.below(1 << 40),
                edges: rng.below(1 << 40),
            });
        }
        r.wall_nanos = rng.next() >> 1;
        for p in 0..rng.below(6) {
            let mut phase = PhaseMetrics {
                name: format!("phase-{p}"),
                wall_nanos: rng.below(1 << 40),
                tasks: rng.below(1 << 30),
                workers: Vec::new(),
            };
            for w in 0..rng.below(5) {
                phase.workers.push(WorkerMetrics {
                    worker: w,
                    busy_nanos: rng.below(1 << 40),
                    tasks: rng.below(1 << 20),
                    yields: rng.below(1 << 10),
                    // Often zero, so the emit-iff-nonzero path is covered.
                    steals: rng.below(3),
                });
            }
            r.phases.push(phase);
        }
        r.counters = KernelCounters {
            compsim_invocations: rng.next() >> 1,
            elements_scanned: rng.next() >> 1,
            adaptive_gallop: rng.below(3) * rng.below(1 << 20),
            adaptive_block: rng.below(3) * rng.below(1 << 20),
            autotune_samples: rng.below(3) * rng.below(1 << 12),
            autotune_buckets: rng.below(3) * rng.below(72),
            autotune_wins_merge: rng.below(3) * rng.below(16),
            autotune_wins_gallop: rng.below(3) * rng.below(16),
            autotune_wins_block: rng.below(3) * rng.below(16),
            autotune_wins_fesia: rng.below(3) * rng.below(16),
            autotune_wins_shuffle: rng.below(3) * rng.below(16),
            autotune_planned: rng.below(3) * rng.below(1 << 20),
            autotune_fallback: rng.below(3) * rng.below(1 << 20),
        };
        if rng.chance(30) {
            // Schema-2 live-metrics timeline.
            for _ in 0..1 + rng.below(4) {
                r.timeline
                    .push(crate::registry::arbitrary_snapshot(rng.next()));
            }
        }
        if rng.chance(40) {
            r.push_extra("seed", Json::from_u64(rng.next()));
            r.push_extra(
                "note",
                Json::Str("weird \"chars\" \\ \n\t and ☃ unicode".into()),
            );
            r.push_extra(
                "list",
                Json::Arr(vec![Json::Int(1), Json::Num(0.5), Json::Null]),
            );
        }
        r
    }

    #[test]
    fn run_report_roundtrip_property() {
        let mut rng = Rng(0x0b5e_cafe);
        for case in 0..200 {
            let report = arbitrary_report(&mut rng);
            let text = report.to_json_string();
            let parsed = RunReport::parse(&text)
                .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
            assert_eq!(parsed, report, "case {case} round-trip mismatch");
        }
    }

    #[test]
    fn figure_report_roundtrip_property() {
        let mut rng = Rng(0xfee1_600d);
        for case in 0..50 {
            let mut fig = FigureReport::new(format!("fig{}", rng.below(9)));
            fig.context.push(("scale".into(), Json::Num(0.1)));
            fig.context
                .push(("quick".into(), Json::Bool(rng.chance(50))));
            if rng.chance(80) {
                fig.table = Some(TableData {
                    header: vec!["dataset".into(), "time (s)".into()],
                    rows: (0..rng.below(4))
                        .map(|i| vec![format!("d{i}"), format!("{}.{:03}", i, i * 7)])
                        .collect(),
                });
            }
            for _ in 0..rng.below(4) {
                fig.runs.push(arbitrary_report(&mut rng));
            }
            let text = fig.to_json_string();
            let parsed = FigureReport::parse(&text)
                .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
            assert_eq!(parsed, fig, "case {case} round-trip mismatch");
        }
    }

    #[test]
    fn phases_from_stage_aggregates() {
        use crate::span::{enter_worker, Collector, Span};
        let collector = Collector::new();
        let guard = collector.activate();
        {
            let _phase = Span::enter("alpha");
            let _w = enter_worker(2);
            let _t1 = Span::enter("alpha");
        }
        drop(guard);
        let phases = RunReport::phases_from(&collector.snapshot());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "alpha");
        assert_eq!(phases[0].tasks, 1);
        assert_eq!(phases[0].workers.len(), 1);
        assert_eq!(phases[0].workers[0].worker, 2);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut r = RunReport::new("ppscan");
        r.schema = 99;
        let text = r.to_json_string();
        assert!(RunReport::parse(&text).is_err());
    }

    /// A schema-1 file (pre-timeline baseline) still parses, keeps its
    /// schema, and re-serializes byte-identically.
    #[test]
    fn schema_1_reports_stay_roundtrip_exact() {
        let mut r = RunReport::new("ppscan").with_threads(4);
        r.wall_nanos = 1234;
        r.schema = 1;
        let text = r.to_json_string();
        assert!(text.contains("\"schema\": 1"));
        let parsed = RunReport::parse(&text).unwrap();
        assert_eq!(parsed.schema, 1);
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn timeline_serializes_iff_nonempty() {
        let mut r = RunReport::new("soak");
        assert!(!r.to_json_string().contains("timeline"));
        r.timeline.push(crate::registry::arbitrary_snapshot(42));
        let text = r.to_json_string();
        assert!(text.contains("timeline"));
        let parsed = RunReport::parse(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.schema, SCHEMA_VERSION);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ppscan-obs-test");
        let path = dir.join("nested").join("report.json");
        let report = RunReport::new("scan").with_params(0.5, 5).with_threads(4);
        report.write_to_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunReport::parse(&text).unwrap(), report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
