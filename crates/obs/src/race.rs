//! FastTrack-style happens-before race detection for *real* executions.
//!
//! `ppscan-check` exhaustively explores tiny modeled scenarios; this
//! module is the complementary dynamic analysis: it watches one actual
//! run (under any [`ExecutionStrategy`], including real `Parallel`
//! threads) and reports happens-before data races on the non-atomic
//! payloads the lock-free protocols guard.
//!
//! # Model
//!
//! * Every participating thread carries a **vector clock** `C_t`.
//! * Every *synchronizing* atomic location carries a release clock `L`,
//!   maintained **per store** (the TSan `ReleaseStore` rule): a
//!   `Release`/`AcqRel`/`SeqCst` *store* **replaces** `L` with the
//!   writer's clock — a plain store starts a fresh release sequence, so
//!   it must not carry earlier, unrelated writers' clocks — while a
//!   *successful* release RMW **joins** its clock into `L`, because an
//!   RMW continues the release sequence of the store it read from. An
//!   `Acquire`/`AcqRel`/`SeqCst` load joins `L` into the reader's
//!   clock; `Relaxed` accesses induce no edge. (An earlier revision
//!   joined on every release store, so `L` accumulated across writers
//!   and an acquire load inherited the clock of *every* past releaser,
//!   not just the one it read from — over-synchronizing, which can only
//!   hide races. The per-store clock drops exactly those phantom edges.
//!   We still don't track *which* store a load read from: hooks
//!   serialize through the session lock, and a load is credited with
//!   the latest store in that order — the remaining, strictly smaller
//!   over-approximation of C++ synchronizes-with.)
//! * The worker pool contributes **fork edges** (submitter → every
//!   task, recorded when a worker takes or *steals* the task) and
//!   **join edges** (every task → the submitter's post-barrier
//!   continuation) via [`ForkPoint`].
//! * Every **shadow-tracked data location** (see [`ShadowCell`])
//!   carries FastTrack state: a last-write *epoch* `(t, c)` and a read
//!   state that is a single epoch until two threads read concurrently,
//!   at which point it widens to a full read vector clock. A write must
//!   happen-after the last write and all reads; a read must
//!   happen-after the last write. Violations are recorded as
//!   [`RaceReport`]s.
//!
//! Detection is scoped by a [`DetectionSession`]: while one is active
//! (process-global, sessions serialize on a gate so parallel tests
//! cannot cross-talk), the traced substrates
//! (`ppscan_unionfind::traced`) and the pool hooks feed this module;
//! when no session is active every hook is a single relaxed flag load.
//!
//! `ExecutionStrategy` is defined in `ppscan-sched`; this crate only
//! names it in docs.

use crate::json::{self, Json};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Schema version of [`RaceReport`].
pub const RACE_REPORT_VERSION: u32 = 1;

/// How many recent atomic-op sites each thread keeps as provenance for
/// race reports.
const PROVENANCE_DEPTH: usize = 16;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Vector clocks and epochs
// ---------------------------------------------------------------------

/// A vector clock over thread slots. Slots are assigned densely per
/// [`DetectionSession`], so clocks stay short (one entry per thread
/// that actually participated).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock(Vec::new())
    }

    /// Component for thread slot `t` (0 when never ticked).
    pub fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Sets component `t` to `v` (growing as needed).
    pub fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Pointwise maximum: `self ⊔= other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self ⊑ other` pointwise.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }

    /// The raw components (for serialization).
    pub fn components(&self) -> &[u64] {
        &self.0
    }
}

/// A FastTrack epoch: one thread's clock component at an access,
/// written `c@t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochStamp {
    /// Thread slot.
    pub tid: usize,
    /// That thread's clock component at the access.
    pub clock: u64,
}

impl EpochStamp {
    fn happens_before(&self, c: &VectorClock) -> bool {
        self.clock <= c.get(self.tid)
    }
}

// ---------------------------------------------------------------------
// Race reports
// ---------------------------------------------------------------------

/// One side of a racy access pair.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RaceAccess {
    /// Thread slot of the access.
    pub thread: u64,
    /// That thread's clock component at the access.
    pub clock: u64,
    /// Whether the access was a write.
    pub write: bool,
    /// Source-level site label of the access.
    pub site: String,
    /// The accessing thread's recent atomic-op provenance (most recent
    /// last): the trail of traced sync/shadow operations leading up to
    /// the access.
    pub recent_ops: Vec<String>,
    /// The accessing thread's vector clock (full clock for the
    /// detecting access; reconstructed-from-epoch for the earlier one).
    pub vector_clock: Vec<u64>,
}

/// A detected happens-before data race, versioned for embedding in
/// [`crate::RunReport`]s (`races` array, serialized only when
/// non-empty).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RaceReport {
    /// Schema version ([`RACE_REPORT_VERSION`]).
    pub version: u32,
    /// Label of the shadow location both accesses touched.
    pub location: String,
    /// `"write-write"`, `"read-write"`, or `"write-read"` (earlier
    /// access first).
    pub kind: String,
    /// The earlier access of the unordered pair.
    pub first: RaceAccess,
    /// The access that detected the race.
    pub second: RaceAccess,
}

impl RaceReport {
    /// Serializes to a [`Json`] value.
    pub fn to_json(&self) -> Json {
        fn access(a: &RaceAccess) -> Json {
            Json::Obj(vec![
                ("thread".into(), Json::from_u64(a.thread)),
                ("clock".into(), Json::from_u64(a.clock)),
                ("write".into(), Json::Bool(a.write)),
                ("site".into(), Json::Str(a.site.clone())),
                (
                    "recent_ops".into(),
                    Json::Arr(a.recent_ops.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "vector_clock".into(),
                    Json::Arr(a.vector_clock.iter().map(|&v| Json::from_u64(v)).collect()),
                ),
            ])
        }
        Json::Obj(vec![
            ("version".into(), Json::Int(self.version as i128)),
            ("location".into(), Json::Str(self.location.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("first".into(), access(&self.first)),
            ("second".into(), access(&self.second)),
        ])
    }

    /// Deserializes from a [`Json`] value.
    pub fn from_json(v: &Json) -> Result<RaceReport, String> {
        fn access(v: &Json) -> Result<RaceAccess, String> {
            let u64s = |key: &str| -> Result<u64, String> {
                v.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("race access missing {key}"))
            };
            let arr = |key: &str| v.get(key).and_then(Json::as_arr);
            Ok(RaceAccess {
                thread: u64s("thread")?,
                clock: u64s("clock")?,
                write: matches!(v.get("write"), Some(Json::Bool(true))),
                site: v
                    .get("site")
                    .and_then(Json::as_str)
                    .ok_or("race access missing site")?
                    .to_string(),
                recent_ops: arr("recent_ops")
                    .map(|a| {
                        a.iter()
                            .filter_map(|e| e.as_str().map(str::to_string))
                            .collect()
                    })
                    .unwrap_or_default(),
                vector_clock: arr("vector_clock")
                    .map(|a| a.iter().filter_map(Json::as_u64).collect())
                    .unwrap_or_default(),
            })
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("race report missing {key}"))
        };
        Ok(RaceReport {
            version: v
                .get("version")
                .and_then(Json::as_u64)
                .ok_or("race report missing version")? as u32,
            location: str_field("location")?,
            kind: str_field("kind")?,
            first: access(v.get("first").ok_or("race report missing first")?)?,
            second: access(v.get("second").ok_or("race report missing second")?)?,
        })
    }

    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<RaceReport, String> {
        RaceReport::from_json(&json::parse(text).map_err(|e| e.to_string())?)
    }

    /// Serializes to pretty JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }
}

// ---------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------

/// FastTrack read state of a shadow location.
#[derive(Clone, Debug)]
enum ReadState {
    /// No read since the last write.
    None,
    /// All reads since the last write are totally ordered: keep just
    /// the last one (the FastTrack same-epoch fast path).
    Epoch(EpochStamp, &'static str),
    /// Concurrent readers: full read clock plus per-thread site labels.
    Shared(VectorClock, HashMap<usize, &'static str>),
}

#[derive(Clone, Debug)]
struct ShadowVar {
    label: &'static str,
    write: Option<(EpochStamp, &'static str)>,
    read: ReadState,
}

#[derive(Default)]
struct ThreadState {
    clock: VectorClock,
    recent_ops: Vec<String>,
}

impl ThreadState {
    fn note_op(&mut self, op: String) {
        if self.recent_ops.len() == PROVENANCE_DEPTH {
            self.recent_ops.remove(0);
        }
        self.recent_ops.push(op);
    }
}

#[derive(Default)]
struct SessionState {
    /// Monotone id distinguishing sessions, so stale thread-local slot
    /// assignments from a previous session are never reused.
    id: u64,
    threads: Vec<ThreadState>,
    /// Release clock per synchronizing atomic location (keyed by cell
    /// address; cells must outlive the session's use of them).
    sync: HashMap<usize, VectorClock>,
    /// FastTrack state per shadow-tracked data location.
    shadow: HashMap<usize, ShadowVar>,
    races: Vec<RaceReport>,
    /// Dedup key set: (location address, kind) already reported.
    reported: Vec<(usize, &'static str)>,
}

impl SessionState {
    fn thread(&mut self, t: usize) -> &mut ThreadState {
        while self.threads.len() <= t {
            self.threads.push(ThreadState::default());
        }
        &mut self.threads[t]
    }

    fn record_race(
        &mut self,
        loc: usize,
        kind: &'static str,
        label: &'static str,
        first: (EpochStamp, &'static str, bool),
        second: (usize, &'static str, bool),
    ) {
        let (second_tid, second_site, second_write) = second;
        if self.reported.contains(&(loc, kind)) {
            return;
        }
        self.reported.push((loc, kind));
        let second_state = &self.threads[second_tid];
        let second = RaceAccess {
            thread: second_tid as u64,
            clock: second_state.clock.get(second_tid),
            write: second_write,
            site: second_site.to_string(),
            recent_ops: second_state.recent_ops.clone(),
            vector_clock: second_state.clock.components().to_vec(),
        };
        let (stamp, site, write) = first;
        let first_state = self.threads.get(stamp.tid);
        let mut first_vc = VectorClock::new();
        first_vc.set(stamp.tid, stamp.clock);
        self.races.push(RaceReport {
            version: RACE_REPORT_VERSION,
            location: label.to_string(),
            kind: kind.to_string(),
            first: RaceAccess {
                thread: stamp.tid as u64,
                clock: stamp.clock,
                write,
                site: site.to_string(),
                recent_ops: first_state
                    .map(|s| s.recent_ops.clone())
                    .unwrap_or_default(),
                vector_clock: first_vc.components().to_vec(),
            },
            second,
        });
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static GATE: Mutex<()> = Mutex::new(());

fn state() -> &'static Mutex<SessionState> {
    static STATE: OnceLock<Mutex<SessionState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(SessionState::default()))
}

thread_local! {
    /// `(session id, thread slot)` of the calling thread's registration.
    static SLOT: std::cell::Cell<(u64, usize)> = const { std::cell::Cell::new((0, usize::MAX)) };
}

/// Whether a [`DetectionSession`] is currently active (one relaxed
/// load; every hook bails out on `false`).
#[inline]
pub fn detection_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn current_slot(s: &mut SessionState) -> usize {
    SLOT.with(|slot| {
        let (sid, t) = slot.get();
        if sid == s.id && t != usize::MAX {
            return t;
        }
        let t = s.threads.len();
        s.threads.push(ThreadState::default());
        // A fresh slot starts its own component at 1 so its epochs are
        // distinguishable from the zero clock.
        s.threads[t].clock.set(t, 1);
        slot.set((s.id, t));
        t
    })
}

/// An active race-detection scope. Only one exists at a time
/// process-wide (`begin` serializes on a global gate), so concurrently
/// running tests cannot cross-talk through the detector.
pub struct DetectionSession {
    _gate: MutexGuard<'static, ()>,
}

impl DetectionSession {
    /// Activates detection. Blocks until any other active session
    /// finishes.
    pub fn begin() -> DetectionSession {
        let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let mut s = lock(state());
            let id = s.id + 1;
            *s = SessionState {
                id,
                ..SessionState::default()
            };
            // Register the session-owning thread as slot 0.
            current_slot(&mut s);
        }
        ACTIVE.store(true, Ordering::SeqCst);
        DetectionSession { _gate: gate }
    }

    /// Deactivates detection and returns every race found.
    pub fn finish(self) -> Vec<RaceReport> {
        ACTIVE.store(false, Ordering::SeqCst);
        let races = std::mem::take(&mut lock(state()).races);
        drop(self);
        races
    }

    /// Races found so far without ending the session.
    pub fn races_so_far(&self) -> Vec<RaceReport> {
        lock(state()).races.clone()
    }
}

impl Drop for DetectionSession {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------
// Fork / join / steal edges (worker-pool hooks)
// ---------------------------------------------------------------------

struct ForkInner {
    /// Submitter clock at the fork, joined by each task at start (the
    /// fork edge — recorded when the task is taken *or stolen*).
    fork: VectorClock,
    /// Accumulated task-end clocks, joined back into the submitter at
    /// the barrier (the join edge).
    joined: Mutex<VectorClock>,
}

/// A fork/join scope handed out by [`fork_point`]. The worker pool
/// creates one per dispatch; tasks call [`ForkPoint::task_start`] /
/// [`ForkPoint::task_end`], the submitter calls [`ForkPoint::join`]
/// after its barrier. When no session is active this is a no-op shell.
#[derive(Clone)]
pub struct ForkPoint(Option<Arc<ForkInner>>);

/// Captures the calling thread's clock as a fork point and advances it
/// (so work after the dispatch is not ordered before the fork).
pub fn fork_point() -> ForkPoint {
    if !detection_active() {
        return ForkPoint(None);
    }
    let mut s = lock(state());
    let t = current_slot(&mut s);
    let clock = s.threads[t].clock.clone();
    let tick = clock.get(t) + 1;
    s.threads[t].clock.set(t, tick);
    ForkPoint(Some(Arc::new(ForkInner {
        fork: clock,
        joined: Mutex::new(VectorClock::new()),
    })))
}

impl ForkPoint {
    /// Records the fork (or steal) edge into the current worker thread:
    /// everything the submitter did before the dispatch happens-before
    /// this task. In the Chase–Lev pool only the submitter pushes, so
    /// the steal edge (victim's release push → thief's acquire steal)
    /// has the same source clock as the fork edge and is recorded here
    /// at the moment the thief starts the stolen task.
    pub fn task_start(&self) {
        if let Some(inner) = &self.0 {
            if !detection_active() {
                return;
            }
            let mut s = lock(state());
            let t = current_slot(&mut s);
            let fork = inner.fork.clone();
            s.thread(t).clock.join(&fork);
        }
    }

    /// Records this task's contribution to the join edge and advances
    /// the worker clock (tasks of the same dispatch stay unordered).
    pub fn task_end(&self) {
        if let Some(inner) = &self.0 {
            if !detection_active() {
                return;
            }
            let mut s = lock(state());
            let t = current_slot(&mut s);
            let clock = s.threads[t].clock.clone();
            lock(&inner.joined).join(&clock);
            let tick = clock.get(t) + 1;
            s.threads[t].clock.set(t, tick);
        }
    }

    /// Records the join edge into the submitter: every task of the
    /// dispatch happens-before everything after the barrier.
    pub fn join(&self) {
        if let Some(inner) = &self.0 {
            if !detection_active() {
                return;
            }
            let mut s = lock(state());
            let t = current_slot(&mut s);
            let joined = lock(&inner.joined).clone();
            s.thread(t).clock.join(&joined);
        }
    }
}

/// Runs one dispatched task as its own *logical* thread: a fresh clock
/// slot, a fork edge in, a join edge out, restoring the caller's slot
/// afterwards (even on unwind).
///
/// The worker pool promises nothing about the relative order of two
/// tasks in one dispatch — even when one OS worker happens to run both
/// back-to-back, or when `ExecutionStrategy::Modeled` runs the whole
/// dispatch on the caller thread. Giving every task its own slot makes
/// the detector check that *contract* instead of the incidental OS
/// schedule: an unsynchronized task pair is flagged deterministically,
/// no matter how the scheduler happened to place the tasks.
pub fn task_scope<R>(fork: &ForkPoint, f: impl FnOnce() -> R) -> R {
    if fork.0.is_none() || !detection_active() {
        return f();
    }
    let prev = SLOT.with(|s| s.get());
    {
        let mut s = lock(state());
        let t = s.threads.len();
        s.threads.push(ThreadState::default());
        s.threads[t].clock.set(t, 1);
        let id = s.id;
        SLOT.with(|slot| slot.set((id, t)));
    }
    struct Restore((u64, usize));
    impl Drop for Restore {
        fn drop(&mut self) {
            SLOT.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(prev);
    fork.task_start();
    let r = f();
    fork.task_end();
    r
}

// ---------------------------------------------------------------------
// Sync-location hooks (traced atomic substrates)
// ---------------------------------------------------------------------

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Records an atomic load at sync location `loc`: acquire-or-stronger
/// joins the location's release clock into the thread clock.
pub fn sync_load(loc: usize, site: &'static str, order: Ordering) {
    if !detection_active() {
        return;
    }
    let mut s = lock(state());
    let t = current_slot(&mut s);
    s.thread(t).note_op(format!("load {order:?} @ {site}"));
    if is_acquire(order) {
        if let Some(l) = s.sync.get(&loc).cloned() {
            s.thread(t).clock.join(&l);
        }
    }
}

/// Records an atomic store at sync location `loc`: release-or-stronger
/// **replaces** the location's release clock with the thread clock and
/// advances the thread clock. Replacement (not join) is the per-store
/// precision rule: a plain store heads a *new* release sequence, so an
/// acquire load that reads it must synchronize with this writer only —
/// joining would let the location accumulate every past releaser's
/// clock and invent happens-before edges that hide races.
pub fn sync_store(loc: usize, site: &'static str, order: Ordering) {
    if !detection_active() {
        return;
    }
    let mut s = lock(state());
    let t = current_slot(&mut s);
    s.thread(t).note_op(format!("store {order:?} @ {site}"));
    if is_release(order) {
        let clock = s.threads[t].clock.clone();
        s.sync.insert(loc, clock.clone());
        let tick = clock.get(t) + 1;
        s.threads[t].clock.set(t, tick);
    }
}

/// Records a read-modify-write (CAS) at sync location `loc`. `success`
/// tells whether the RMW took effect; a failed CAS is a load with the
/// failure ordering. Unlike [`sync_store`], a successful release RMW
/// **joins** into the location clock rather than replacing it: an RMW
/// reads the previous store, so it *continues* that store's release
/// sequence — an acquire load after the RMW synchronizes with both the
/// RMW and the store it extended.
pub fn sync_rmw(loc: usize, site: &'static str, order: Ordering, success: bool) {
    if !detection_active() {
        return;
    }
    let mut s = lock(state());
    let t = current_slot(&mut s);
    s.thread(t)
        .note_op(format!("rmw({success}) {order:?} @ {site}"));
    if is_acquire(order) || (!success && order == Ordering::SeqCst) {
        if let Some(l) = s.sync.get(&loc).cloned() {
            s.thread(t).clock.join(&l);
        }
    }
    if success && is_release(order) {
        let clock = s.threads[t].clock.clone();
        s.sync.entry(loc).or_default().join(&clock);
        let tick = clock.get(t) + 1;
        s.threads[t].clock.set(t, tick);
    }
}

// ---------------------------------------------------------------------
// Shadow memory (plain data the protocols guard)
// ---------------------------------------------------------------------

fn shadow_entry<'a>(s: &'a mut SessionState, loc: usize, label: &'static str) -> &'a mut ShadowVar {
    s.shadow.entry(loc).or_insert_with(|| ShadowVar {
        label,
        write: None,
        read: ReadState::None,
    })
}

/// Records a plain (non-atomic) read of shadow location `loc`; reports
/// a race if the last write does not happen-before it.
pub fn shadow_read(loc: usize, label: &'static str, site: &'static str) {
    if !detection_active() {
        return;
    }
    let mut s = lock(state());
    let t = current_slot(&mut s);
    s.thread(t).note_op(format!("read @ {site}"));
    let clock = s.threads[t].clock.clone();
    let var = shadow_entry(&mut s, loc, label);
    let write = var.write;
    let label = var.label;
    // write-read check.
    if let Some((w, wsite)) = write {
        if !w.happens_before(&clock) {
            s.record_race(loc, "write-read", label, (w, wsite, true), (t, site, false));
        }
    }
    let me = EpochStamp {
        tid: t,
        clock: clock.get(t),
    };
    let var = shadow_entry(&mut s, loc, label);
    match &mut var.read {
        ReadState::None => var.read = ReadState::Epoch(me, site),
        ReadState::Epoch(r, rsite) => {
            if r.tid == t || r.happens_before(&clock) {
                var.read = ReadState::Epoch(me, site);
            } else {
                // Concurrent readers: widen to a read clock.
                let mut vc = VectorClock::new();
                vc.set(r.tid, r.clock);
                vc.set(t, me.clock);
                let mut sites = HashMap::new();
                sites.insert(r.tid, *rsite);
                sites.insert(t, site);
                var.read = ReadState::Shared(vc, sites);
            }
        }
        ReadState::Shared(vc, sites) => {
            vc.set(t, me.clock);
            sites.insert(t, site);
        }
    }
}

/// Records a plain (non-atomic) write of shadow location `loc`;
/// reports a race if the last write or any read does not happen-before
/// it.
pub fn shadow_write(loc: usize, label: &'static str, site: &'static str) {
    if !detection_active() {
        return;
    }
    let mut s = lock(state());
    let t = current_slot(&mut s);
    s.thread(t).note_op(format!("write @ {site}"));
    let clock = s.threads[t].clock.clone();
    let var = shadow_entry(&mut s, loc, label);
    let write = var.write;
    let label = var.label;
    let read = var.read.clone();
    if let Some((w, wsite)) = write {
        if !w.happens_before(&clock) {
            s.record_race(loc, "write-write", label, (w, wsite, true), (t, site, true));
        }
    }
    match read {
        ReadState::None => {}
        ReadState::Epoch(r, rsite) => {
            if !r.happens_before(&clock) {
                s.record_race(loc, "read-write", label, (r, rsite, false), (t, site, true));
            }
        }
        ReadState::Shared(vc, sites) => {
            if !vc.dominated_by(&clock) {
                // Pick the first non-ordered reader for the report.
                let offender = (0..vc.components().len())
                    .find(|&rt| vc.get(rt) > clock.get(rt))
                    .unwrap_or(0);
                let stamp = EpochStamp {
                    tid: offender,
                    clock: vc.get(offender),
                };
                let rsite = sites.get(&offender).copied().unwrap_or("<read>");
                s.record_race(
                    loc,
                    "read-write",
                    label,
                    (stamp, rsite, false),
                    (t, site, true),
                );
            }
        }
    }
    let me = EpochStamp {
        tid: t,
        clock: clock.get(t),
    };
    let var = shadow_entry(&mut s, loc, label);
    var.write = Some((me, site));
    var.read = ReadState::None;
}

/// A plain value under shadow-memory tracking: reads and writes go
/// through the detector (when a session is active) exactly like the
/// non-atomic payloads the lock-free protocols guard.
///
/// Deliberately `Sync` *without* interior synchronization — that is the
/// point: a [`DetectionSession`] decides whether the protocol around it
/// orders the accesses. Only use it inside detector fixtures.
pub struct ShadowCell<T> {
    label: &'static str,
    value: std::cell::UnsafeCell<T>,
}

// SAFETY: intentionally racy test instrument — concurrent access is
// exactly what the surrounding DetectionSession exists to observe, and
// fixtures only read/write `Copy` word-sized payloads whose tearing
// cannot corrupt allocator or drop state.
unsafe impl<T: Send + Copy> Sync for ShadowCell<T> {}

impl<T: Copy> ShadowCell<T> {
    /// A shadow-tracked cell labeled `label` in race reports.
    pub fn new(label: &'static str, value: T) -> ShadowCell<T> {
        ShadowCell {
            label,
            value: std::cell::UnsafeCell::new(value),
        }
    }

    /// Tracked read.
    pub fn get(&self, site: &'static str) -> T {
        shadow_read(self.value.get() as usize, self.label, site);
        // SAFETY: plain read of a Copy value; racy by design (see type
        // docs) and observed by the detector above.
        unsafe { *self.value.get() }
    }

    /// Tracked write.
    pub fn set(&self, v: T, site: &'static str) {
        shadow_write(self.value.get() as usize, self.label, site);
        // SAFETY: plain write of a Copy value; racy by design (see type
        // docs) and observed by the detector above.
        unsafe { *self.value.get() = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn vector_clock_join_and_domination() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 5);
        let mut j = a.clone();
        j.join(&b);
        assert_eq!(j.components(), &[3, 5, 1]);
        assert!(a.dominated_by(&j));
        assert!(b.dominated_by(&j));
        assert!(!j.dominated_by(&a));
    }

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("payload", 0u32);
        std::thread::scope(|s| {
            s.spawn(|| cell.set(1, "writer-a"));
            s.spawn(|| cell.set(2, "writer-b"));
        });
        let races = session.finish();
        assert!(
            races.iter().any(|r| r.kind == "write-write"),
            "expected a write-write race, got {races:?}"
        );
        let r = &races[0];
        assert_eq!(r.version, RACE_REPORT_VERSION);
        assert_eq!(r.location, "payload");
    }

    #[test]
    fn release_acquire_ordering_suppresses_the_race() {
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("payload", 0u32);
        let flag = AtomicU32::new(0);
        let floc = &flag as *const _ as usize;
        std::thread::scope(|s| {
            s.spawn(|| {
                cell.set(1, "producer");
                sync_store(floc, "flag", Ordering::Release);
                flag.store(1, Ordering::Release);
            });
            s.spawn(|| {
                while flag.load(Ordering::Acquire) == 0 {
                    std::hint::spin_loop();
                }
                sync_load(floc, "flag", Ordering::Acquire);
                assert_eq!(cell.get("consumer"), 1);
            });
        });
        let races = session.finish();
        assert!(races.is_empty(), "false positive: {races:?}");
    }

    #[test]
    fn relaxed_flag_does_not_order_and_races() {
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("payload", 0u32);
        let flag = AtomicU32::new(0);
        let floc = &flag as *const _ as usize;
        std::thread::scope(|s| {
            s.spawn(|| {
                cell.set(1, "producer");
                sync_store(floc, "flag", Ordering::Relaxed);
                flag.store(1, Ordering::Relaxed);
            });
            s.spawn(|| {
                while flag.load(Ordering::Relaxed) == 0 {
                    std::hint::spin_loop();
                }
                sync_load(floc, "flag", Ordering::Relaxed);
                let _ = cell.get("consumer");
            });
        });
        let races = session.finish();
        assert!(
            races.iter().any(|r| r.kind == "write-read"),
            "relaxed flag must not create a happens-before edge: {races:?}"
        );
    }

    #[test]
    fn plain_release_store_does_not_carry_earlier_writers_clocks() {
        // The per-store precision fixture. Writer A publishes a payload
        // under the flag; writer B then release-stores the *same* flag
        // without ever having synchronized with A (B heads a fresh
        // release sequence); reader C acquire-loads after B's store and
        // touches the payload. C synchronizes with B only — its read
        // races with A's write. A release clock that accumulated joins
        // across stores would hand C writer A's clock through B's
        // unrelated store and miss this race. The `gate` is an
        // *untraced* atomic: it pins the A → B → C schedule without
        // feeding the detector any edges.
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("payload", 0u32);
        let flag = AtomicU32::new(0);
        let floc = &flag as *const _ as usize;
        let gate = AtomicU32::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                cell.set(1, "writer-a");
                sync_store(floc, "flag", Ordering::Release);
                flag.store(1, Ordering::Release);
                gate.store(1, Ordering::SeqCst);
            });
            s.spawn(|| {
                while gate.load(Ordering::SeqCst) < 1 {
                    std::hint::spin_loop();
                }
                sync_store(floc, "flag", Ordering::Release);
                flag.store(2, Ordering::Release);
                gate.store(2, Ordering::SeqCst);
            });
            s.spawn(|| {
                while gate.load(Ordering::SeqCst) < 2 {
                    std::hint::spin_loop();
                }
                assert_eq!(flag.load(Ordering::Acquire), 2);
                sync_load(floc, "flag", Ordering::Acquire);
                let _ = cell.get("reader-c");
            });
        });
        let races = session.finish();
        assert!(
            races.iter().any(|r| r.kind == "write-read"),
            "B's store must not smuggle A's clock to C: {races:?}"
        );
    }

    #[test]
    fn release_rmw_continues_the_release_sequence() {
        // The counterpart positive case: B extends A's release sequence
        // with a release *RMW* instead of a store. C acquire-loads after
        // the RMW and must be synchronized with A through the sequence
        // (store-clock replacement must NOT apply to RMWs) — no race.
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("payload", 0u32);
        let flag = AtomicU32::new(0);
        let floc = &flag as *const _ as usize;
        let gate = AtomicU32::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                cell.set(1, "writer-a");
                sync_store(floc, "flag", Ordering::Release);
                flag.store(1, Ordering::Release);
                gate.store(1, Ordering::SeqCst);
            });
            s.spawn(|| {
                while gate.load(Ordering::SeqCst) < 1 {
                    std::hint::spin_loop();
                }
                // Release-only RMW: B acquires nothing from A, yet its
                // increment continues A's release sequence.
                flag.fetch_add(1, Ordering::Release);
                sync_rmw(floc, "flag", Ordering::Release, true);
                gate.store(2, Ordering::SeqCst);
            });
            s.spawn(|| {
                while gate.load(Ordering::SeqCst) < 2 {
                    std::hint::spin_loop();
                }
                assert_eq!(flag.load(Ordering::Acquire), 2);
                sync_load(floc, "flag", Ordering::Acquire);
                assert_eq!(cell.get("reader-c"), 1);
            });
        });
        let races = session.finish();
        assert!(
            races.is_empty(),
            "RMW must join, not replace, the release clock: {races:?}"
        );
    }

    #[test]
    fn fork_join_edges_order_submitter_and_tasks() {
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("task-output", 0u32);
        cell.set(1, "pre-fork"); // submitter writes before the fork
        let fork = fork_point();
        std::thread::scope(|s| {
            let fork = fork.clone();
            let cell = &cell;
            s.spawn(move || {
                fork.task_start();
                cell.set(2, "task"); // ordered after pre-fork write
                fork.task_end();
            });
        });
        fork.join();
        assert_eq!(cell.get("post-join"), 2); // ordered after the task
        let races = session.finish();
        assert!(races.is_empty(), "fork/join must order: {races:?}");
    }

    #[test]
    fn sibling_tasks_without_protocol_race() {
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("shared", 0u32);
        let fork = fork_point();
        std::thread::scope(|s| {
            for name in ["sibling-a", "sibling-b"] {
                let fork = fork.clone();
                let cell = &cell;
                s.spawn(move || {
                    fork.task_start();
                    cell.set(7, name);
                    fork.task_end();
                });
            }
        });
        fork.join();
        let races = session.finish();
        assert!(
            races.iter().any(|r| r.kind == "write-write"),
            "sibling tasks are unordered: {races:?}"
        );
    }

    #[test]
    fn concurrent_reads_alone_are_not_a_race() {
        let session = DetectionSession::begin();
        let cell = ShadowCell::new("read-only", 9u32);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let cell = &cell;
                s.spawn(move || {
                    assert_eq!(cell.get("reader"), 9);
                });
            }
        });
        let races = session.finish();
        assert!(races.is_empty(), "reads never race: {races:?}");
    }

    #[test]
    fn race_report_json_round_trip() {
        let report = RaceReport {
            version: RACE_REPORT_VERSION,
            location: "uf.parent[3]".into(),
            kind: "write-write".into(),
            first: RaceAccess {
                thread: 0,
                clock: 4,
                write: true,
                site: "union:winner".into(),
                recent_ops: vec!["rmw(true) AcqRel @ parent".into()],
                vector_clock: vec![4],
            },
            second: RaceAccess {
                thread: 2,
                clock: 7,
                write: true,
                site: "union:loser".into(),
                recent_ops: vec!["load Relaxed @ parent".into()],
                vector_clock: vec![1, 0, 7],
            },
        };
        let parsed = RaceReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn detection_off_means_hooks_are_inert() {
        assert!(!detection_active());
        let cell = ShadowCell::new("inert", 0u32);
        std::thread::scope(|s| {
            s.spawn(|| cell.set(1, "a"));
            s.spawn(|| cell.set(2, "b"));
        });
        // No session: nothing recorded, nothing to report.
        let session = DetectionSession::begin();
        assert!(session.finish().is_empty());
    }
}
