//! Lock-free log-bucketed latency histogram.
//!
//! The serving path records one latency sample per query from many pool
//! workers at once, so the histogram is a fixed array of atomic bucket
//! counters: recording is a single `fetch_add`, quantile extraction a
//! scan. Buckets are HDR-style — each power-of-two range is split into
//! [`SUBS`] sub-buckets — bounding the relative quantile error at
//! `1 / SUBS` (6.25%) while covering the full `u64` nanosecond range in
//! under a thousand buckets.
//!
//! [`LatencyHistogram::to_json`] emits the versioned `latency` section
//! embedded in serve [`RunReport`](crate::report::RunReport)s
//! (`extra["latency"]`, see DESIGN.md §11).

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range; relative error ≤ 1/SUBS.
const SUBS: usize = 1 << SUB_BITS;
/// Total buckets: values `< SUBS` get exact buckets, every following
/// octave gets `SUBS` sub-buckets.
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUBS + SUBS;

/// Schema version of the JSON emitted by [`LatencyHistogram::to_json`].
pub const LATENCY_SCHEMA_VERSION: u32 = 1;

/// A concurrent histogram of nanosecond latencies.
///
/// All methods take `&self`; recording is wait-free (one atomic add),
/// so it can sit on the hot path of every served query.
///
/// # Empty-state contract
///
/// A histogram with zero recorded samples is sentinel-free: `count()`
/// and `max()` are 0, `mean()` is 0.0, and `quantile(q)` is 0 for every
/// `q`. Consumers never need to special-case emptiness — an empty
/// summary is all zeros, which serializes and diffs like any other.
///
/// # Reading while recording
///
/// Reads concurrent with writes are well-defined but not atomic across
/// fields: a `summary()` or `to_json()` taken mid-record may observe a
/// sample in `count` before its bucket (or vice versa), so derived
/// values can be off by the handful of in-flight samples. They never
/// tear within a field, go backwards, or exceed the eventual totals —
/// the same proc-sampling contract as [`crate::registry`] snapshots.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(nanos: u64) -> usize {
    if nanos < SUBS as u64 {
        nanos as usize
    } else {
        let msb = 63 - nanos.leading_zeros(); // ≥ SUB_BITS
        let sub = ((nanos >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        (msb - SUB_BITS + 1) as usize * SUBS + sub
    }
}

/// Upper bound of the value range mapping to bucket `i` — the value the
/// quantile scan reports, so quantiles never under-estimate.
fn bucket_upper(i: usize) -> u64 {
    if i < SUBS {
        i as u64
    } else {
        let octave = (i / SUBS - 1) as u32 + SUB_BITS;
        let sub = (i % SUBS) as u64;
        let low = (1u64 << octave) + (sub << (octave - SUB_BITS));
        // Parenthesized so the top bucket's upper (exactly `u64::MAX`)
        // doesn't transiently overflow.
        low + ((1u64 << (octave - SUB_BITS)) - 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded samples, as
    /// the upper bound of the bucket holding that rank — at most
    /// `1/16 ≈ 6.25%` above the true value. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// A plain-value summary (count, mean, standard quantiles, max) —
    /// the unit embedded in metrics snapshots and run reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_nanos: self.mean(),
            p50_nanos: self.quantile(0.50),
            p90_nanos: self.quantile(0.90),
            p99_nanos: self.quantile(0.99),
            p999_nanos: self.quantile(0.999),
            max_nanos: self.max(),
        }
    }

    /// The versioned JSON summary embedded in serve run reports:
    /// `{version, count, mean_nanos, p50/p90/p99/p999_nanos, max_nanos}`.
    pub fn to_json(&self) -> Json {
        self.summary().to_json()
    }
}

/// A point-in-time summary of a [`LatencyHistogram`]: plain values, so
/// it can be compared, stored in a
/// [`MetricsSnapshot`](crate::registry::MetricsSnapshot), and
/// round-tripped through JSON exactly. An empty histogram summarizes to
/// all zeros (see the empty-state contract on [`LatencyHistogram`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean latency in nanoseconds (0.0 when empty).
    pub mean_nanos: f64,
    /// 50th-percentile latency in nanoseconds.
    pub p50_nanos: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_nanos: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_nanos: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_nanos: u64,
    /// Largest recorded sample in nanoseconds (0 when empty).
    pub max_nanos: u64,
}

impl LatencySummary {
    /// Serializes to the versioned `latency` JSON form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Int(LATENCY_SCHEMA_VERSION as i128)),
            ("count".into(), Json::from_u64(self.count)),
            ("mean_nanos".into(), Json::Num(self.mean_nanos)),
            ("p50_nanos".into(), Json::from_u64(self.p50_nanos)),
            ("p90_nanos".into(), Json::from_u64(self.p90_nanos)),
            ("p99_nanos".into(), Json::from_u64(self.p99_nanos)),
            ("p999_nanos".into(), Json::from_u64(self.p999_nanos)),
            ("max_nanos".into(), Json::from_u64(self.max_nanos)),
        ])
    }

    /// Deserializes from the versioned `latency` JSON form.
    pub fn from_json(v: &Json) -> Result<LatencySummary, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("latency summary missing version")? as u32;
        if version != LATENCY_SCHEMA_VERSION {
            return Err(format!(
                "unsupported latency schema {version} (expected {LATENCY_SCHEMA_VERSION})"
            ));
        }
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("latency summary missing {name}"))
        };
        Ok(LatencySummary {
            count: field("count")?,
            mean_nanos: v
                .get("mean_nanos")
                .and_then(Json::as_f64)
                .ok_or("latency summary missing mean_nanos")?,
            p50_nanos: field("p50_nanos")?,
            p90_nanos: field("p90_nanos")?,
            p99_nanos: field("p99_nanos")?,
            p999_nanos: field("p999_nanos")?,
            max_nanos: field("max_nanos")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_u64_and_uppers_bound_ranges() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            // Relative error bound: upper ≤ v * (1 + 1/SUBS).
            assert!(
                bucket_upper(i) as f64 <= v as f64 * (1.0 + 1.0 / SUBS as f64) + 1.0,
                "upper({i}) = {} too far above {v}",
                bucket_upper(i)
            );
        }
        // Indices are monotone in the value.
        let mut last = 0;
        for v in 0..10_000u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000_000);
        let within = |got: u64, expect: u64| {
            let lo = expect as f64 * 0.93;
            let hi = expect as f64 * 1.07 + 1.0;
            assert!(
                (got as f64) >= lo && (got as f64) <= hi,
                "{got} not within 7% of {expect}"
            );
        };
        within(h.quantile(0.50), 5_000_000);
        within(h.quantile(0.99), 9_900_000);
        within(h.quantile(0.999), 9_990_000);
        within(h.mean() as u64, 5_000_500);
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        // Sentinel-free across the whole quantile range.
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0, "quantile({q}) of empty");
        }
        assert_eq!(h.summary(), LatencySummary::default());
        // And the empty summary serializes/parses like any other.
        let j = h.to_json();
        let back =
            LatencySummary::from_json(&crate::json::parse(&j.to_pretty_string()).unwrap()).unwrap();
        assert_eq!(back, LatencySummary::default());
    }

    #[test]
    fn summary_roundtrips_and_matches_accessors() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 777);
        }
        let s = h.summary();
        assert_eq!(s.count, h.count());
        assert_eq!(s.max_nanos, h.max());
        assert_eq!(s.p999_nanos, h.quantile(0.999));
        assert_eq!(s.mean_nanos, h.mean());
        let text = s.to_json().to_pretty_string();
        let back = LatencySummary::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn summary_version_mismatch_rejected() {
        let Json::Obj(mut fields) = LatencySummary::default().to_json() else {
            panic!("summary must serialize to an object");
        };
        fields[0].1 = Json::Int(99);
        assert!(LatencySummary::from_json(&Json::Obj(fields)).is_err());
    }

    /// Summaries taken while writers are mid-record must stay sane:
    /// derived values bounded by the eventual totals, never torn into
    /// nonsense (the documented reading-while-recording contract).
    #[test]
    fn summarizing_during_concurrent_records_stays_sane() {
        let h = LatencyHistogram::new();
        const TOTAL: u64 = 100_000;
        const MAX_VAL: u64 = TOTAL * 10;
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for v in 1..=TOTAL {
                    h.record(v * 10);
                }
            });
            while !writer.is_finished() {
                let s = h.summary();
                let j = h.to_json();
                assert!(s.count <= TOTAL);
                assert!(s.max_nanos <= MAX_VAL);
                assert!(s.p999_nanos <= MAX_VAL + MAX_VAL / 16);
                assert!(s.mean_nanos >= 0.0 && s.mean_nanos.is_finite());
                assert!(j.get("count").unwrap().as_u64().unwrap() <= TOTAL);
            }
        });
        assert_eq!(h.summary().count, TOTAL);
        assert_eq!(h.summary().max_nanos, MAX_VAL);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.max(), 7 * 1_000_000 + 9_999);
    }

    #[test]
    fn json_summary_is_versioned_and_parses() {
        let h = LatencyHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let j = h.to_json();
        let text = j.to_pretty_string();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back, j);
        assert_eq!(
            back.get("version").unwrap().as_u64(),
            Some(LATENCY_SCHEMA_VERSION as u64)
        );
        assert_eq!(back.get("count").unwrap().as_u64(), Some(3));
        assert!(back.get("p50_nanos").unwrap().as_u64().unwrap() >= 200);
        assert!(back.get("max_nanos").unwrap().as_u64() == Some(300));
    }
}
