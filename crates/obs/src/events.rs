//! Flight recorder and stall watchdog for long-lived serving processes.
//!
//! A stalled dispatcher or pathological slow query in `ppscan-serve` is
//! invisible to the post-hoc report layer: nothing is emitted until the
//! process exits, which a stall prevents. This module keeps the recent
//! *history* always at hand instead:
//!
//! * [`FlightRecorder`] — a fixed-capacity ring of recent structured
//!   [`FlightEvent`]s (enqueue, batch-start, batch-end, swap,
//!   slow-query, watchdog-trip). Overflow evicts the oldest event and
//!   counts it — no silent caps — so a dump always says how much
//!   history it lost.
//! * [`StallWatchdog`] — a polling thread holding a *progress probe*
//!   closure. When the probe reports pending work but no progress for
//!   longer than the configured deadline, the watchdog records a
//!   [`EventKind::WatchdogTrip`], dumps the recorder as JSON
//!   ([`EVENTS_SCHEMA_VERSION`]), and invokes an `on_trip` callback —
//!   once per stall episode, re-arming when progress resumes.
//! * [`install_panic_dump`] — a chained panic hook that dumps a
//!   recorder to stderr exactly once, so a crashing server leaves its
//!   last moments behind.
//!
//! The progress probe is deliberately generic — `Fn() -> (progress,
//! pending)` — so the watchdog has no dependency on the serving crate:
//! `Server` maps `progress` to its completed-batch counter and
//! `pending` to queue depth plus in-flight batch size.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema version of the JSON emitted by [`FlightRecorder::to_json`].
pub const EVENTS_SCHEMA_VERSION: u32 = 1;

/// Default flight-recorder capacity: enough for the last few hundred
/// batches of context around a stall without unbounded growth.
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What happened, for one [`FlightEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A query was submitted; `value` is the queue depth after enqueue.
    Enqueue,
    /// The dispatcher pinned a snapshot and started a batch; `value` is
    /// the batch size, `generation` the pinned index generation.
    BatchStart,
    /// A batch completed; `value` is the batch size.
    BatchEnd,
    /// A new index generation was published; `generation` is the new
    /// generation.
    Swap,
    /// A query exceeded the slow-query threshold; `value` is its
    /// latency in nanoseconds.
    SlowQuery,
    /// The stall watchdog fired; `value` is the pending work the probe
    /// reported.
    WatchdogTrip,
}

impl EventKind {
    /// The wire name used in JSON dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Enqueue => "enqueue",
            EventKind::BatchStart => "batch-start",
            EventKind::BatchEnd => "batch-end",
            EventKind::Swap => "swap",
            EventKind::SlowQuery => "slow-query",
            EventKind::WatchdogTrip => "watchdog-trip",
        }
    }

    /// Parses a wire name back to the kind.
    pub fn parse(name: &str) -> Option<EventKind> {
        Some(match name {
            "enqueue" => EventKind::Enqueue,
            "batch-start" => EventKind::BatchStart,
            "batch-end" => EventKind::BatchEnd,
            "swap" => EventKind::Swap,
            "slow-query" => EventKind::SlowQuery,
            "watchdog-trip" => EventKind::WatchdogTrip,
            _ => return None,
        })
    }
}

/// One structured event in the flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Position in the recorder's lifetime event stream (monotone,
    /// counts evicted events too).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific magnitude (queue depth, batch size, latency, …).
    pub value: u64,
    /// Index generation in effect, when the kind carries one (0
    /// otherwise; generations start at 1).
    pub generation: u64,
}

impl FlightEvent {
    /// Serializes one event. Zero-valued `value`/`generation` fields
    /// are omitted (and parse back as 0), keeping dumps compact.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq".into(), Json::from_u64(self.seq)),
            ("at_nanos".into(), Json::from_u64(self.at_nanos)),
            ("kind".into(), Json::Str(self.kind.name().into())),
        ];
        if self.value != 0 {
            fields.push(("value".into(), Json::from_u64(self.value)));
        }
        if self.generation != 0 {
            fields.push(("generation".into(), Json::from_u64(self.generation)));
        }
        Json::Obj(fields)
    }

    /// Deserializes one event.
    pub fn from_json(v: &Json) -> Result<FlightEvent, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("event missing kind")?;
        Ok(FlightEvent {
            seq: v
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or("event missing seq")?,
            at_nanos: v
                .get("at_nanos")
                .and_then(Json::as_u64)
                .ok_or("event missing at_nanos")?,
            kind: EventKind::parse(kind).ok_or_else(|| format!("unknown event kind {kind:?}"))?,
            value: v.get("value").and_then(Json::as_u64).unwrap_or(0),
            generation: v.get("generation").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

struct RecorderInner {
    events: VecDeque<FlightEvent>,
    seq: u64,
    dropped: u64,
}

/// A fixed-capacity ring of recent [`FlightEvent`]s.
///
/// Recording takes a short mutex hold (the serving hot path records a
/// handful of events per *batch*, not per query, so contention is
/// negligible next to the query work itself). Overflow evicts the
/// oldest event and increments [`dropped`](Self::dropped) — the dump
/// reports the loss rather than hiding it.
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            start: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(RecorderInner {
                events: VecDeque::new(),
                seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records one event, timestamped now.
    pub fn record(&self, kind: EventKind, value: u64, generation: u64) {
        let at_nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inner = lock(&self.inner);
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.events.push_back(FlightEvent {
            seq,
            at_nanos,
            kind,
            value,
            generation,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        lock(&self.inner).events.iter().cloned().collect()
    }

    /// How many events overflow has evicted so far.
    pub fn dropped(&self) -> u64 {
        lock(&self.inner).dropped
    }

    /// Dumps the ring as versioned JSON:
    /// `{version, capacity, dropped, events: [...]}`.
    pub fn to_json(&self) -> Json {
        let inner = lock(&self.inner);
        Json::Obj(vec![
            ("version".into(), Json::Int(EVENTS_SCHEMA_VERSION as i128)),
            ("capacity".into(), Json::from_u64(self.capacity as u64)),
            ("dropped".into(), Json::from_u64(inner.dropped)),
            (
                "events".into(),
                Json::Arr(inner.events.iter().map(FlightEvent::to_json).collect()),
            ),
        ])
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        write!(
            f,
            "FlightRecorder({}/{} events, {} dropped)",
            inner.events.len(),
            self.capacity,
            inner.dropped
        )
    }
}

/// When the [`StallWatchdog`] considers a process stalled.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// How long the probe may report pending work with no progress
    /// before the watchdog trips. Must comfortably exceed the worst
    /// single-batch latency, or healthy slow batches will trip it.
    pub deadline: Duration,
    /// How often the probe is polled.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            deadline: Duration::from_secs(5),
            poll: Duration::from_millis(100),
        }
    }
}

struct WatchdogShared {
    trips: AtomicU64,
    last_dump: Mutex<Option<String>>,
    stop: AtomicBool,
}

/// A thread watching a progress probe for stalls.
///
/// Every `poll` interval the watchdog calls `probe() -> (progress,
/// pending)`. A *stall* is `pending > 0` while `progress` has not
/// changed for at least `deadline`. On a stall it records an
/// [`EventKind::WatchdogTrip`] into the recorder, captures the
/// recorder's JSON dump (retrievable via [`last_dump`](Self::last_dump)),
/// and calls `on_trip` with that dump — once per episode: the watchdog
/// re-arms only after observing progress again.
pub struct StallWatchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<JoinHandle<()>>,
}

impl StallWatchdog {
    /// Starts watching. `probe` and `on_trip` run on the watchdog
    /// thread; both should be cheap and must not block.
    pub fn spawn(
        config: WatchdogConfig,
        recorder: Arc<FlightRecorder>,
        probe: impl Fn() -> (u64, u64) + Send + 'static,
        on_trip: impl Fn(&str) + Send + 'static,
    ) -> StallWatchdog {
        let shared = Arc::new(WatchdogShared {
            trips: AtomicU64::new(0),
            last_dump: Mutex::new(None),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("ppscan-obs-watchdog".into())
            .spawn(move || {
                let (mut last_progress, _) = probe();
                let mut since = Instant::now();
                let mut tripped = false;
                while !thread_shared.stop.load(Relaxed) {
                    std::thread::sleep(config.poll);
                    let (progress, pending) = probe();
                    if progress != last_progress {
                        last_progress = progress;
                        since = Instant::now();
                        tripped = false; // re-arm after progress
                        continue;
                    }
                    if pending == 0 {
                        // Idle, not stalled: keep the deadline clock
                        // from accruing while there is nothing to do.
                        since = Instant::now();
                        continue;
                    }
                    if !tripped && since.elapsed() >= config.deadline {
                        tripped = true;
                        thread_shared.trips.fetch_add(1, Relaxed);
                        recorder.record(EventKind::WatchdogTrip, pending, 0);
                        let dump = recorder.to_json().to_pretty_string();
                        *lock(&thread_shared.last_dump) = Some(dump.clone());
                        on_trip(&dump);
                    }
                }
            })
            .expect("spawn watchdog thread");
        StallWatchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// How many stall episodes have tripped so far.
    pub fn trips(&self) -> u64 {
        self.shared.trips.load(Relaxed)
    }

    /// The flight-recorder dump captured at the most recent trip.
    pub fn last_dump(&self) -> Option<String> {
        lock(&self.shared.last_dump).clone()
    }
}

impl Drop for StallWatchdog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for StallWatchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StallWatchdog(trips: {})", self.trips())
    }
}

/// Installs a chained panic hook that dumps `recorder` to stderr on the
/// first panic, so a crashing server leaves its recent history behind.
/// The previous hook still runs. Safe to call once per process.
pub fn install_panic_dump(recorder: Arc<FlightRecorder>) {
    install_panic_dump_with(recorder, |dump| eprintln!("flight recorder dump:\n{dump}"));
}

/// [`install_panic_dump`] with an explicit sink for the dump text
/// (used by tests; the default sink is stderr).
pub fn install_panic_dump_with(
    recorder: Arc<FlightRecorder>,
    sink: impl Fn(&str) + Send + Sync + 'static,
) {
    let fired = AtomicBool::new(false);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !fired.swap(true, Relaxed) {
            sink(&recorder.to_json().to_pretty_string());
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(EventKind::Enqueue, i, 0);
        }
        assert_eq!(rec.dropped(), 6);
        let events = rec.events();
        assert_eq!(events.len(), 4);
        // The survivors are the newest four, in order, with lifetime
        // sequence numbers intact.
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9]);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let dump = rec.to_json();
        assert_eq!(dump.get("dropped").unwrap().as_u64(), Some(6));
        assert_eq!(dump.get("capacity").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn event_kinds_roundtrip_by_name() {
        for kind in [
            EventKind::Enqueue,
            EventKind::BatchStart,
            EventKind::BatchEnd,
            EventKind::Swap,
            EventKind::SlowQuery,
            EventKind::WatchdogTrip,
        ] {
            assert_eq!(EventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(EventKind::parse("nonsense"), None);
    }

    /// splitmix64 — mirrors the report round-trip property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn event_roundtrip_property() {
        const KINDS: [EventKind; 6] = [
            EventKind::Enqueue,
            EventKind::BatchStart,
            EventKind::BatchEnd,
            EventKind::Swap,
            EventKind::SlowQuery,
            EventKind::WatchdogTrip,
        ];
        let mut rng = Rng(0xf11e5);
        for case in 0..200 {
            let event = FlightEvent {
                seq: rng.next() >> 1,
                at_nanos: rng.next() >> 1,
                kind: KINDS[(rng.next() % 6) as usize],
                // Exercise the omit-if-zero path too.
                value: if rng.next().is_multiple_of(4) {
                    0
                } else {
                    rng.next() >> 1
                },
                generation: rng.next() % 8,
            };
            let text = event.to_json().to_pretty_string();
            let back = FlightEvent::from_json(&crate::json::parse(&text).unwrap())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, event, "case {case} round-trip mismatch");
        }
    }

    #[test]
    fn dump_roundtrips_through_json_text() {
        let rec = FlightRecorder::new(8);
        rec.record(EventKind::Enqueue, 3, 0);
        rec.record(EventKind::BatchStart, 3, 1);
        rec.record(EventKind::BatchEnd, 3, 1);
        rec.record(EventKind::Swap, 0, 2);
        let dump = rec.to_json();
        let text = dump.to_pretty_string();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back, dump);
        let events: Vec<FlightEvent> = back
            .get("events")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| FlightEvent::from_json(e).unwrap())
            .collect();
        assert_eq!(events, rec.events());
    }

    #[test]
    fn watchdog_trips_once_per_stall_episode_and_rearms() {
        let rec = Arc::new(FlightRecorder::new(16));
        rec.record(EventKind::Enqueue, 1, 0);
        let progress = Arc::new(AtomicU64::new(0));
        let pending = Arc::new(AtomicU64::new(1));
        let trip_seen = Arc::new(AtomicU64::new(0));
        let dog = StallWatchdog::spawn(
            WatchdogConfig {
                deadline: Duration::from_millis(50),
                poll: Duration::from_millis(5),
            },
            Arc::clone(&rec),
            {
                let (progress, pending) = (Arc::clone(&progress), Arc::clone(&pending));
                move || (progress.load(Relaxed), pending.load(Relaxed))
            },
            {
                let trip_seen = Arc::clone(&trip_seen);
                move |dump| {
                    assert!(dump.contains("watchdog-trip"));
                    trip_seen.fetch_add(1, Relaxed);
                }
            },
        );
        // Stalled: pending work, no progress. Exactly one trip even
        // after the deadline elapses several times over.
        let deadline = Instant::now() + Duration::from_secs(10);
        while dog.trips() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dog.trips(), 1);
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(
            dog.trips(),
            1,
            "watchdog must not re-trip within an episode"
        );
        assert_eq!(trip_seen.load(Relaxed), 1);
        let dump = dog.last_dump().expect("dump captured");
        assert!(dump.contains("watchdog-trip"));
        assert!(dump.contains("enqueue"));

        // Progress resumes, then stalls again: the watchdog re-arms.
        progress.fetch_add(1, Relaxed);
        let deadline = Instant::now() + Duration::from_secs(10);
        while dog.trips() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dog.trips(), 2, "watchdog must re-arm after progress");
    }

    #[test]
    fn watchdog_stays_quiet_when_idle_or_progressing() {
        let rec = Arc::new(FlightRecorder::new(16));
        let progress = Arc::new(AtomicU64::new(0));
        let pending = Arc::new(AtomicU64::new(0));
        let dog = StallWatchdog::spawn(
            WatchdogConfig {
                deadline: Duration::from_millis(30),
                poll: Duration::from_millis(5),
            },
            Arc::clone(&rec),
            {
                let (progress, pending) = (Arc::clone(&progress), Arc::clone(&pending));
                move || (progress.load(Relaxed), pending.load(Relaxed))
            },
            |_| {},
        );
        // Idle (no pending work): never trips.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(dog.trips(), 0);
        // Busy but progressing: never trips.
        pending.store(4, Relaxed);
        for _ in 0..10 {
            progress.fetch_add(1, Relaxed);
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(dog.trips(), 0);
        assert!(dog.last_dump().is_none());
    }
}
